package persist

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode hammers the container decoder with mutated inputs.
// The invariant is total: DecodeSnapshot either returns a fully verified
// snapshot or a typed *Error — it must never panic, hang, or return a
// partially populated result. The seeds cover each rejection branch so
// mutation starts adjacent to every boundary check.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed 1: a valid two-section container.
	w := NewSnapshotWriter()
	w.Section("meta", []byte{1, 2, 3})
	w.Section("shard-0/window", bytes.Repeat([]byte{7}, 32))
	valid := w.Bytes()
	f.Add(append([]byte(nil), valid...))

	// Seed 2: empty container (zero sections) — still CRC-framed.
	f.Add(NewSnapshotWriter().Bytes())

	// Seed 3: truncated mid-section.
	f.Add(append([]byte(nil), valid[:len(valid)/2]...))

	// Seed 4: bad magic.
	bad := append([]byte(nil), valid...)
	bad[0] = 'X'
	f.Add(bad)

	// Seed 5: flipped bit in a payload (whole-file CRC must catch it).
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x20
	f.Add(flip)

	// Seed 6: version skew with a recomputed valid CRC.
	skew := append([]byte(nil), valid[:len(valid)-4]...)
	skew[4] = 0xFF
	var e Enc
	e.b = skew
	e.U32(crcOf(skew))
	f.Add(e.Data())

	// Seed 7: absurd section count with plausible framing.
	huge := append([]byte(nil), valid...)
	huge[6], huge[7], huge[8], huge[9] = 0xFF, 0xFF, 0xFF, 0x7F
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if (snap == nil) == (err == nil) {
			t.Fatalf("exactly one of snapshot/error must be set: %v / %v", snap, err)
		}
		if err != nil {
			if CodeOf(err) == 0 {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A decoded snapshot must be internally consistent and re-readable.
		for _, name := range snap.Names() {
			if _, ok := snap.Section(name); !ok {
				t.Fatalf("listed section %q unreadable", name)
			}
		}
	})
}

// FuzzWALParse: ParseWAL over arbitrary bytes must return only verified
// records and account for every dropped byte, without panicking.
func FuzzWALParse(f *testing.F) {
	var buf []byte
	buf = AppendWALRecord(buf, []byte("alpha"))
	buf = AppendWALRecord(buf, []byte("beta"))
	f.Add(append([]byte(nil), buf...))
	f.Add(append([]byte(nil), buf[:len(buf)-3]...)) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0xA7})

	f.Fuzz(func(t *testing.T, data []byte) {
		records, tail := ParseWAL(data)
		if tail.Records != len(records) {
			t.Fatalf("tail.Records %d != len(records) %d", tail.Records, len(records))
		}
		if tail.ValidBytes+tail.DroppedBytes != int64(len(data)) {
			t.Fatalf("valid %d + dropped %d != input %d", tail.ValidBytes, tail.DroppedBytes, len(data))
		}
	})
}
