// Package persist is the durability layer: a small storage abstraction
// (Store, with in-memory and on-disk backends), a versioned CRC-guarded
// snapshot container, and an fsync-batched write-ahead log for the feed
// tail between snapshots.
//
// The package deliberately knows nothing about engines or estimators. It
// moves opaque byte sections; the engine packages own their encodings via
// the Enc/Dec primitives in codec.go. Framing follows the conventions of
// internal/wire: fixed magic, explicit version byte, length-prefixed
// payloads, CRC32-IEEE guards, and one typed error (*Error) whose Code
// callers can branch on without string matching.
package persist

import (
	"errors"
	"fmt"
)

// ErrorCode classifies persistence failures so callers (the daemon's
// load-on-start path, tests) can react without parsing messages.
type ErrorCode uint8

const (
	// CodeNotExist: the named file is absent from the store.
	CodeNotExist ErrorCode = iota + 1
	// CodeCorrupt: a CRC guard failed — the bytes are not what was written.
	CodeCorrupt
	// CodeVersionSkew: the snapshot was written by an incompatible format
	// version.
	CodeVersionSkew
	// CodeMalformed: the bytes parse to something structurally impossible
	// (bad magic, lengths past the end, impossible counts).
	CodeMalformed
	// CodeTruncated: the file ends mid-structure (a partial snapshot write;
	// WAL tails are tolerated, snapshots are not).
	CodeTruncated
	// CodeMismatch: the snapshot is valid but belongs to a different engine
	// shape or configuration than the one restoring it.
	CodeMismatch
	// CodeState: the engine cannot snapshot or restore in its current state
	// (e.g. a query is mid-flight, or the engine already holds data).
	CodeState
)

// String implements fmt.Stringer.
func (c ErrorCode) String() string {
	switch c {
	case CodeNotExist:
		return "not-exist"
	case CodeCorrupt:
		return "corrupt"
	case CodeVersionSkew:
		return "version-skew"
	case CodeMalformed:
		return "malformed"
	case CodeTruncated:
		return "truncated"
	case CodeMismatch:
		return "mismatch"
	case CodeState:
		return "state"
	default:
		return fmt.Sprintf("ErrorCode(%d)", uint8(c))
	}
}

// Error is the typed persistence error. Never partial: any operation that
// returns *Error has left the destination (engine or store) untouched.
type Error struct {
	Code   ErrorCode
	Op     string // what was being done, e.g. "decode snapshot"
	Detail string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("persist: %s: %s", e.Op, e.Code)
	}
	return fmt.Sprintf("persist: %s: %s (%s)", e.Op, e.Code, e.Detail)
}

// Errf builds a typed error with a formatted detail.
func Errf(code ErrorCode, op, format string, args ...interface{}) *Error {
	return &Error{Code: code, Op: op, Detail: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the ErrorCode from err, or 0 when err is not a *Error.
func CodeOf(err error) ErrorCode {
	var pe *Error
	if errors.As(err, &pe) {
		return pe.Code
	}
	return 0
}

// IsNotExist reports whether err is a typed not-exist error.
func IsNotExist(err error) bool { return CodeOf(err) == CodeNotExist }

// Store is the storage abstraction engines snapshot into. Save must be
// atomic: a reader never observes a half-written file, even across a crash
// (the file backend writes a temp file, fsyncs, and renames into place).
type Store interface {
	// Save atomically replaces the named file with data, durably.
	Save(name string, data []byte) error
	// Load returns the named file's full contents, or a CodeNotExist error.
	Load(name string) ([]byte, error)
	// List returns the names of all files in the store, in any order.
	List() ([]string, error)
	// Remove deletes the named file; removing a missing file is not an
	// error.
	Remove(name string) error
	// OpenAppend opens the named file for appending, creating it when
	// absent. truncateTo >= 0 first truncates the file to that size —
	// the WAL uses this to drop a torn tail record before appending new
	// ones. truncateTo < 0 keeps the current contents.
	OpenAppend(name string, truncateTo int64) (AppendFile, error)
}

// AppendFile is an append-only handle with explicit durability control.
type AppendFile interface {
	// Append writes p at the end of the file (buffered; not yet durable).
	Append(p []byte) error
	// Sync flushes appended data to stable storage.
	Sync() error
	// Close syncs and releases the handle.
	Close() error
}
