package persist

import (
	"bytes"
	"hash/crc32"
	"path/filepath"
	"testing"
)

// TestCodecRoundTrip pins every Enc primitive to its Dec counterpart.
func TestCodecRoundTrip(t *testing.T) {
	var e Enc
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U16(65535)
	e.U32(1 << 30)
	e.U64(1 << 62)
	e.I64(-42)
	e.Int(-1)
	e.F64(3.141592653589793)
	e.Str("hello")
	e.Blob([]byte{1, 2, 3})
	e.F64s([]float64{0.5, -0.5})
	e.I64s([]int64{-1, 0, 1})
	e.U32s([]uint32{9, 8})
	e.Strs([]string{"a", "bb"})

	d := NewDec(e.Data())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip")
	}
	if got := d.U16(); got != 65535 {
		t.Errorf("U16 = %d", got)
	}
	if got := d.U32(); got != 1<<30 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.U64(); got != 1<<62 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != -1 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != 3.141592653589793 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if got := d.F64s(); len(got) != 2 || got[0] != 0.5 || got[1] != -0.5 {
		t.Errorf("F64s = %v", got)
	}
	if got := d.I64s(); len(got) != 3 || got[0] != -1 || got[2] != 1 {
		t.Errorf("I64s = %v", got)
	}
	if got := d.U32s(); len(got) != 2 || got[0] != 9 {
		t.Errorf("U32s = %v", got)
	}
	if got := d.Strs(); len(got) != 2 || got[1] != "bb" {
		t.Errorf("Strs = %v", got)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

// TestDecTruncation: reading past the end fails typed and sticks.
func TestDecTruncation(t *testing.T) {
	d := NewDec([]byte{1, 2})
	d.U64()
	if CodeOf(d.Err()) != CodeTruncated {
		t.Fatalf("err = %v, want truncated", d.Err())
	}
	// Subsequent reads stay failed, never panic.
	d.Str()
	d.F64s()
	if CodeOf(d.Err()) != CodeTruncated {
		t.Fatalf("err after more reads = %v", d.Err())
	}
}

// TestDecDoneLeftover: trailing unread bytes are a typed malformed error.
func TestDecDoneLeftover(t *testing.T) {
	var e Enc
	e.U8(1)
	e.U8(2)
	d := NewDec(e.Data())
	d.U8()
	if err := d.Done(); CodeOf(err) != CodeMalformed {
		t.Fatalf("Done with leftover = %v", err)
	}
}

func buildSnapshot(t *testing.T) []byte {
	t.Helper()
	w := NewSnapshotWriter()
	w.Section("meta", []byte("m"))
	w.Section("window", bytes.Repeat([]byte{0xAB}, 100))
	return w.Bytes()
}

// TestSnapshotRoundTrip: sections come back verbatim, in order, verified.
func TestSnapshotRoundTrip(t *testing.T) {
	data := buildSnapshot(t)
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != SnapshotVersion {
		t.Errorf("version = %d", snap.Version)
	}
	if got := snap.Names(); len(got) != 2 || got[0] != "meta" || got[1] != "window" {
		t.Errorf("names = %v", got)
	}
	m, ok := snap.Section("meta")
	if !ok || string(m) != "m" {
		t.Errorf("meta = %q ok=%v", m, ok)
	}
	if _, ok := snap.Section("absent"); ok {
		t.Error("absent section found")
	}
}

// TestSnapshotCorruption: a single flipped bit anywhere fails CodeCorrupt
// — and the whole-file CRC is checked before the version field, so bit rot
// in the version bytes reads as corruption, not skew.
func TestSnapshotCorruption(t *testing.T) {
	for _, off := range []int{4, 5, 11, 40} { // version bytes, section name, payload
		data := buildSnapshot(t)
		if off >= len(data) {
			t.Fatalf("offset %d past %d-byte snapshot", off, len(data))
		}
		data[off] ^= 0x01
		_, err := DecodeSnapshot(data)
		if CodeOf(err) != CodeCorrupt {
			t.Errorf("flip at %d: err = %v, want corrupt", off, err)
		}
	}
}

// TestSnapshotVersionSkew: an unknown version with a valid CRC is skew.
func TestSnapshotVersionSkew(t *testing.T) {
	w := NewSnapshotWriter()
	w.Section("meta", []byte("m"))
	data := w.Bytes()
	// Bump the version and recompute the trailing CRC so only the version
	// is wrong.
	data[4] = 99
	fixed := append([]byte(nil), data[:len(data)-4]...)
	var e Enc
	e.b = fixed
	e.U32(crcOf(fixed))
	if _, err := DecodeSnapshot(e.Data()); CodeOf(err) != CodeVersionSkew {
		t.Fatalf("err = %v, want version-skew", err)
	}
}

// TestSnapshotTruncated: cutting the file fails typed, never partial.
func TestSnapshotTruncated(t *testing.T) {
	data := buildSnapshot(t)
	for _, n := range []int{0, 5, 13, len(data) - 1} {
		_, err := DecodeSnapshot(data[:n])
		if c := CodeOf(err); c != CodeTruncated && c != CodeCorrupt {
			t.Errorf("truncate to %d: err = %v", n, err)
		}
	}
}

// TestSnapshotBadMagic is malformed, not corrupt: it was never ours.
func TestSnapshotBadMagic(t *testing.T) {
	data := buildSnapshot(t)
	data[0] = 'X'
	if _, err := DecodeSnapshot(data); CodeOf(err) != CodeMalformed {
		t.Fatalf("err = %v, want malformed", err)
	}
}

// TestWALRoundTrip: append, reopen, replay.
func TestWALRoundTrip(t *testing.T) {
	st := NewMemStore()
	wal, records, tail, err := OpenWAL(st, WALName(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 || tail.Records != 0 {
		t.Fatalf("fresh WAL has %d records", len(records))
	}
	for i := 0; i < 5; i++ {
		if err := wal.Append([]byte{byte(i), 0xFF}); err != nil {
			t.Fatal(err)
		}
	}
	if wal.Appends() != 5 {
		t.Errorf("Appends = %d", wal.Appends())
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	_, records, tail, err = OpenWAL(st, WALName(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 || tail.DroppedBytes != 0 {
		t.Fatalf("replayed %d records, dropped %d bytes", len(records), tail.DroppedBytes)
	}
	for i, r := range records {
		if len(r) != 2 || r[0] != byte(i) {
			t.Errorf("record %d = %v", i, r)
		}
	}
}

// TestWALTornTail: a crash mid-append loses only the torn record; reopen
// truncates it away so new appends extend a valid log.
func TestWALTornTail(t *testing.T) {
	st := NewMemStore()
	wal, _, _, err := OpenWAL(st, WALName(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	wal.Append([]byte("one"))
	wal.Append([]byte("two"))
	wal.Close()
	// Simulate the crash: chop bytes off the file's end.
	data, _ := st.Load(WALName(0))
	st.Save(WALName(0), data[:len(data)-2])

	wal2, records, tail, err := OpenWAL(st, WALName(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || string(records[0]) != "one" {
		t.Fatalf("records = %q", records)
	}
	if tail.DroppedBytes == 0 {
		t.Error("torn tail not reported")
	}
	wal2.Append([]byte("three"))
	wal2.Close()
	_, records, tail, err = OpenWAL(st, WALName(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || string(records[1]) != "three" || tail.DroppedBytes != 0 {
		t.Fatalf("after repair: %q dropped=%d", records, tail.DroppedBytes)
	}
}

// TestWALCorruptRecord: a bit flip inside a record stops replay at the
// last valid prefix — everything after is indistinguishable from a torn
// write and is dropped.
func TestWALCorruptRecord(t *testing.T) {
	st := NewMemStore()
	wal, _, _, _ := OpenWAL(st, WALName(0), 1)
	wal.Append([]byte("aaaa"))
	wal.Append([]byte("bbbb"))
	wal.Close()
	data, _ := st.Load(WALName(0))
	data[len(data)-3] ^= 0x10 // inside record two's payload
	st.Save(WALName(0), data)
	_, records, tail, err := OpenWAL(st, WALName(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || string(records[0]) != "aaaa" {
		t.Fatalf("records = %q", records)
	}
	if tail.DroppedBytes == 0 {
		t.Error("corrupt record not counted as dropped")
	}
}

// TestFileStore: atomic save/load/list/remove plus append on disk.
func TestFileStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	if _, err := OpenFileStore(dir); !IsNotExist(err) {
		t.Fatalf("open missing dir = %v, want not-exist", err)
	}
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("absent"); !IsNotExist(err) {
		t.Fatalf("load absent = %v", err)
	}
	if err := st.Save("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("a")
	if err != nil || string(got) != "1" {
		t.Fatalf("load = %q, %v", got, err)
	}
	names, err := st.List()
	if err != nil || len(names) != 1 || names[0] != "a" {
		t.Fatalf("list = %v, %v", names, err)
	}
	if err := st.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("a"); err != nil {
		t.Fatalf("removing a missing file should be a no-op, got %v", err)
	}
	// Path traversal must be refused, not resolved.
	if err := st.Save("../escape", []byte("x")); err == nil {
		t.Error("path traversal accepted")
	}
	// WAL over FileStore, including the truncate-torn-tail path.
	wal, _, _, err := OpenWAL(st, WALName(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	wal.Append([]byte("r"))
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	_, records, _, err := OpenWAL(st, WALName(3), 2)
	if err != nil || len(records) != 1 {
		t.Fatalf("file WAL replay = %d records, %v", len(records), err)
	}
}

// TestMemStoreCorruptHook pins the test hook the engine-level corruption
// tests rely on.
func TestMemStoreCorruptHook(t *testing.T) {
	st := NewMemStore()
	st.Save("f", []byte{0x00})
	if err := st.Corrupt("f", 0); err != nil {
		t.Fatal(err)
	}
	data, _ := st.Load("f")
	if data[0] == 0x00 {
		t.Error("Corrupt flipped nothing")
	}
	if err := st.Corrupt("missing", 0); !IsNotExist(err) {
		t.Errorf("corrupt missing = %v", err)
	}
}

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
