package persist

import (
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// Snapshot container format, version 1. All integers little-endian.
//
//	offset  size  field
//	0       4     magic "LSNP"
//	4       2     format version (1)
//	6       4     section count
//	10      ...   sections
//	end-4   4     CRC32-IEEE of every byte before this field
//
// Each section:
//
//	u16 name length, name bytes
//	u32 payload length, payload bytes
//	u32 CRC32-IEEE of the payload
//
// The trailing whole-file CRC catches corruption anywhere (headers and
// section names included); the per-section CRC localizes the damage for
// diagnostics. Decoding is strict: any structural surprise is a typed
// *Error and no partial result is returned.

// SnapshotVersion is the current container format version.
const SnapshotVersion = 1

var snapshotMagic = [4]byte{'L', 'S', 'N', 'P'}

// SnapshotName is the conventional file name engines snapshot into.
const SnapshotName = "snapshot.snap"

// SnapshotNameFor returns the retained-generation snapshot file name the
// durable layer commits to. Each committed generation keeps its own file
// (snapshot-00000007.snap) so recovery can fall back to an older
// generation when the newest one fails its CRC.
func SnapshotNameFor(generation uint64) string {
	return fmt.Sprintf("snapshot-%08d.snap", generation)
}

// ParseSnapshotName extracts the generation from a SnapshotNameFor-shaped
// file name; ok is false for every other name (including the legacy
// un-suffixed SnapshotName, whose generation lives in its meta section).
func ParseSnapshotName(name string) (generation uint64, ok bool) {
	digits, found := strings.CutPrefix(name, "snapshot-")
	if !found {
		return 0, false
	}
	digits, found = strings.CutSuffix(digits, ".snap")
	if !found || digits == "" {
		return 0, false
	}
	gen, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// SnapshotWriter accumulates named sections and finalizes them into a
// checksummed container.
type SnapshotWriter struct {
	enc      Enc
	sections uint32
}

// NewSnapshotWriter starts an empty snapshot container.
func NewSnapshotWriter() *SnapshotWriter {
	w := &SnapshotWriter{}
	w.enc.b = append(w.enc.b, snapshotMagic[:]...)
	w.enc.U16(SnapshotVersion)
	w.enc.U32(0) // section count, patched in Bytes
	return w
}

// Section appends one named payload.
func (w *SnapshotWriter) Section(name string, payload []byte) {
	w.enc.U16(uint16(len(name)))
	w.enc.b = append(w.enc.b, name...)
	w.enc.U32(uint32(len(payload)))
	w.enc.b = append(w.enc.b, payload...)
	w.enc.U32(crc32.ChecksumIEEE(payload))
	w.sections++
}

// Bytes finalizes the container: patches the section count and appends the
// whole-file CRC. The writer must not be reused afterwards.
func (w *SnapshotWriter) Bytes() []byte {
	b := w.enc.b
	b[6] = byte(w.sections)
	b[7] = byte(w.sections >> 8)
	b[8] = byte(w.sections >> 16)
	b[9] = byte(w.sections >> 24)
	w.enc.U32(crc32.ChecksumIEEE(b[:len(b)]))
	return w.enc.b
}

// Snapshot is a decoded container: ordered named sections.
type Snapshot struct {
	Version  uint16
	names    []string
	payloads [][]byte
}

// Section returns the named payload and whether it exists.
func (s *Snapshot) Section(name string) ([]byte, bool) {
	for i, n := range s.names {
		if n == name {
			return s.payloads[i], true
		}
	}
	return nil, false
}

// Names returns the section names in container order.
func (s *Snapshot) Names() []string { return append([]string(nil), s.names...) }

// DecodeSnapshot parses and fully verifies a snapshot container. Every
// failure is a typed *Error: CodeMalformed (bad magic/structure),
// CodeVersionSkew (unknown version), CodeTruncated (bytes missing) or
// CodeCorrupt (a CRC guard failed).
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	const op = "decode snapshot"
	if len(data) < 14 {
		return nil, Errf(CodeTruncated, op, "%d bytes is smaller than the fixed header", len(data))
	}
	if data[0] != snapshotMagic[0] || data[1] != snapshotMagic[1] ||
		data[2] != snapshotMagic[2] || data[3] != snapshotMagic[3] {
		return nil, Errf(CodeMalformed, op, "bad magic % x", data[:4])
	}
	// Whole-file CRC first: it distinguishes bit rot (CodeCorrupt) from a
	// format we simply do not speak (CodeVersionSkew/CodeMalformed below).
	body := data[:len(data)-4]
	want := uint32(data[len(data)-4]) | uint32(data[len(data)-3])<<8 |
		uint32(data[len(data)-2])<<16 | uint32(data[len(data)-1])<<24
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, Errf(CodeCorrupt, op, "file CRC %08x, want %08x", got, want)
	}
	d := NewDec(body[4:])
	version := d.U16()
	if version != SnapshotVersion {
		return nil, Errf(CodeVersionSkew, op, "format version %d, this build speaks %d", version, SnapshotVersion)
	}
	count := d.U32()
	snap := &Snapshot{Version: version}
	for i := uint32(0); i < count; i++ {
		nameLen := int(d.U16())
		nameBytes := d.take(nameLen, "section name")
		payloadLen := int(d.U32())
		payload := d.take(payloadLen, "section payload")
		crc := d.U32()
		if d.err != nil {
			return nil, Errf(CodeTruncated, op, "section %d/%d incomplete", i+1, count)
		}
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, Errf(CodeCorrupt, op, "section %q CRC %08x, want %08x", string(nameBytes), got, crc)
		}
		snap.names = append(snap.names, string(nameBytes))
		snap.payloads = append(snap.payloads, append([]byte(nil), payload...))
	}
	if err := d.Done(); err != nil {
		return nil, Errf(CodeMalformed, op, "trailing bytes after %d sections", count)
	}
	return snap, nil
}
