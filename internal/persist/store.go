package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemStore is an in-memory Store for tests and embedded use. Safe for
// concurrent use.
type MemStore struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{files: make(map[string][]byte)}
}

// Save implements Store.
func (m *MemStore) Save(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
	return nil
}

// Load implements Store.
func (m *MemStore) Load(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, Errf(CodeNotExist, "load", "%s", name)
	}
	return append([]byte(nil), data...), nil
}

// List implements Store.
func (m *MemStore) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements Store.
func (m *MemStore) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

// OpenAppend implements Store.
func (m *MemStore) OpenAppend(name string, truncateTo int64) (AppendFile, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.files[name]
	if truncateTo >= 0 && truncateTo < int64(len(cur)) {
		cur = cur[:truncateTo]
	}
	// Materialize the (possibly truncated, possibly empty) file now, like
	// FileStore's O_CREATE open does — a freshly rotated WAL must List()
	// even before its first append.
	m.files[name] = append([]byte(nil), cur...)
	buf := &bytes.Buffer{}
	buf.Write(cur)
	return &memAppend{store: m, name: name, buf: buf}, nil
}

// Corrupt flips one bit of a stored file — a test hook for exercising the
// CRC guards.
func (m *MemStore) Corrupt(name string, byteOffset int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return Errf(CodeNotExist, "corrupt", "%s", name)
	}
	if byteOffset < 0 || byteOffset >= len(data) {
		return Errf(CodeMalformed, "corrupt", "offset %d out of %d bytes", byteOffset, len(data))
	}
	data[byteOffset] ^= 0x40
	return nil
}

// memAppend keeps the whole file in its buffer and publishes it to the
// store on every Append, mimicking an OS page cache; Sync is a no-op.
type memAppend struct {
	store *MemStore
	name  string
	buf   *bytes.Buffer
}

func (a *memAppend) Append(p []byte) error {
	a.buf.Write(p)
	a.store.mu.Lock()
	a.store.files[a.name] = append([]byte(nil), a.buf.Bytes()...)
	a.store.mu.Unlock()
	return nil
}

func (a *memAppend) Sync() error  { return nil }
func (a *memAppend) Close() error { return nil }

// FileStore is a directory-backed Store. Save writes a temp file in the
// same directory, fsyncs it, renames it over the target and fsyncs the
// directory — the standard crash-safe atomic-replace sequence.
type FileStore struct {
	dir string
}

// NewFileStore opens (creating if needed) a directory-backed store.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create data dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// OpenFileStore opens an existing directory-backed store, returning a
// typed CodeNotExist error when the directory is missing — the daemon's
// load-on-start path distinguishes "no data yet" from real failures.
func OpenFileStore(dir string) (*FileStore, error) {
	fi, err := os.Stat(dir)
	if os.IsNotExist(err) {
		return nil, Errf(CodeNotExist, "open store", "%s", dir)
	}
	if err != nil {
		return nil, fmt.Errorf("persist: open data dir: %w", err)
	}
	if !fi.IsDir() {
		return nil, Errf(CodeMalformed, "open store", "%s is not a directory", dir)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (f *FileStore) Dir() string { return f.dir }

// path maps a store name onto the directory, rejecting traversal.
func (f *FileStore) path(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return "", Errf(CodeMalformed, "store path", "invalid name %q", name)
	}
	return filepath.Join(f.dir, name), nil
}

// Save implements Store with write-temp, fsync, rename, fsync-dir.
func (f *FileStore) Save(name string, data []byte) error {
	path, err := f.path(name)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(f.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: save %s: %w", name, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("persist: save %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("persist: save %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: save %s: %w", name, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: save %s: %w", name, err)
	}
	return f.syncDir()
}

// syncDir fsyncs the directory so renames survive a crash.
func (f *FileStore) syncDir() error {
	d, err := os.Open(f.dir)
	if err != nil {
		return fmt.Errorf("persist: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems refuse directory fsync; the rename itself is
		// still atomic, so degrade silently rather than failing the save.
		return nil
	}
	return nil
}

// Load implements Store.
func (f *FileStore) Load(name string) ([]byte, error) {
	path, err := f.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, Errf(CodeNotExist, "load", "%s", name)
	}
	if err != nil {
		return nil, fmt.Errorf("persist: load %s: %w", name, err)
	}
	return data, nil
}

// List implements Store, skipping leftover temp files.
func (f *FileStore) List() ([]string, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: list: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements Store.
func (f *FileStore) Remove(name string) error {
	path, err := f.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("persist: remove %s: %w", name, err)
	}
	return nil
}

// OpenAppend implements Store.
func (f *FileStore) OpenAppend(name string, truncateTo int64) (AppendFile, error) {
	path, err := f.path(name)
	if err != nil {
		return nil, err
	}
	fl, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open append %s: %w", name, err)
	}
	if truncateTo >= 0 {
		if err := fl.Truncate(truncateTo); err != nil {
			fl.Close()
			return nil, fmt.Errorf("persist: truncate %s: %w", name, err)
		}
	}
	if _, err := fl.Seek(0, 2); err != nil {
		fl.Close()
		return nil, fmt.Errorf("persist: seek %s: %w", name, err)
	}
	return &fileAppend{f: fl}, nil
}

type fileAppend struct {
	f *os.File
}

func (a *fileAppend) Append(p []byte) error {
	_, err := a.f.Write(p)
	return err
}

func (a *fileAppend) Sync() error { return a.f.Sync() }

func (a *fileAppend) Close() error {
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		return err
	}
	return a.f.Close()
}
