package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Write-ahead log format: a sequence of framed records,
//
//	u8  magic 0xA7
//	u32 payload length (little-endian)
//	u32 CRC32-IEEE of the payload
//	payload bytes
//
// The WAL is append-only and fsync-batched: records buffer in the OS page
// cache and are flushed every SyncEvery appends (and on Sync/Close). A
// crash therefore loses at most the un-fsynced tail — and a torn final
// record is expected, not an error: replay stops at the first frame that
// does not verify and reports how many bytes were dropped.

const walMagic = 0xA7

// walHeaderSize is the per-record framing overhead.
const walHeaderSize = 9

// DefaultWALSyncEvery is how many appended records may accumulate before
// an fsync when the caller does not configure batching.
const DefaultWALSyncEvery = 64

// WALName returns the conventional WAL file name for a snapshot
// generation. Rotating the generation on every snapshot keeps replay
// trivially idempotent: a restore reads exactly the WAL written after the
// snapshot it loaded, never records the snapshot already contains.
func WALName(generation uint64) string {
	return fmt.Sprintf("feed-%08d.wal", generation)
}

// ParseWALName extracts the generation from a WALName-shaped file name;
// ok is false for every other name.
func ParseWALName(name string) (generation uint64, ok bool) {
	digits, found := strings.CutPrefix(name, "feed-")
	if !found {
		return 0, false
	}
	digits, found = strings.CutSuffix(digits, ".wal")
	if !found || digits == "" {
		return 0, false
	}
	gen, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// WALTail describes how cleanly a WAL parse ended.
type WALTail struct {
	// Records is how many complete, verified records were read.
	Records int
	// ValidBytes is the prefix length covered by those records.
	ValidBytes int64
	// DroppedBytes counts trailing bytes past the last valid record — a
	// torn append from a crash (0 for a cleanly closed log).
	DroppedBytes int64
}

// ParseWAL splits a WAL image into verified records. A torn or corrupt
// tail terminates the parse without error; the tail report says how much
// was dropped. Records alias data.
func ParseWAL(data []byte) (records [][]byte, tail WALTail) {
	off := 0
	for off < len(data) {
		if data[off] != walMagic || off+walHeaderSize > len(data) {
			break
		}
		length := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
		crc := binary.LittleEndian.Uint32(data[off+5 : off+9])
		if length < 0 || off+walHeaderSize+length > len(data) {
			break
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+length]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		records = append(records, payload)
		off += walHeaderSize + length
	}
	tail = WALTail{
		Records:      len(records),
		ValidBytes:   int64(off),
		DroppedBytes: int64(len(data) - off),
	}
	return records, tail
}

// AppendWALRecord frames one payload into buf.
func AppendWALRecord(buf []byte, payload []byte) []byte {
	buf = append(buf, walMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// WALObserver receives per-operation measurements from a WAL: append cost
// (framing + buffered write, fsync excluded) and fsync-batch cost. The
// callbacks run under the WAL's lock on the feed path, so implementations
// must be cheap and non-blocking — a few atomic adds (the durable engine
// feeds them into lock-free telemetry histograms).
type WALObserver interface {
	// WALAppend reports one framed record write: the framed byte count and
	// the append call's duration (fsync excluded).
	WALAppend(bytes int, d time.Duration)
	// WALSync reports one fsync batch and its duration.
	WALSync(d time.Duration)
}

// WAL is an open write-ahead log. Safe for concurrent Append.
type WAL struct {
	mu      sync.Mutex
	f       AppendFile
	pending int
	every   int
	scratch []byte
	appends uint64
	obs     WALObserver
}

// SetObserver installs (or with nil clears) the measurement sink. Rotation
// re-installs the previous generation's observer on the fresh handle, so
// lifetime counters span generations.
func (w *WAL) SetObserver(o WALObserver) {
	w.mu.Lock()
	w.obs = o
	w.mu.Unlock()
}

// OpenWAL opens (creating if absent) the named log in the store, first
// reading back and verifying its existing records. The returned records
// are the durable replay tail; a torn final record is truncated away so
// new appends start on a clean frame boundary. syncEvery <= 0 takes
// DefaultWALSyncEvery; syncEvery == 1 fsyncs every record.
func OpenWAL(store Store, name string, syncEvery int) (*WAL, [][]byte, WALTail, error) {
	if syncEvery <= 0 {
		syncEvery = DefaultWALSyncEvery
	}
	var records [][]byte
	var tail WALTail
	if data, err := store.Load(name); err == nil {
		records, tail = ParseWAL(data)
	} else if !IsNotExist(err) {
		return nil, nil, tail, err
	}
	f, err := store.OpenAppend(name, tail.ValidBytes)
	if err != nil {
		return nil, nil, tail, err
	}
	return &WAL{f: f, every: syncEvery}, records, tail, nil
}

// Append frames and writes one record, fsyncing when the batch threshold
// is reached.
func (w *WAL) Append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var start time.Time
	if w.obs != nil {
		start = time.Now()
	}
	w.scratch = AppendWALRecord(w.scratch[:0], payload)
	if err := w.f.Append(w.scratch); err != nil {
		return err
	}
	if w.obs != nil {
		w.obs.WALAppend(len(w.scratch), time.Since(start))
	}
	w.appends++
	w.pending++
	if w.pending >= w.every {
		w.pending = 0
		return w.syncLocked()
	}
	return nil
}

// syncLocked fsyncs under the held lock, reporting the batch to the
// observer.
func (w *WAL) syncLocked() error {
	var start time.Time
	if w.obs != nil {
		start = time.Now()
	}
	err := w.f.Sync()
	if w.obs != nil {
		w.obs.WALSync(time.Since(start))
	}
	return err
}

// Appends returns the lifetime number of records appended through this
// handle.
func (w *WAL) Appends() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends
}

// Sync forces any batched records to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pending = 0
	return w.syncLocked()
}

// Close syncs and releases the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pending = 0
	return w.f.Close()
}
