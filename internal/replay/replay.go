// Package replay streams geo-textual objects from JSON Lines input, so
// real datasets can drive LATEST instead of the synthetic generators. One
// object per line:
//
//	{"id":1,"lon":-118.24,"lat":34.05,"keywords":["fire"],"ts":1700000000000}
//
// Fields map to stream.Object: ts is the virtual-time millisecond
// timestamp (any epoch works; only differences matter), and lines must be
// ordered by non-decreasing ts — the reader enforces this because every
// window structure downstream depends on it. Missing ids are assigned
// sequentially; empty keyword lists are allowed.
package replay

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// wireObject is the JSONL wire format.
type wireObject struct {
	ID       *uint64  `json:"id"`
	Lon      *float64 `json:"lon"`
	Lat      *float64 `json:"lat"`
	Keywords []string `json:"keywords"`
	TS       *int64   `json:"ts"`
}

// Reader decodes a JSONL object stream.
type Reader struct {
	scan   *bufio.Scanner
	line   int
	lastTS int64
	nextID uint64
	seen   bool

	world    geo.Rect
	hasWorld bool
	count    int
}

// NewReader wraps r. Call SetWorld to additionally validate locations
// against a known domain.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &Reader{scan: s}
}

// SetWorld makes Next reject objects outside the given rectangle.
func (r *Reader) SetWorld(world geo.Rect) { r.world, r.hasWorld = world, true }

// Count returns how many objects have been decoded so far.
func (r *Reader) Count() int { return r.count }

// ErrOutOfOrder is wrapped into errors for timestamp regressions.
var ErrOutOfOrder = errors.New("timestamps must be non-decreasing")

// Next returns the next object, io.EOF at end of input, or a line-tagged
// error for malformed input.
func (r *Reader) Next() (stream.Object, error) {
	for r.scan.Scan() {
		r.line++
		raw := r.scan.Bytes()
		if len(trimSpace(raw)) == 0 {
			continue // blank lines are permitted
		}
		var w wireObject
		if err := json.Unmarshal(raw, &w); err != nil {
			return stream.Object{}, fmt.Errorf("replay: line %d: %w", r.line, err)
		}
		o, err := r.build(&w)
		if err != nil {
			return stream.Object{}, fmt.Errorf("replay: line %d: %w", r.line, err)
		}
		r.count++
		return o, nil
	}
	if err := r.scan.Err(); err != nil {
		return stream.Object{}, fmt.Errorf("replay: line %d: %w", r.line, err)
	}
	return stream.Object{}, io.EOF
}

func (r *Reader) build(w *wireObject) (stream.Object, error) {
	if w.Lon == nil || w.Lat == nil {
		return stream.Object{}, errors.New("missing lon/lat")
	}
	if w.TS == nil {
		return stream.Object{}, errors.New("missing ts")
	}
	if r.seen && *w.TS < r.lastTS {
		return stream.Object{}, fmt.Errorf("%w (got %d after %d)", ErrOutOfOrder, *w.TS, r.lastTS)
	}
	loc := geo.Pt(*w.Lon, *w.Lat)
	if r.hasWorld && !r.world.Contains(loc) {
		return stream.Object{}, fmt.Errorf("location %v outside world %v", loc, r.world)
	}
	id := r.nextID
	if w.ID != nil {
		id = *w.ID
	}
	r.nextID = id + 1
	r.lastTS = *w.TS
	r.seen = true
	return stream.Object{
		ID:        id,
		Loc:       loc,
		Keywords:  w.Keywords,
		Timestamp: *w.TS,
	}, nil
}

// trimSpace avoids importing bytes for one call.
func trimSpace(b []byte) []byte {
	start, end := 0, len(b)
	for start < end && (b[start] == ' ' || b[start] == '\t' || b[start] == '\r') {
		start++
	}
	for end > start && (b[end-1] == ' ' || b[end-1] == '\t' || b[end-1] == '\r') {
		end--
	}
	return b[start:end]
}

// Writer encodes objects as JSONL — the inverse of Reader, used to export
// synthetic streams for external tools or to snapshot a replayable trace.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write emits one object.
func (w *Writer) Write(o *stream.Object) error {
	id, lon, lat, ts := o.ID, o.Loc.X, o.Loc.Y, o.Timestamp
	return w.enc.Encode(wireObject{ID: &id, Lon: &lon, Lat: &lat, Keywords: o.Keywords, TS: &ts})
}

// Flush flushes buffered output; call before closing the destination.
func (w *Writer) Flush() error { return w.w.Flush() }
