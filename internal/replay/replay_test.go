package replay

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

func readAll(t *testing.T, r *Reader) []stream.Object {
	t.Helper()
	var out []stream.Object
	for {
		o, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, o)
	}
}

func TestReaderBasic(t *testing.T) {
	in := `{"id":7,"lon":-118.2,"lat":34.0,"keywords":["fire","rescue"],"ts":100}
{"lon":-74.0,"lat":40.7,"keywords":[],"ts":150}

{"lon":-87.6,"lat":41.9,"ts":150}
`
	objs := readAll(t, NewReader(strings.NewReader(in)))
	if len(objs) != 3 {
		t.Fatalf("decoded %d objects", len(objs))
	}
	if objs[0].ID != 7 || objs[0].Loc != geo.Pt(-118.2, 34.0) || objs[0].Timestamp != 100 {
		t.Errorf("obj0 = %+v", objs[0])
	}
	if len(objs[0].Keywords) != 2 || objs[0].Keywords[0] != "fire" {
		t.Errorf("keywords = %v", objs[0].Keywords)
	}
	// Missing id continues from the previous id.
	if objs[1].ID != 8 || objs[2].ID != 9 {
		t.Errorf("assigned ids = %d, %d; want 8, 9", objs[1].ID, objs[2].ID)
	}
	// Equal timestamps are allowed (non-decreasing).
	if objs[2].Timestamp != 150 {
		t.Errorf("ts = %d", objs[2].Timestamp)
	}
}

func TestReaderErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":    `{"lon":1,`,
		"missing lon": `{"lat":1,"ts":1}`,
		"missing lat": `{"lon":1,"ts":1}`,
		"missing ts":  `{"lon":1,"lat":1}`,
	}
	for name, line := range cases {
		t.Run(name, func(t *testing.T) {
			r := NewReader(strings.NewReader(line + "\n"))
			if _, err := r.Next(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReaderOutOfOrder(t *testing.T) {
	in := `{"lon":1,"lat":1,"ts":100}
{"lon":1,"lat":1,"ts":99}
`
	r := NewReader(strings.NewReader(in))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("err = %v, want ErrOutOfOrder", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error not line-tagged: %v", err)
	}
}

func TestReaderWorldValidation(t *testing.T) {
	r := NewReader(strings.NewReader(`{"lon":5,"lat":5,"ts":1}` + "\n"))
	r.SetWorld(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if _, err := r.Next(); err == nil {
		t.Error("out-of-world object accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	objs := []stream.Object{
		{ID: 1, Loc: geo.Pt(-118.2, 34.0), Keywords: []string{"a", "b"}, Timestamp: 10},
		{ID: 2, Loc: geo.Pt(0.5, -0.5), Timestamp: 20},
		{ID: 9, Loc: geo.Pt(179.9, 89.9), Keywords: []string{"x"}, Timestamp: 20},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range objs {
		if err := w.Write(&objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, NewReader(&buf))
	if len(got) != len(objs) {
		t.Fatalf("round trip count %d", len(got))
	}
	for i := range objs {
		if got[i].ID != objs[i].ID || got[i].Loc != objs[i].Loc || got[i].Timestamp != objs[i].Timestamp {
			t.Errorf("obj %d: %+v vs %+v", i, got[i], objs[i])
		}
		if len(got[i].Keywords) != len(objs[i].Keywords) {
			t.Errorf("obj %d keywords: %v vs %v", i, got[i].Keywords, objs[i].Keywords)
		}
	}
	if r := NewReader(strings.NewReader("")); func() bool { _, err := r.Next(); return err == io.EOF }() != true {
		t.Error("empty input should EOF")
	}
}

func TestCount(t *testing.T) {
	in := `{"lon":1,"lat":1,"ts":1}
{"lon":1,"lat":1,"ts":2}
`
	r := NewReader(strings.NewReader(in))
	readAll(t, r)
	if r.Count() != 2 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestLongLine(t *testing.T) {
	// Keyword-heavy objects can exceed bufio's default 64KiB token size;
	// the reader raises its buffer cap.
	kws := make([]string, 0, 20000)
	for i := 0; i < 20000; i++ {
		kws = append(kws, "kw")
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	o := stream.Object{ID: 1, Loc: geo.Pt(1, 1), Keywords: kws, Timestamp: 1}
	if err := w.Write(&o); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if buf.Len() < 80_000 {
		t.Fatalf("test line too short: %d", buf.Len())
	}
	got := readAll(t, NewReader(&buf))
	if len(got) != 1 || len(got[0].Keywords) != 20000 {
		t.Fatal("long line not decoded")
	}
}
