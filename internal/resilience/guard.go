package resilience

import (
	"math"
	"time"

	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/stream"
)

// Guard wraps one estimator with fault containment: panics from Insert,
// Estimate, Observe and Reset are recovered and reported as FaultPanic;
// Estimate results are sanitized (NaN/±Inf/garbage magnitudes become
// value faults, small negatives are clamped to zero) and timed against
// the configured deadline. The guard never decides what to do about a
// fault — it reports the FaultKind and the caller (the module) feeds the
// breaker and routes around the failure.
//
// The wrapper is allocation-free on the hot path: panic recovery is one
// open-coded defer, sanitization a few float comparisons, and only
// Estimate reads the clock (which the unguarded module did anyway to
// measure estimator latency).
type Guard struct {
	name string
	est  estimator.Estimator
	inj  *Injector

	deadline    time.Duration
	maxEstimate float64

	sanitized uint64 // small negative estimates clamped to zero (not faults)
}

// NewGuard wraps est. inj may be nil (no fault injection).
func NewGuard(est estimator.Estimator, cfg Config, inj *Injector) *Guard {
	cfg = cfg.WithDefaults()
	return &Guard{
		name:        est.Name(),
		est:         est,
		inj:         inj,
		deadline:    cfg.Deadline,
		maxEstimate: cfg.MaxEstimate,
	}
}

// Name returns the wrapped estimator's name.
func (g *Guard) Name() string { return g.name }

// Estimator returns the wrapped estimator.
func (g *Guard) Estimator() estimator.Estimator { return g.est }

// Sanitized returns how many estimates were silently clamped from small
// negative values to zero (distinct from value faults).
func (g *Guard) Sanitized() uint64 { return g.sanitized }

// Insert feeds one object through the wrapped estimator, containing any
// panic. Insert is the highest-volume call, so it deliberately does not
// read the clock; the deadline applies to Estimate only.
func (g *Guard) Insert(o *stream.Object) (k FaultKind) {
	defer func() {
		if recover() != nil {
			k = FaultPanic
		}
	}()
	if g.inj != nil {
		switch g.inj.decide(g.name, OpInsert) {
		case InjectPanic:
			panic("resilience: injected insert panic")
		}
	}
	g.est.Insert(o)
	return FaultNone
}

// Estimate answers the query through the wrapped estimator, measuring the
// call and sanitizing the result. On any fault the returned value is 0
// and k names the fault; val is always finite and non-negative.
func (g *Guard) Estimate(q *stream.Query) (val float64, elapsed time.Duration, k FaultKind) {
	var inject InjectKind
	if g.inj != nil {
		inject = g.inj.decide(g.name, OpEstimate)
	}
	val, elapsed, k = g.rawEstimate(q, inject)
	if k != FaultNone {
		return 0, elapsed, k
	}
	switch inject {
	case InjectNaN:
		val = math.NaN()
	case InjectGarbage:
		// Large-magnitude negative: exercises both the sign and the
		// magnitude arm of the sanitizer.
		val = -4 * g.maxEstimate
	case InjectLatency:
		elapsed += g.deadline + time.Millisecond
	}
	if math.IsNaN(val) || math.IsInf(val, 0) || val > g.maxEstimate || val < -g.maxEstimate {
		return 0, elapsed, FaultValue
	}
	if elapsed > g.deadline {
		return 0, elapsed, FaultDeadline
	}
	if val < 0 {
		// Small negative: a numeric wobble, not a fault — clamp.
		g.sanitized++
		val = 0
	}
	return val, elapsed, FaultNone
}

// rawEstimate is the recover boundary for Estimate: the wrapped call and
// the injected panic both happen under this function's defer.
func (g *Guard) rawEstimate(q *stream.Query, inject InjectKind) (val float64, elapsed time.Duration, k FaultKind) {
	start := time.Now()
	defer func() {
		if recover() != nil {
			val, elapsed, k = 0, time.Since(start), FaultPanic
		}
	}()
	if inject == InjectPanic {
		panic("resilience: injected estimate panic")
	}
	val = g.est.Estimate(q)
	return val, time.Since(start), FaultNone
}

// Observe feeds ground truth through the wrapped estimator, containing
// any panic.
func (g *Guard) Observe(q *stream.Query, actual float64) (k FaultKind) {
	defer func() {
		if recover() != nil {
			k = FaultPanic
		}
	}()
	if g.inj != nil {
		switch g.inj.decide(g.name, OpObserve) {
		case InjectPanic:
			panic("resilience: injected observe panic")
		}
	}
	g.est.Observe(q, actual)
	return FaultNone
}

// Reset wipes the wrapped estimator, containing any panic. A Reset panic
// is reported so the breaker hears about it, but the caller should treat
// the estimator as wiped either way.
func (g *Guard) Reset() (k FaultKind) {
	defer func() {
		if recover() != nil {
			k = FaultPanic
		}
	}()
	g.est.Reset()
	return FaultNone
}

// MemoryBytes reports the wrapped estimator's footprint, containing any
// panic (0 on fault).
func (g *Guard) MemoryBytes() (n int) {
	defer func() {
		if recover() != nil {
			n = 0
		}
	}()
	return g.est.MemoryBytes()
}
