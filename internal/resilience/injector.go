package resilience

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// Op names a guarded estimator operation for fault-rule matching.
type Op uint8

const (
	// OpAny matches every operation.
	OpAny Op = iota
	// OpInsert matches Insert calls.
	OpInsert
	// OpEstimate matches Estimate calls.
	OpEstimate
	// OpObserve matches Observe calls.
	OpObserve
)

// InjectKind is the fault a rule injects into a guarded call.
type InjectKind uint8

const (
	// InjectNone injects nothing.
	InjectNone InjectKind = iota
	// InjectPanic panics inside the guarded region.
	InjectPanic
	// InjectNaN replaces the estimate with NaN (Estimate only).
	InjectNaN
	// InjectGarbage replaces the estimate with a huge-magnitude garbage
	// value (Estimate only).
	InjectGarbage
	// InjectLatency inflates the measured call duration past the
	// configured deadline (Estimate only) without actually sleeping, so
	// chaos tests stay fast and deterministic.
	InjectLatency
)

// Rule matches guarded calls and injects a fault with a probability.
type Rule struct {
	// Estimator names the target fleet member; empty matches all.
	Estimator string
	// Op restricts the rule to one operation; OpAny matches all.
	Op Op
	// Kind is the fault to inject.
	Kind InjectKind
	// Probability ∈ [0,1] is the per-call injection chance; values >= 1
	// always fire (and draw nothing from the RNG, keeping 100%-fault
	// chaos runs bit-deterministic even across goroutine interleavings).
	Probability float64
}

// Injector is a deterministic, seed-driven fault source shared by every
// guard of an engine (all shards of a sharded deployment included, hence
// the locking). It starts enabled; SetEnabled(false) turns it into a
// no-op at runtime — the chaos suite uses exactly that to let a poisoned
// estimator recover and prove re-admission.
type Injector struct {
	enabled atomic.Bool

	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
}

// NewInjector builds an injector from seed-driven rules.
func NewInjector(seed int64, rules ...Rule) *Injector {
	inj := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: append([]Rule(nil), rules...),
	}
	inj.enabled.Store(true)
	return inj
}

// SetEnabled flips the injector at runtime. Safe for concurrent use.
func (i *Injector) SetEnabled(on bool) { i.enabled.Store(on) }

// Enabled reports whether the injector is live.
func (i *Injector) Enabled() bool { return i.enabled.Load() }

// decide returns the fault to inject into one guarded call, or
// InjectNone. First matching rule wins.
func (i *Injector) decide(estimator string, op Op) InjectKind {
	if i == nil || !i.enabled.Load() {
		return InjectNone
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, r := range i.rules {
		if r.Estimator != "" && r.Estimator != estimator {
			continue
		}
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Probability >= 1 || i.rng.Float64() < r.Probability {
			return r.Kind
		}
	}
	return InjectNone
}
