// Package resilience provides the fault-isolation layer between LATEST's
// switching logic and its estimator fleet: a guarded estimator wrapper
// that contains panics, sanitizes non-finite estimates and enforces a
// per-call latency deadline; a per-estimator circuit breaker that
// quarantines a misbehaving estimator after repeated faults and re-admits
// it through half-open probing; and a deterministic, seed-driven fault
// injector powering the chaos test suite.
//
// The premise of the paper (§V-D) is that the module can always hand a
// query to *some* live estimator. Online learned estimators are known to
// misbehave under drift — a panic, NaN or pathological estimate inside
// one fleet member must never take down the engine or silently poison the
// accuracy statistics that drive switching. This package is where that
// containment lives; internal/core consumes it to mask quarantined
// estimators out of switch candidates and route around a tripped active
// estimator.
//
// Everything here is single-goroutine like the estimators themselves
// (the module that owns the fleet owns the guards and breakers); only the
// Injector is safe for concurrent use, because one injector is typically
// shared across every shard of a sharded deployment.
package resilience

import (
	"fmt"
	"time"
)

// FaultKind classifies what a guarded call did wrong.
type FaultKind uint8

const (
	// FaultNone means the call completed cleanly.
	FaultNone FaultKind = iota
	// FaultPanic means the call panicked and the guard recovered it.
	FaultPanic
	// FaultValue means the call returned NaN, ±Inf, or a garbage
	// magnitude beyond Config.MaxEstimate.
	FaultValue
	// FaultDeadline means the call exceeded Config.Deadline.
	FaultDeadline
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultValue:
		return "value"
	case FaultDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Config parameterizes the guard and breaker. The zero value takes the
// defaults below, so an un-configured module still gets fault isolation.
type Config struct {
	// Window is the sliding window of recent guarded calls over which
	// faults are counted (default 64 calls).
	Window int
	// Threshold is the number of faults within Window that trips the
	// breaker open (default 5).
	Threshold int
	// Cooldown is how many breaker ticks (one per query the owning module
	// serves) an open breaker waits before moving to half-open and
	// accepting probes (default 256).
	Cooldown int
	// ProbeSuccesses is how many consecutive clean half-open probes
	// close the breaker again (default 3).
	ProbeSuccesses int
	// Deadline is the per-call latency budget for Estimate; calls that
	// run longer count as deadline faults (default 250ms — estimators
	// answer in microseconds, so a quarter second is pathological).
	Deadline time.Duration
	// MaxEstimate is the garbage cutoff: estimates whose magnitude
	// exceeds it are value faults even though they are finite
	// (default 1e12 — no window of stream objects approaches it).
	MaxEstimate float64
}

const (
	defaultWindow         = 64
	defaultThreshold      = 5
	defaultCooldown       = 256
	defaultProbeSuccesses = 3
	defaultDeadline       = 250 * time.Millisecond
	defaultMaxEstimate    = 1e12
)

// WithDefaults fills zero fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.Window <= 0 {
		c.Window = defaultWindow
	}
	if c.Threshold <= 0 {
		c.Threshold = defaultThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = defaultCooldown
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = defaultProbeSuccesses
	}
	if c.Deadline <= 0 {
		c.Deadline = defaultDeadline
	}
	if c.MaxEstimate <= 0 {
		c.MaxEstimate = defaultMaxEstimate
	}
	return c
}

// Validate rejects nonsensical explicit settings (negative values that
// WithDefaults would otherwise paper over).
func (c Config) Validate() error {
	if c.Window < 0 || c.Threshold < 0 || c.Cooldown < 0 || c.ProbeSuccesses < 0 {
		return fmt.Errorf("resilience: breaker window/threshold/cooldown/probes must be non-negative, got %d/%d/%d/%d",
			c.Window, c.Threshold, c.Cooldown, c.ProbeSuccesses)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("resilience: deadline must be non-negative, got %v", c.Deadline)
	}
	if c.MaxEstimate != c.MaxEstimate || c.MaxEstimate < 0 { // NaN or negative
		return fmt.Errorf("resilience: max estimate must be a non-negative number, got %v", c.MaxEstimate)
	}
	// A threshold larger than the effective window can never accumulate in
	// the fault ring: the breaker would silently never trip.
	if w := c.Window; c.Threshold > 0 {
		if w == 0 {
			w = defaultWindow
		}
		if c.Threshold > w {
			return fmt.Errorf("resilience: threshold %d exceeds fault window %d; the breaker could never trip", c.Threshold, w)
		}
	}
	return nil
}

// State is a breaker's position in the quarantine state machine.
type State uint8

const (
	// StateClosed: the estimator is healthy and serves normally.
	StateClosed State = iota
	// StateOpen: the estimator is quarantined — masked out of switch
	// candidates and never called — until the cooldown elapses.
	StateOpen
	// StateHalfOpen: the cooldown elapsed; the estimator accepts probe
	// calls but stays masked until enough probes succeed.
	StateHalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Breaker is a per-estimator circuit breaker. It is single-goroutine,
// owned by the module that owns the estimator.
//
// State machine: Closed —(Threshold faults within Window calls)→ Open
// —(Cooldown ticks)→ HalfOpen —(ProbeSuccesses clean probes)→ Closed,
// or —(any faulty probe)→ Open again.
type Breaker struct {
	cfg Config

	state        State
	ring         []bool // recent call outcomes, true = fault
	next         int
	n            int
	faults       int // faults among the ring's live entries
	cooldownLeft int
	probeOK      int

	// Lifetime counters for telemetry.
	panics       uint64
	valueFaults  uint64
	deadlines    uint64
	quarantines  uint64
	readmissions uint64
}

// NewBreaker builds a breaker with cfg (zero fields take defaults).
func NewBreaker(cfg Config) *Breaker {
	cfg = cfg.WithDefaults()
	return &Breaker{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// State returns the breaker's current state.
func (b *Breaker) State() State { return b.state }

// Quarantined reports whether the estimator must be masked out of switch
// candidates and regular serving (open or half-open).
func (b *Breaker) Quarantined() bool { return b.state != StateClosed }

// ReadyToProbe reports whether the breaker wants a probe call.
func (b *Breaker) ReadyToProbe() bool { return b.state == StateHalfOpen }

// countFault folds one lifetime fault counter.
func (b *Breaker) countFault(k FaultKind) {
	switch k {
	case FaultPanic:
		b.panics++
	case FaultValue:
		b.valueFaults++
	case FaultDeadline:
		b.deadlines++
	}
}

// RecordCall folds one regular guarded call's outcome into the sliding
// window. It returns true exactly when this call trips the breaker open
// (the quarantine event), so the caller can log, trace and re-route.
// Calls recorded while not closed are counted but cannot re-trip.
func (b *Breaker) RecordCall(k FaultKind) (quarantined bool) {
	fault := k != FaultNone
	if fault {
		b.countFault(k)
	}
	if b.state != StateClosed {
		return false
	}
	if b.n == len(b.ring) {
		if b.ring[b.next] {
			b.faults--
		}
	} else {
		b.n++
	}
	b.ring[b.next] = fault
	if fault {
		b.faults++
	}
	b.next = (b.next + 1) % len(b.ring)
	if b.faults >= b.cfg.Threshold {
		b.open()
		return true
	}
	return false
}

// open trips the breaker and clears the fault window for the next life.
func (b *Breaker) open() {
	b.state = StateOpen
	b.cooldownLeft = b.cfg.Cooldown
	b.quarantines++
	b.probeOK = 0
	for i := range b.ring {
		b.ring[i] = false
	}
	b.n, b.next, b.faults = 0, 0, 0
}

// Tick advances quarantine time by one query served by the owning module.
// After Cooldown ticks an open breaker moves to half-open.
func (b *Breaker) Tick() {
	if b.state == StateOpen {
		if b.cooldownLeft > 0 {
			b.cooldownLeft--
		}
		if b.cooldownLeft == 0 {
			b.state = StateHalfOpen
			b.probeOK = 0
		}
	}
}

// RecordProbe folds one half-open probe outcome. A faulty probe re-opens
// the breaker for another full cooldown; ProbeSuccesses consecutive clean
// probes close it. Returns true exactly on the closing (re-admission)
// transition, so the caller can reset+prefill and unmask the estimator.
func (b *Breaker) RecordProbe(k FaultKind) (readmitted bool) {
	if b.state != StateHalfOpen {
		return false
	}
	if k != FaultNone {
		b.countFault(k)
		b.open()
		return false
	}
	b.probeOK++
	if b.probeOK >= b.cfg.ProbeSuccesses {
		b.state = StateClosed
		b.readmissions++
		return true
	}
	return false
}

// Snapshot is a point-in-time copy of a breaker's counters for telemetry.
type Snapshot struct {
	State        State
	Panics       uint64
	ValueFaults  uint64
	Deadlines    uint64
	Quarantines  uint64
	Readmissions uint64
}

// Faults returns the lifetime fault total across kinds.
func (s Snapshot) Faults() uint64 { return s.Panics + s.ValueFaults + s.Deadlines }

// Snapshot reads the breaker's counters.
func (b *Breaker) Snapshot() Snapshot {
	return Snapshot{
		State:        b.state,
		Panics:       b.panics,
		ValueFaults:  b.valueFaults,
		Deadlines:    b.deadlines,
		Quarantines:  b.quarantines,
		Readmissions: b.readmissions,
	}
}
