package resilience

import (
	"math"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// faultyEstimator is a scriptable estimator for guard tests.
type faultyEstimator struct {
	name        string
	panicInsert bool
	panicEst    bool
	panicObs    bool
	panicReset  bool
	ret         float64
	inserts     int
	resets      int
}

func (f *faultyEstimator) Name() string { return f.name }
func (f *faultyEstimator) Insert(o *stream.Object) {
	if f.panicInsert {
		panic("insert boom")
	}
	f.inserts++
}
func (f *faultyEstimator) Estimate(q *stream.Query) float64 {
	if f.panicEst {
		panic("estimate boom")
	}
	return f.ret
}
func (f *faultyEstimator) Observe(q *stream.Query, actual float64) {
	if f.panicObs {
		panic("observe boom")
	}
}
func (f *faultyEstimator) Reset() {
	if f.panicReset {
		panic("reset boom")
	}
	f.resets++
}
func (f *faultyEstimator) MemoryBytes() int { return 42 }

var _ estimator.Estimator = (*faultyEstimator)(nil)

func testQuery() *stream.Query {
	q := stream.SpatialQ(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 100)
	return &q
}

func TestGuardRecoversPanics(t *testing.T) {
	f := &faultyEstimator{name: "X", panicInsert: true, panicEst: true, panicObs: true, panicReset: true}
	g := NewGuard(f, Config{}, nil)
	if k := g.Insert(&stream.Object{}); k != FaultPanic {
		t.Fatalf("Insert fault = %v, want panic", k)
	}
	val, _, k := g.Estimate(testQuery())
	if k != FaultPanic || val != 0 {
		t.Fatalf("Estimate = (%v, %v), want (0, panic)", val, k)
	}
	if k := g.Observe(testQuery(), 1); k != FaultPanic {
		t.Fatalf("Observe fault = %v, want panic", k)
	}
	if k := g.Reset(); k != FaultPanic {
		t.Fatalf("Reset fault = %v, want panic", k)
	}
}

func TestGuardSanitizesValues(t *testing.T) {
	f := &faultyEstimator{name: "X"}
	g := NewGuard(f, Config{}, nil)

	cases := []struct {
		ret     float64
		wantVal float64
		want    FaultKind
	}{
		{ret: 5, wantVal: 5, want: FaultNone},
		{ret: math.NaN(), wantVal: 0, want: FaultValue},
		{ret: math.Inf(1), wantVal: 0, want: FaultValue},
		{ret: math.Inf(-1), wantVal: 0, want: FaultValue},
		{ret: 5e12, wantVal: 0, want: FaultValue},  // beyond MaxEstimate
		{ret: -5e12, wantVal: 0, want: FaultValue}, // garbage-magnitude negative
		{ret: -0.25, wantVal: 0, want: FaultNone},  // numeric wobble: clamped, not a fault
	}
	for _, tc := range cases {
		f.ret = tc.ret
		val, _, k := g.Estimate(testQuery())
		if k != tc.want || val != tc.wantVal {
			t.Errorf("Estimate with ret=%v = (%v, %v), want (%v, %v)", tc.ret, val, k, tc.wantVal, tc.want)
		}
	}
	if g.Sanitized() != 1 {
		t.Fatalf("Sanitized = %d, want 1", g.Sanitized())
	}
}

func TestGuardPassesThroughCleanCalls(t *testing.T) {
	f := &faultyEstimator{name: "X", ret: 7}
	g := NewGuard(f, Config{}, nil)
	if k := g.Insert(&stream.Object{}); k != FaultNone || f.inserts != 1 {
		t.Fatalf("Insert = %v (inserts %d), want clean pass-through", k, f.inserts)
	}
	val, elapsed, k := g.Estimate(testQuery())
	if k != FaultNone || val != 7 || elapsed < 0 {
		t.Fatalf("Estimate = (%v, %v, %v), want (7, >=0, none)", val, elapsed, k)
	}
	if g.MemoryBytes() != 42 {
		t.Fatalf("MemoryBytes = %d, want 42", g.MemoryBytes())
	}
}

func TestBreakerStateMachine(t *testing.T) {
	cfg := Config{Window: 8, Threshold: 3, Cooldown: 5, ProbeSuccesses: 2}
	b := NewBreaker(cfg)

	if b.State() != StateClosed || b.Quarantined() {
		t.Fatal("new breaker should be closed")
	}
	// Two faults: still closed.
	b.RecordCall(FaultPanic)
	if q := b.RecordCall(FaultValue); q || b.State() != StateClosed {
		t.Fatal("below threshold must stay closed")
	}
	// Third fault within window trips it, exactly once.
	if q := b.RecordCall(FaultPanic); !q {
		t.Fatal("threshold fault must report the quarantine transition")
	}
	if b.State() != StateOpen || !b.Quarantined() {
		t.Fatalf("state = %v, want open", b.State())
	}
	// Further faults while open never re-report.
	if q := b.RecordCall(FaultPanic); q {
		t.Fatal("open breaker must not re-report quarantine")
	}
	// Cooldown: 5 ticks to half-open.
	for i := 0; i < 4; i++ {
		b.Tick()
		if b.State() != StateOpen {
			t.Fatalf("tick %d: state = %v, want open", i, b.State())
		}
	}
	b.Tick()
	if b.State() != StateHalfOpen || !b.ReadyToProbe() {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	// A faulty probe re-opens.
	if r := b.RecordProbe(FaultPanic); r || b.State() != StateOpen {
		t.Fatal("faulty probe must re-open")
	}
	for i := 0; i < 5; i++ {
		b.Tick()
	}
	if !b.ReadyToProbe() {
		t.Fatal("breaker should be probing again after second cooldown")
	}
	// Two clean probes close it.
	if r := b.RecordProbe(FaultNone); r {
		t.Fatal("first clean probe must not yet re-admit")
	}
	if r := b.RecordProbe(FaultNone); !r || b.State() != StateClosed {
		t.Fatal("second clean probe must re-admit")
	}

	snap := b.Snapshot()
	if snap.Quarantines != 2 || snap.Readmissions != 1 {
		t.Fatalf("snapshot = %+v, want 2 quarantines, 1 readmission", snap)
	}
	if snap.Panics != 4 || snap.ValueFaults != 1 {
		t.Fatalf("snapshot = %+v, want 4 panics, 1 value fault", snap)
	}
	if snap.Faults() != 5 {
		t.Fatalf("Faults() = %d, want 5", snap.Faults())
	}
}

func TestBreakerSlidingWindowForgetsOldFaults(t *testing.T) {
	b := NewBreaker(Config{Window: 4, Threshold: 3, Cooldown: 1, ProbeSuccesses: 1})
	// Two faults, then enough clean calls to push them out of the window.
	b.RecordCall(FaultPanic)
	b.RecordCall(FaultPanic)
	for i := 0; i < 4; i++ {
		b.RecordCall(FaultNone)
	}
	// Two more faults: total lifetime 4, but only 2 within the window.
	b.RecordCall(FaultPanic)
	if q := b.RecordCall(FaultPanic); q {
		t.Fatal("old faults outside the window must not count toward the threshold")
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestGuardDeadlineFault(t *testing.T) {
	f := &faultyEstimator{name: "X", ret: 3}
	g := NewGuard(f, Config{Deadline: time.Nanosecond}, nil)
	// Any real call takes longer than 1ns.
	val, _, k := g.Estimate(testQuery())
	if k != FaultDeadline || val != 0 {
		t.Fatalf("Estimate = (%v, %v), want (0, deadline)", val, k)
	}
}

func TestInjectorRules(t *testing.T) {
	inj := NewInjector(1,
		Rule{Estimator: "A", Op: OpEstimate, Kind: InjectPanic, Probability: 1},
		Rule{Estimator: "B", Op: OpAny, Kind: InjectNaN, Probability: 1},
	)
	if k := inj.decide("A", OpEstimate); k != InjectPanic {
		t.Fatalf("A/Estimate = %v, want panic", k)
	}
	if k := inj.decide("A", OpInsert); k != InjectNone {
		t.Fatalf("A/Insert = %v, want none (op-scoped rule)", k)
	}
	if k := inj.decide("B", OpObserve); k != InjectNaN {
		t.Fatalf("B/Observe = %v, want NaN (OpAny rule)", k)
	}
	if k := inj.decide("C", OpEstimate); k != InjectNone {
		t.Fatalf("C = %v, want none (no matching rule)", k)
	}
	inj.SetEnabled(false)
	if k := inj.decide("A", OpEstimate); k != InjectNone {
		t.Fatalf("disabled injector = %v, want none", k)
	}
	inj.SetEnabled(true)
	if k := inj.decide("A", OpEstimate); k != InjectPanic {
		t.Fatalf("re-enabled injector = %v, want panic", k)
	}
	var nilInj *Injector
	if k := nilInj.decide("A", OpEstimate); k != InjectNone {
		t.Fatalf("nil injector = %v, want none", k)
	}
}

func TestInjectorProbabilityDeterministic(t *testing.T) {
	count := func(seed int64) int {
		inj := NewInjector(seed, Rule{Kind: InjectPanic, Probability: 0.3})
		n := 0
		for i := 0; i < 1000; i++ {
			if inj.decide("X", OpEstimate) == InjectPanic {
				n++
			}
		}
		return n
	}
	a, b := count(7), count(7)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("p=0.3 fired %d/1000 times, far off expectation", a)
	}
}

func TestGuardInjection(t *testing.T) {
	f := &faultyEstimator{name: "X", ret: 9}
	cases := []struct {
		kind InjectKind
		want FaultKind
	}{
		{InjectPanic, FaultPanic},
		{InjectNaN, FaultValue},
		{InjectGarbage, FaultValue},
		{InjectLatency, FaultDeadline},
	}
	for _, tc := range cases {
		inj := NewInjector(1, Rule{Kind: tc.kind, Probability: 1})
		g := NewGuard(f, Config{}, inj)
		val, _, k := g.Estimate(testQuery())
		if k != tc.want || val != 0 {
			t.Errorf("inject %v: Estimate = (%v, %v), want (0, %v)", tc.kind, val, k, tc.want)
		}
		inj.SetEnabled(false)
		val, _, k = g.Estimate(testQuery())
		if k != FaultNone || val != 9 {
			t.Errorf("inject %v disabled: Estimate = (%v, %v), want (9, none)", tc.kind, val, k)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate, got %v", err)
	}
	bad := []Config{
		{Window: -1},
		{Threshold: -2},
		{Cooldown: -1},
		{ProbeSuccesses: -1},
		{Deadline: -time.Second},
		{MaxEstimate: math.NaN()},
		// Untippable breakers: the threshold can never accumulate inside
		// the fault ring (explicit window, and the default window of 64).
		{Window: 8, Threshold: 9},
		{Threshold: defaultWindow + 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	// Threshold equal to the window is tight but reachable.
	if err := (Config{Window: 8, Threshold: 8}).Validate(); err != nil {
		t.Errorf("threshold == window rejected: %v", err)
	}
}
