package server

import (
	"net"
	"reflect"
	"testing"

	"github.com/spatiotext/latest/internal/cluster"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/wire"
)

// startClusteredServer pre-binds a listener, builds a single-node map
// naming its real address plus a phantom second node, and starts a server
// as node 0 — the coordinator sequence cmd/latestd and the exactness
// oracle use.
func startClusteredServer(t *testing.T, eng Engine) (*Server, *cluster.Map) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	world := geo.Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}
	m, err := cluster.Uniform(world, 4, 1, []string{ln.Addr().String(), "127.0.0.1:1"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, Config{Listener: ln, ClusterMap: m, NodeID: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, m
}

func TestClusteredPongCarriesEpoch(t *testing.T) {
	srv, m := startClusteredServer(t, &fakeEngine{})
	rc := dialRaw(t, srv.Addr())
	rc.write(wire.AppendPing(nil, 1))
	h, payload := rc.read()
	if h.Type != wire.TPong {
		t.Fatalf("got %v, want pong", h.Type)
	}
	epoch, has, err := wire.DecodePong(payload)
	if err != nil || !has || epoch != m.Epoch {
		t.Fatalf("pong epoch = (%d, %v, %v), want (%d, true, nil)", epoch, has, err, m.Epoch)
	}
}

func TestMapFetchServesMap(t *testing.T) {
	srv, m := startClusteredServer(t, &fakeEngine{})
	rc := dialRaw(t, srv.Addr())
	rc.write(wire.AppendMapFetch(nil, 1))
	h, payload := rc.read()
	if h.Type != wire.TMapResult {
		t.Fatalf("got %v, want map_result", h.Type)
	}
	raw, err := wire.DecodeMapResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.DecodeMap(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || !reflect.DeepEqual(got.Nodes, m.Nodes) ||
		!reflect.DeepEqual(got.Owners, m.Owners) {
		t.Fatalf("served map differs: %+v vs %+v", got, m)
	}
}

func TestMapFetchRefusedWhenNotClustered(t *testing.T) {
	srv := startServer(t, &fakeEngine{}, Config{})
	rc := dialRaw(t, srv.Addr())
	rc.write(wire.AppendMapFetch(nil, 1))
	_, re := rc.readErr()
	if re.Code != wire.CodeUnknownType {
		t.Fatalf("code %v, want unknown_type", re.Code)
	}
}

// readNotOwner asserts the next frame is a typed not-owner refusal.
func readNotOwner(t *testing.T, rc *rawConn, wantEpoch uint64) {
	t.Helper()
	h, payload := rc.read()
	if h.Type != wire.TErrNotOwner {
		t.Fatalf("got %v, want err_not_owner", h.Type)
	}
	ne, err := wire.DecodeNotOwner(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ne.Epoch != wantEpoch {
		t.Fatalf("refusal epoch %d, want %d", ne.Epoch, wantEpoch)
	}
}

func TestClusteredFeedOwnershipCheck(t *testing.T) {
	eng := &fakeEngine{}
	srv, m := startClusteredServer(t, eng)
	rc := dialRaw(t, srv.Addr())

	// Node 0 owns the west half (columns 0-1 of 4). An owned object feeds.
	owned := stream.Object{ID: 1, Loc: geo.Pt(-100, 10), Timestamp: 1}
	if m.OwnerOf(owned.Loc) != 0 {
		t.Fatal("fixture: object not owned by node 0")
	}
	rc.write(wire.AppendFeedBatch(nil, 1, []stream.Object{owned}))
	if h, _ := rc.read(); h.Type != wire.TAck {
		t.Fatalf("owned feed answered %v, want ack", h.Type)
	}

	// A batch holding any non-owned object is refused whole, untouched.
	stranger := stream.Object{ID: 2, Loc: geo.Pt(100, 10), Timestamp: 2}
	rc.write(wire.AppendFeedBatch(nil, 2, []stream.Object{owned, stranger}))
	readNotOwner(t, rc, m.Epoch)
	if _, objects := eng.counts(); objects != 1 {
		t.Fatalf("engine holds %d objects, want 1 (refused batch must not feed)", objects)
	}
	if srv.sample().Errors.NotOwner != 1 {
		t.Fatalf("NotOwner counter = %d, want 1", srv.sample().Errors.NotOwner)
	}
}

func TestClusteredQueryOwnershipCheck(t *testing.T) {
	srv, m := startClusteredServer(t, startQueryEngine())
	rc := dialRaw(t, srv.Addr())

	// Estimate over the east half (node 1 territory): refused with epoch.
	east := stream.SpatialQ(geo.Rect{MinX: 50, MinY: 0, MaxX: 120, MaxY: 40}, 5)
	rc.write(wire.AppendEstimate(nil, 1, 0, &east))
	readNotOwner(t, rc, m.Epoch)

	// Estimate over owned territory: answered.
	west := stream.SpatialQ(geo.Rect{MinX: -120, MinY: 0, MaxX: -50, MaxY: 40}, 5)
	rc.write(wire.AppendEstimate(nil, 2, 0, &west))
	if h, _ := rc.read(); h.Type != wire.TEstimateResult {
		t.Fatalf("owned estimate answered %v, want estimate_result", h.Type)
	}

	// Keyword-only queries are owned by every node (broadcast leg).
	kw := stream.KeywordQ([]string{"fire"}, 5)
	rc.write(wire.AppendQueryBatch(nil, 3, 0, []stream.Query{kw}))
	if h, _ := rc.read(); h.Type != wire.TQueryBatchResult {
		t.Fatalf("keyword query answered %v, want query_batch_result", h.Type)
	}

	// A batch mixing owned and non-owned footprints is refused whole.
	rc.write(wire.AppendQueryBatch(nil, 4, 0, []stream.Query{west, east}))
	readNotOwner(t, rc, m.Epoch)
}

func startQueryEngine() *fakeEngine { return &fakeEngine{estimate: 3} }
