package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
	"github.com/spatiotext/latest/internal/wire"
)

// outHeadroom is extra capacity on the response queue beyond the in-flight
// window, reserved so refusal frames (backpressure, draining) can always
// enqueue without deadlocking against the very fullness they report.
const outHeadroom = 16

// conn is one wire-protocol connection: a read loop that decodes and
// dispatches frames inline, and a write loop that flushes encoded
// responses. The out channel is the in-flight window — responses the read
// loop has produced but the peer has not yet been sent.
type conn struct {
	srv    *Server
	nc     net.Conn
	fr     *wire.FrameReader
	out    chan outFrame
	opened time.Time

	// window bounds concurrently in-flight estimate/query requests on
	// this connection; a slot is held from dispatch until the response is
	// enqueued. Feeds process inline on the read loop (ingest order is
	// part of stream semantics), so they are bounded by the out queue
	// instead.
	window  chan struct{}
	workers sync.WaitGroup

	// decode scratch, reused across frames on this connection. Only the
	// read loop touches it.
	objs     []stream.Object
	coalesce []stream.Object
	acks     []feedAck
}

// outFrame is one queued response: the encoded bytes plus the request's
// trace recorder, whose open "write" span the write loop closes (and whose
// timeline it publishes) once the bytes reach the socket. Sending the
// frame transfers trace ownership to the write loop.
type outFrame struct {
	buf *[]byte
	tr  *telemetry.ActiveTrace
}

// feedAck remembers one coalesced feed frame's id and object count so each
// pipelined frame still gets its own acknowledgment.
type feedAck struct {
	id uint64
	n  uint32
}

// countingReader feeds the bytes-in counter without touching the hot
// decode path.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(uint64(n))
	return n, err
}

func newConn(s *Server, nc net.Conn) *conn {
	br := bufio.NewReaderSize(countingReader{nc, &s.st.bytesIn}, 64<<10)
	return &conn{
		srv:    s,
		nc:     nc,
		fr:     wire.NewFrameReader(br, s.cfg.MaxPayload),
		out:    make(chan outFrame, s.cfg.MaxInFlight+outHeadroom),
		opened: time.Now(),
		window: make(chan struct{}, s.cfg.MaxInFlight),
	}
}

func (c *conn) serve() {
	defer c.srv.removeConn(c)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.writeLoop()
	}()
	c.readLoop()
	c.workers.Wait() // in-flight estimate/query workers still own out slots
	close(c.out)     // flush queued responses, then the writer exits
	wg.Wait()
	c.nc.Close()
}

// writeLoop drains the response queue to the socket. After a write error
// it keeps draining (returning buffers, decrementing in-flight) without
// writing, so the read loop never blocks on a dead peer. It is the final
// owner of each response's trace: the "write" span closes and the timeline
// publishes only after the bytes have reached (or failed to reach) the
// socket.
func (c *conn) writeLoop() {
	st := &c.srv.st
	failed := false
	for f := range c.out {
		if !failed {
			if _, err := c.nc.Write(*f.buf); err != nil {
				failed = true
				c.nc.Close() // unblock the read loop
			} else {
				st.bytesOut.Add(uint64(len(*f.buf)))
				st.framesOut.Add(1)
			}
		}
		wire.PutBuf(f.buf)
		st.inFlight.Add(-1)
		f.tr.Finish()
	}
}

// enqueue hands one encoded response (and its trace, if sampled) to the
// write loop. Blocking here is the backstop — dispatch refuses with
// CodeBackpressure before the window fills, so only refusal frames ever
// ride the headroom.
func (c *conn) enqueue(b *[]byte, tr *telemetry.ActiveTrace) {
	c.srv.st.inFlight.Add(1)
	c.out <- outFrame{buf: b, tr: tr}
}

func (c *conn) sendErr(tr *telemetry.ActiveTrace, id uint64, code wire.Code, retryAfter time.Duration, msg string) {
	c.srv.st.countErr(code)
	tr.SetError(code.String())
	b := wire.GetBuf()
	*b = wire.AppendError(*b, id, code, uint32(retryAfter.Milliseconds()), msg)
	tr.BeginSpan("write")
	c.enqueue(b, tr)
}

// decodeErr maps a payload decode failure onto a typed error frame. The
// framing itself was sound (header CRC passed, payload length honored), so
// the connection stays usable.
func (c *conn) decodeErr(tr *telemetry.ActiveTrace, id uint64, err error) {
	var pe *wire.ProtoError
	if errors.As(err, &pe) {
		c.sendErr(tr, id, pe.Code, 0, pe.Reason)
		return
	}
	c.sendErr(tr, id, wire.CodeMalformed, 0, err.Error())
}

func (c *conn) readLoop() {
	for {
		readStart := time.Now()
		h, payload, err := c.fr.Next()
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return
			}
			var pe *wire.ProtoError
			if errors.As(err, &pe) {
				// Malformed header: report once, then drop the
				// connection — after a framing error the stream is
				// desynchronized and nothing further can be trusted.
				c.sendErr(nil, 0, pe.Code, 0, pe.Reason)
				c.srv.log.Warn("framing error, dropping conn",
					"remote", c.nc.RemoteAddr().String(), "err", pe.Reason)
			}
			return
		}
		c.srv.st.framesIn.Add(1)
		c.dispatch(h, payload, readStart)
	}
}

// opName maps a request frame type to its trace operation name.
func opName(t wire.Type) string {
	switch t {
	case wire.TFeedBatch:
		return "feed"
	case wire.TEstimate:
		return "estimate"
	case wire.TQueryBatch:
		return "query"
	case wire.TPing:
		return "ping"
	case wire.TMapFetch:
		return "map_fetch"
	}
	return t.String()
}

// dispatch routes one well-framed request. Refusals (draining, window
// full, unknown type) answer without touching the engine; engine calls run
// under a panic guard so a contained engine failure becomes CodeInternal,
// never a dropped connection without an answer.
//
// A trace-flagged request (wire.FlagTrace) may start a sampled span
// timeline here; the trace's clock zero is the dispatch start, so the
// preceding "read" span — waiting for and decoding the frame — carries a
// negative start offset.
func (c *conn) dispatch(h wire.Header, payload []byte, readStart time.Time) {
	start := time.Now()
	traceID, payload, err := wire.SplitTrace(h, payload)
	if err != nil {
		c.decodeErr(nil, h.ID, err)
		return
	}
	tr := c.srv.traces.Start(opName(h.Type), telemetry.TraceID(traceID))
	tr.AddSpan("read", readStart)
	if !h.Type.Request() {
		c.sendErr(tr, h.ID, wire.CodeUnknownType, 0, "not a request type: "+h.Type.String())
		return
	}
	if c.srv.draining.Load() {
		c.sendErr(tr, h.ID, wire.CodeDraining, c.srv.cfg.RetryAfter, "server draining")
		return
	}
	switch h.Type {
	case wire.TPing:
		if len(c.out) >= c.srv.cfg.MaxInFlight {
			c.sendErr(tr, h.ID, wire.CodeBackpressure, c.srv.cfg.RetryAfter, "in-flight window full")
			return
		}
		c.srv.st.ping.observe(start)
		b := wire.GetBuf()
		encStart := time.Now()
		if cm := c.srv.cfg.ClusterMap; cm != nil {
			// A clustered pong carries the map epoch so routers detect
			// staleness from their cheapest probe.
			*b = wire.AppendPongEpoch(*b, h.ID, cm.Epoch)
		} else {
			*b = wire.AppendPong(*b, h.ID)
		}
		tr.AddSpan("encode", encStart)
		tr.BeginSpan("write")
		c.enqueue(b, tr)
	case wire.TMapFetch:
		if len(c.out) >= c.srv.cfg.MaxInFlight {
			c.sendErr(tr, h.ID, wire.CodeBackpressure, c.srv.cfg.RetryAfter, "in-flight window full")
			return
		}
		if c.srv.clusterBytes == nil {
			c.sendErr(tr, h.ID, wire.CodeUnknownType, 0, "server is not clustered")
			return
		}
		b := wire.GetBuf()
		encStart := time.Now()
		*b = wire.AppendMapResult(*b, h.ID, c.srv.clusterBytes)
		tr.AddSpan("encode", encStart)
		tr.BeginSpan("write")
		c.enqueue(b, tr)
	case wire.TFeedBatch:
		if len(c.out) >= c.srv.cfg.MaxInFlight {
			c.sendErr(tr, h.ID, wire.CodeBackpressure, c.srv.cfg.RetryAfter, "in-flight window full")
			return
		}
		c.handleFeed(h, payload, start, tr)
	case wire.TEstimate, wire.TQueryBatch:
		// Estimates and query batches run on worker goroutines so a
		// pipelining client overlaps them; the window slot is held from
		// here until the response is enqueued.
		select {
		case c.window <- struct{}{}:
		default:
			c.sendErr(tr, h.ID, wire.CodeBackpressure, c.srv.cfg.RetryAfter, "in-flight window full")
			return
		}
		if h.Type == wire.TEstimate {
			c.handleEstimate(h, payload, start, tr)
		} else {
			c.handleQueryBatch(h, payload, start, tr)
		}
	}
}

// ownsAll reports whether this node owns every object in objs under the
// cluster map. A server without a map owns everything.
func (c *conn) ownsAll(objs []stream.Object) bool {
	cm := c.srv.cfg.ClusterMap
	if cm == nil {
		return true
	}
	me := c.srv.cfg.NodeID
	for i := range objs {
		if !cm.OwnsPoint(me, objs[i].Loc) {
			return false
		}
	}
	return true
}

// ownsQuery reports whether this node may answer q. Keyword-only queries
// are accepted anywhere: the router broadcasts them and each node counts
// only its own objects.
func (c *conn) ownsQuery(q *stream.Query) bool {
	cm := c.srv.cfg.ClusterMap
	if cm == nil || !q.HasRange {
		return true
	}
	return cm.OwnsQuery(c.srv.cfg.NodeID, q.Range)
}

// sendNotOwner answers a request this node does not own with the typed
// not-owner frame carrying the map epoch, so a stale router knows to
// refetch the map and re-route.
func (c *conn) sendNotOwner(tr *telemetry.ActiveTrace, id uint64, msg string) {
	c.srv.st.notOwner.Add(1)
	tr.SetError("not_owner")
	b := wire.GetBuf()
	*b = wire.AppendNotOwner(*b, id, c.srv.cfg.ClusterMap.Epoch, msg)
	tr.BeginSpan("write")
	c.enqueue(b, tr)
}

// guard runs an engine call, converting a panic into CodeInternal. The
// engines carry their own resilience layer; this is the serving layer's
// last line — a request must always be answered.
func (c *conn) guard(tr *telemetry.ActiveTrace, id uint64, fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			c.srv.log.Error("engine panic contained", "err", fmt.Sprint(r))
			c.sendErr(tr, id, wire.CodeInternal, 0, "engine failure")
			ok = false
		}
	}()
	fn()
	return true
}

// handleFeed ingests one feed frame, first folding in any pipelined feed
// frames that are already fully buffered — one engine batch instead of N,
// while every frame still gets its own ack. Trace-flagged followers
// coalesce too (their payload prefix is stripped); only the head frame's
// trace records the batch, since the followers share its engine call.
func (c *conn) handleFeed(h wire.Header, payload []byte, start time.Time, tr *telemetry.ActiveTrace) {
	st := &c.srv.st
	objs, err := wire.DecodeFeedBatch(payload, c.objs)
	if err != nil {
		c.decodeErr(tr, h.ID, err)
		return
	}
	if !c.ownsAll(objs) {
		c.objs = objs[:0]
		c.sendNotOwner(tr, h.ID, "batch contains objects this node does not own")
		return
	}
	acks := append(c.acks[:0], feedAck{h.ID, uint32(len(objs))})
	for len(objs) < c.srv.cfg.CoalesceObjects {
		nh, ready := c.fr.PeekHeader()
		if !ready || nh.Type != wire.TFeedBatch || nh.Flags&^wire.KnownFlags != 0 ||
			c.fr.Buffered() < wire.HeaderSize+int(nh.Length) {
			break
		}
		nh, pl, err := c.fr.Next() // fully buffered and header-verified: cannot block
		if err != nil {
			break
		}
		st.framesIn.Add(1)
		if _, pl, err = wire.SplitTrace(nh, pl); err != nil {
			c.decodeErr(nil, nh.ID, err)
			break
		}
		more, err := wire.DecodeFeedBatch(pl, c.coalesce)
		if err != nil {
			// This frame alone is bad; answer it and feed what we have.
			c.decodeErr(nil, nh.ID, err)
			break
		}
		if !c.ownsAll(more) {
			// Refuse this follower frame alone; the head (and any frames
			// already folded in) passed the ownership check and still feeds.
			c.sendNotOwner(nil, nh.ID, "batch contains objects this node does not own")
			c.coalesce = more[:0]
			break
		}
		c.coalesce = more[:0]
		objs = append(objs, more...)
		acks = append(acks, feedAck{nh.ID, uint32(len(more))})
		st.coalescedFeeds.Add(1)
	}
	c.objs = objs[:0]
	c.acks = acks[:0]
	engStart := time.Now()
	if !c.guard(tr, h.ID, func() { c.srv.eng.FeedBatch(objs) }) {
		return
	}
	tr.AddSpan("engine", engStart)
	st.feedObjects.Add(uint64(len(objs)))
	for i, a := range acks {
		st.feed.observe(start)
		b := wire.GetBuf()
		encStart := time.Now()
		*b = wire.AppendAck(*b, a.id, a.n)
		if i == 0 {
			tr.AddSpan("encode", encStart)
			tr.BeginSpan("write")
			c.enqueue(b, tr)
			continue
		}
		c.enqueue(b, nil)
	}
}

// expired reports whether a request's relative deadline budget has
// elapsed. Budgets are milliseconds from frame decode — the two sides
// never need agreeing clocks.
func expired(start time.Time, deadlineMS uint32) bool {
	return deadlineMS > 0 && time.Since(start) > time.Duration(deadlineMS)*time.Millisecond
}

// handleEstimate decodes on the read loop (the payload aliases the frame
// reader's buffer and dies at the next read), then answers from a worker
// holding a window slot. Spawning the worker hands it trace ownership.
func (c *conn) handleEstimate(h wire.Header, payload []byte, start time.Time, tr *telemetry.ActiveTrace) {
	deadlineMS, q, err := wire.DecodeEstimate(payload)
	if err != nil {
		<-c.window
		c.decodeErr(tr, h.ID, err)
		return
	}
	if !c.ownsQuery(&q) {
		<-c.window
		c.sendNotOwner(tr, h.ID, "query footprint not owned by this node")
		return
	}
	c.workers.Add(1)
	queued := time.Now()
	go func() {
		defer c.workers.Done()
		defer func() { <-c.window }()
		tr.AddSpan("queue", queued)
		var est float64
		engStart := time.Now()
		if !c.guard(tr, h.ID, func() { est, _ = c.srv.estimate(&q, tr) }) {
			return
		}
		tr.AddSpan("engine", engStart)
		if expired(start, deadlineMS) {
			// The peer has given up; an answer now is noise it must
			// discard.
			c.sendErr(tr, h.ID, wire.CodeDeadlineExceeded, 0,
				fmt.Sprintf("deadline %dms elapsed", deadlineMS))
			return
		}
		c.srv.st.estimate.observe(start)
		b := wire.GetBuf()
		encStart := time.Now()
		*b = wire.AppendEstimateResult(*b, h.ID, est)
		tr.AddSpan("encode", encStart)
		tr.BeginSpan("write")
		c.enqueue(b, tr)
	}()
}

// handleQueryBatch mirrors handleEstimate. The query slice is freshly
// allocated per request — it crosses into the worker goroutine, so the
// connection scratch cannot back it. Batches record one "engine" span for
// the whole batch; per-estimator attribution stays with single estimates.
func (c *conn) handleQueryBatch(h wire.Header, payload []byte, start time.Time, tr *telemetry.ActiveTrace) {
	deadlineMS, qs, err := wire.DecodeQueryBatch(payload, nil)
	if err != nil {
		<-c.window
		c.decodeErr(tr, h.ID, err)
		return
	}
	for i := range qs {
		if !c.ownsQuery(&qs[i]) {
			<-c.window
			c.sendNotOwner(tr, h.ID, "query footprint not owned by this node")
			return
		}
	}
	c.workers.Add(1)
	queued := time.Now()
	go func() {
		defer c.workers.Done()
		defer func() { <-c.window }()
		tr.AddSpan("queue", queued)
		var ests []float64
		var acts []int
		engStart := time.Now()
		if !c.guard(tr, h.ID, func() { ests, acts = c.srv.eng.EstimateAndExecuteBatch(qs) }) {
			return
		}
		tr.AddSpan("engine", engStart)
		if expired(start, deadlineMS) {
			c.sendErr(tr, h.ID, wire.CodeDeadlineExceeded, 0,
				fmt.Sprintf("deadline %dms elapsed", deadlineMS))
			return
		}
		c.srv.st.query.observe(start)
		b := wire.GetBuf()
		encStart := time.Now()
		*b = wire.AppendQueryBatchResult(*b, h.ID, ests, acts)
		tr.AddSpan("encode", encStart)
		tr.BeginSpan("write")
		c.enqueue(b, tr)
	}()
}
