package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/wire"
)

// outHeadroom is extra capacity on the response queue beyond the in-flight
// window, reserved so refusal frames (backpressure, draining) can always
// enqueue without deadlocking against the very fullness they report.
const outHeadroom = 16

// conn is one wire-protocol connection: a read loop that decodes and
// dispatches frames inline, and a write loop that flushes encoded
// responses. The out channel is the in-flight window — responses the read
// loop has produced but the peer has not yet been sent.
type conn struct {
	srv *Server
	nc  net.Conn
	fr  *wire.FrameReader
	out chan *[]byte

	// window bounds concurrently in-flight estimate/query requests on
	// this connection; a slot is held from dispatch until the response is
	// enqueued. Feeds process inline on the read loop (ingest order is
	// part of stream semantics), so they are bounded by the out queue
	// instead.
	window  chan struct{}
	workers sync.WaitGroup

	// decode scratch, reused across frames on this connection. Only the
	// read loop touches it.
	objs     []stream.Object
	coalesce []stream.Object
	acks     []feedAck
}

// feedAck remembers one coalesced feed frame's id and object count so each
// pipelined frame still gets its own acknowledgment.
type feedAck struct {
	id uint64
	n  uint32
}

// countingReader feeds the bytes-in counter without touching the hot
// decode path.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(uint64(n))
	return n, err
}

func newConn(s *Server, nc net.Conn) *conn {
	br := bufio.NewReaderSize(countingReader{nc, &s.st.bytesIn}, 64<<10)
	return &conn{
		srv:    s,
		nc:     nc,
		fr:     wire.NewFrameReader(br, s.cfg.MaxPayload),
		out:    make(chan *[]byte, s.cfg.MaxInFlight+outHeadroom),
		window: make(chan struct{}, s.cfg.MaxInFlight),
	}
}

func (c *conn) serve() {
	defer c.srv.removeConn(c)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.writeLoop()
	}()
	c.readLoop()
	c.workers.Wait() // in-flight estimate/query workers still own out slots
	close(c.out)     // flush queued responses, then the writer exits
	wg.Wait()
	c.nc.Close()
}

// writeLoop drains the response queue to the socket. After a write error
// it keeps draining (returning buffers, decrementing in-flight) without
// writing, so the read loop never blocks on a dead peer.
func (c *conn) writeLoop() {
	st := &c.srv.st
	failed := false
	for b := range c.out {
		if !failed {
			if _, err := c.nc.Write(*b); err != nil {
				failed = true
				c.nc.Close() // unblock the read loop
			} else {
				st.bytesOut.Add(uint64(len(*b)))
				st.framesOut.Add(1)
			}
		}
		wire.PutBuf(b)
		st.inFlight.Add(-1)
	}
}

// enqueue hands one encoded response to the write loop. Blocking here is
// the backstop — dispatch refuses with CodeBackpressure before the window
// fills, so only refusal frames ever ride the headroom.
func (c *conn) enqueue(b *[]byte) {
	c.srv.st.inFlight.Add(1)
	c.out <- b
}

func (c *conn) sendErr(id uint64, code wire.Code, retryAfter time.Duration, msg string) {
	c.srv.st.countErr(code)
	b := wire.GetBuf()
	*b = wire.AppendError(*b, id, code, uint32(retryAfter.Milliseconds()), msg)
	c.enqueue(b)
}

// decodeErr maps a payload decode failure onto a typed error frame. The
// framing itself was sound (header CRC passed, payload length honored), so
// the connection stays usable.
func (c *conn) decodeErr(id uint64, err error) {
	var pe *wire.ProtoError
	if errors.As(err, &pe) {
		c.sendErr(id, pe.Code, 0, pe.Reason)
		return
	}
	c.sendErr(id, wire.CodeMalformed, 0, err.Error())
}

func (c *conn) readLoop() {
	for {
		h, payload, err := c.fr.Next()
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return
			}
			var pe *wire.ProtoError
			if errors.As(err, &pe) {
				// Malformed header: report once, then drop the
				// connection — after a framing error the stream is
				// desynchronized and nothing further can be trusted.
				c.sendErr(0, pe.Code, 0, pe.Reason)
				c.srv.log.Warn("framing error, dropping conn",
					"remote", c.nc.RemoteAddr().String(), "err", pe.Reason)
			}
			return
		}
		c.srv.st.framesIn.Add(1)
		c.dispatch(h, payload)
	}
}

// dispatch routes one well-framed request. Refusals (draining, window
// full, unknown type) answer without touching the engine; engine calls run
// under a panic guard so a contained engine failure becomes CodeInternal,
// never a dropped connection without an answer.
func (c *conn) dispatch(h wire.Header, payload []byte) {
	start := time.Now()
	if h.Flags != 0 {
		c.sendErr(h.ID, wire.CodeMalformed, 0,
			fmt.Sprintf("reserved header flags 0x%04x must be zero", h.Flags))
		return
	}
	if !h.Type.Request() {
		c.sendErr(h.ID, wire.CodeUnknownType, 0, "not a request type: "+h.Type.String())
		return
	}
	if c.srv.draining.Load() {
		c.sendErr(h.ID, wire.CodeDraining, c.srv.cfg.RetryAfter, "server draining")
		return
	}
	switch h.Type {
	case wire.TPing:
		if len(c.out) >= c.srv.cfg.MaxInFlight {
			c.sendErr(h.ID, wire.CodeBackpressure, c.srv.cfg.RetryAfter, "in-flight window full")
			return
		}
		c.srv.st.ping.observe(start)
		b := wire.GetBuf()
		*b = wire.AppendPong(*b, h.ID)
		c.enqueue(b)
	case wire.TFeedBatch:
		if len(c.out) >= c.srv.cfg.MaxInFlight {
			c.sendErr(h.ID, wire.CodeBackpressure, c.srv.cfg.RetryAfter, "in-flight window full")
			return
		}
		c.handleFeed(h, payload, start)
	case wire.TEstimate, wire.TQueryBatch:
		// Estimates and query batches run on worker goroutines so a
		// pipelining client overlaps them; the window slot is held from
		// here until the response is enqueued.
		select {
		case c.window <- struct{}{}:
		default:
			c.sendErr(h.ID, wire.CodeBackpressure, c.srv.cfg.RetryAfter, "in-flight window full")
			return
		}
		if h.Type == wire.TEstimate {
			c.handleEstimate(h, payload, start)
		} else {
			c.handleQueryBatch(h, payload, start)
		}
	}
}

// guard runs an engine call, converting a panic into CodeInternal. The
// engines carry their own resilience layer; this is the serving layer's
// last line — a request must always be answered.
func (c *conn) guard(id uint64, fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			c.srv.log.Error("engine panic contained", "err", fmt.Sprint(r))
			c.sendErr(id, wire.CodeInternal, 0, "engine failure")
			ok = false
		}
	}()
	fn()
	return true
}

// handleFeed ingests one feed frame, first folding in any pipelined feed
// frames that are already fully buffered — one engine batch instead of N,
// while every frame still gets its own ack.
func (c *conn) handleFeed(h wire.Header, payload []byte, start time.Time) {
	st := &c.srv.st
	objs, err := wire.DecodeFeedBatch(payload, c.objs)
	if err != nil {
		c.decodeErr(h.ID, err)
		return
	}
	acks := append(c.acks[:0], feedAck{h.ID, uint32(len(objs))})
	for len(objs) < c.srv.cfg.CoalesceObjects {
		nh, ready := c.fr.PeekHeader()
		if !ready || nh.Type != wire.TFeedBatch || nh.Flags != 0 ||
			c.fr.Buffered() < wire.HeaderSize+int(nh.Length) {
			break
		}
		nh, pl, err := c.fr.Next() // fully buffered and header-verified: cannot block
		if err != nil {
			break
		}
		st.framesIn.Add(1)
		more, err := wire.DecodeFeedBatch(pl, c.coalesce)
		if err != nil {
			// This frame alone is bad; answer it and feed what we have.
			c.decodeErr(nh.ID, err)
			break
		}
		c.coalesce = more[:0]
		objs = append(objs, more...)
		acks = append(acks, feedAck{nh.ID, uint32(len(more))})
		st.coalescedFeeds.Add(1)
	}
	c.objs = objs[:0]
	c.acks = acks[:0]
	if !c.guard(h.ID, func() { c.srv.eng.FeedBatch(objs) }) {
		return
	}
	st.feedObjects.Add(uint64(len(objs)))
	for _, a := range acks {
		st.feed.observe(start)
		b := wire.GetBuf()
		*b = wire.AppendAck(*b, a.id, a.n)
		c.enqueue(b)
	}
}

// expired reports whether a request's relative deadline budget has
// elapsed. Budgets are milliseconds from frame decode — the two sides
// never need agreeing clocks.
func expired(start time.Time, deadlineMS uint32) bool {
	return deadlineMS > 0 && time.Since(start) > time.Duration(deadlineMS)*time.Millisecond
}

// handleEstimate decodes on the read loop (the payload aliases the frame
// reader's buffer and dies at the next read), then answers from a worker
// holding a window slot.
func (c *conn) handleEstimate(h wire.Header, payload []byte, start time.Time) {
	deadlineMS, q, err := wire.DecodeEstimate(payload)
	if err != nil {
		<-c.window
		c.decodeErr(h.ID, err)
		return
	}
	c.workers.Add(1)
	go func() {
		defer c.workers.Done()
		defer func() { <-c.window }()
		var est float64
		if !c.guard(h.ID, func() { est, _ = c.srv.eng.EstimateAndExecute(&q) }) {
			return
		}
		if expired(start, deadlineMS) {
			// The peer has given up; an answer now is noise it must
			// discard.
			c.sendErr(h.ID, wire.CodeDeadlineExceeded, 0,
				fmt.Sprintf("deadline %dms elapsed", deadlineMS))
			return
		}
		c.srv.st.estimate.observe(start)
		b := wire.GetBuf()
		*b = wire.AppendEstimateResult(*b, h.ID, est)
		c.enqueue(b)
	}()
}

// handleQueryBatch mirrors handleEstimate. The query slice is freshly
// allocated per request — it crosses into the worker goroutine, so the
// connection scratch cannot back it.
func (c *conn) handleQueryBatch(h wire.Header, payload []byte, start time.Time) {
	deadlineMS, qs, err := wire.DecodeQueryBatch(payload, nil)
	if err != nil {
		<-c.window
		c.decodeErr(h.ID, err)
		return
	}
	c.workers.Add(1)
	go func() {
		defer c.workers.Done()
		defer func() { <-c.window }()
		var ests []float64
		var acts []int
		if !c.guard(h.ID, func() { ests, acts = c.srv.eng.EstimateAndExecuteBatch(qs) }) {
			return
		}
		if expired(start, deadlineMS) {
			c.sendErr(h.ID, wire.CodeDeadlineExceeded, 0,
				fmt.Sprintf("deadline %dms elapsed", deadlineMS))
			return
		}
		c.srv.st.query.observe(start)
		b := wire.GetBuf()
		*b = wire.AppendQueryBatchResult(*b, h.ID, ests, acts)
		c.enqueue(b)
	}()
}
