package server

import (
	latest "github.com/spatiotext/latest"
)

// Both production engines must satisfy the serving-layer Engine surface;
// Object and Query are aliases of the internal stream types, so the
// signatures line up without adapters. A compile failure here means a
// public engine method changed shape.
var (
	_ Engine = (*latest.ConcurrentSystem)(nil)
	_ Engine = (*latest.ShardedSystem)(nil)
	_ Engine = (*latest.DurableEngine)(nil)
)
