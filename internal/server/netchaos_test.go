package server

import (
	"net"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/netchaos"
	"github.com/spatiotext/latest/internal/wire"
)

// TestServerSurvivesMidFrameClientCut: a client link that dies inside a
// request frame (10 bytes into the 24-byte header) must cost the server
// nothing but that one connection — the partial frame is discarded, the
// conn is reaped, and the next connection serves normally.
func TestServerSurvivesMidFrameClientCut(t *testing.T) {
	eng := &fakeEngine{estimate: 1}
	srv := startServer(t, eng, Config{})

	p, err := netchaos.New(srv.Addr(),
		netchaos.ConnPlan{CutUpstreamAfter: 10},
		netchaos.ConnPlan{},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	nc.Write(wire.AppendPing(nil, 1))
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, rerr := nc.Read(buf); rerr == nil {
		t.Fatal("read succeeded across a mid-frame cut")
	}
	nc.Close()

	// The torn connection must be fully released — the server's active
	// conn count returning to zero proves the handler didn't wedge on the
	// partial frame.
	deadline := time.Now().Add(5 * time.Second)
	for srv.st.connsActive.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still holds %d conns after the cut", srv.st.connsActive.Load())
		}
		time.Sleep(time.Millisecond)
	}

	rc := dialRaw(t, p.Addr())
	rc.write(wire.AppendPing(nil, 2))
	if h, _ := rc.read(); h.Type != wire.TPong || h.ID != 2 {
		t.Fatalf("bad pong on the connection after the cut: %+v", h)
	}
}
