// Package server is the network serving layer: it fronts an engine with
// two planes. The hot path is the length-prefixed binary protocol from
// internal/wire on a plain TCP listener — feed batches, estimates, query
// batches, pings — with per-connection read/write loops, a bounded
// in-flight response window, coalescing of pipelined feed frames into one
// engine batch, per-request deadline budgets, and typed error frames for
// every rejection. The admin plane is the HTTP/JSON exposition server from
// internal/telemetry (health, stats, gauges, Prometheus text, pprof) plus
// a drain trigger.
//
// Graceful drain follows a GOAWAY-style sequence: the listener closes, new
// requests on live connections are answered with CodeDraining plus a
// retry-after hint while already-accepted requests finish and flush, and
// connections close once their peers hang up (or at the drain deadline,
// whichever comes first). A client that stops issuing requests after its
// first draining error therefore never loses an in-flight request.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/cluster"
	"github.com/spatiotext/latest/internal/telemetry"
	"github.com/spatiotext/latest/internal/wire"
)

// Engine is the estimator surface the serving layer fronts: the unified
// latest.Engine contract. Every engine shape — ConcurrentSystem,
// ShardedSystem, and the persistence-wrapping DurableEngine — satisfies it
// (Object and Query are aliases of the internal stream types).
type Engine = latest.Engine

// Config tunes a Server. Zero values mean defaults.
type Config struct {
	// Addr is the wire-protocol listen address ("host:port"; port 0 lets
	// the kernel pick — read it back with Addr).
	Addr string
	// AdminAddr, when non-empty, starts the HTTP admin/exposition plane.
	AdminAddr string
	// MaxConns caps concurrently open wire connections; excess accepts are
	// closed immediately and counted as rejected. Default 256.
	MaxConns int
	// MaxInFlight bounds each connection's queued-but-unwritten responses.
	// A pipelined client running further ahead than this gets
	// CodeBackpressure refusals with a retry-after hint. Default 64.
	MaxInFlight int
	// MaxPayload bounds accepted frame payloads. Default
	// wire.DefaultMaxPayload.
	MaxPayload int
	// CoalesceObjects caps how many objects from pipelined feed frames are
	// merged into a single engine batch. Default 8192.
	CoalesceObjects int
	// RetryAfter is the hint carried in backpressure and draining errors.
	// Default 50ms.
	RetryAfter time.Duration
	// TraceDepth sizes the /debug/requests ring of retained span timelines.
	// Default telemetry.DefaultTraceBufferDepth.
	TraceDepth int
	// TraceEvery is the trace sampling stride: one trace-flagged request in
	// this many is retained with its full span timeline (1 retains all).
	// Default telemetry.DefaultTraceSampleEvery.
	TraceEvery int
	// Log receives serving-layer lifecycle lines. nil is silent.
	Log *telemetry.Logger

	// ClusterMap, when set, makes this server one node of a cluster: it
	// refuses feeds of objects and queries of footprints it does not own
	// under the map with the typed not-owner frame (carrying the map
	// epoch), serves the encoded map to TMapFetch, and stamps pongs with
	// the epoch so routers detect staleness cheaply.
	ClusterMap *cluster.Map
	// NodeID is this server's index into ClusterMap.Nodes. Ignored unless
	// ClusterMap is set.
	NodeID int
	// Listener, when non-nil, is served instead of binding Addr. A cluster
	// coordinator pre-binds :0 listeners to learn real addresses, builds
	// the partition map naming them, and only then starts the servers.
	Listener net.Listener
}

func (c *Config) withDefaults() {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = wire.DefaultMaxPayload
	}
	if c.CoalesceObjects <= 0 {
		c.CoalesceObjects = 8192
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
}

// opStat pairs a request counter with its latency histogram.
type opStat struct {
	requests atomic.Uint64
	latency  telemetry.Histogram
}

func (o *opStat) observe(start time.Time) {
	o.requests.Add(1)
	o.latency.Record(time.Since(start))
}

// serverStats is the atomically-updated source for ServerSample.
type serverStats struct {
	connsActive    atomic.Int64
	connsAccepted  atomic.Uint64
	connsRejected  atomic.Uint64
	bytesIn        atomic.Uint64
	bytesOut       atomic.Uint64
	framesIn       atomic.Uint64
	framesOut      atomic.Uint64
	inFlight       atomic.Int64
	feedObjects    atomic.Uint64
	coalescedFeeds atomic.Uint64
	connDur        telemetry.Histogram

	feed     opStat
	estimate opStat
	query    opStat
	ping     opStat

	errs     [9]atomic.Uint64 // indexed by wire.Code (1..8)
	notOwner atomic.Uint64    // typed not-owner refusals (no wire.Code)
}

func (st *serverStats) countErr(code wire.Code) {
	if int(code) < len(st.errs) {
		st.errs[code].Add(1)
	}
}

// Server fronts an Engine with the wire protocol and the admin plane.
type Server struct {
	cfg    Config
	eng    Engine
	ln     net.Listener
	admin  *telemetry.Server
	log    *telemetry.Logger
	traces *telemetry.TraceBuffer

	clusterBytes []byte // ClusterMap pre-encoded for TMapFetch

	st       serverStats
	draining atomic.Bool
	drainCh  chan struct{} // closed by the admin /drain trigger
	drainReq sync.Once

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
	stopOnce sync.Once
}

// New binds the wire listener (and the admin plane when configured) and
// starts accepting. The returned server is live; stop it with Shutdown or
// Close.
func New(eng Engine, cfg Config) (*Server, error) {
	if eng == nil {
		return nil, errors.New("server: nil engine")
	}
	cfg.withDefaults()
	if cfg.ClusterMap != nil {
		if cfg.NodeID < 0 || cfg.NodeID >= len(cfg.ClusterMap.Nodes) {
			return nil, fmt.Errorf("server: node id %d out of range for %d-node map",
				cfg.NodeID, len(cfg.ClusterMap.Nodes))
		}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("server: listen: %w", err)
		}
	}
	s := &Server{
		cfg:     cfg,
		eng:     eng,
		ln:      ln,
		log:     cfg.Log.Named("server"),
		traces:  telemetry.NewTraceBuffer(cfg.TraceDepth, cfg.TraceEvery),
		drainCh: make(chan struct{}),
		conns:   make(map[*conn]struct{}),
	}
	if cfg.ClusterMap != nil {
		s.clusterBytes = cfg.ClusterMap.Encode()
	}
	if cfg.AdminAddr != "" {
		admin, err := telemetry.Serve(cfg.AdminAddr, s.snapshot, cfg.Log,
			telemetry.Route{Pattern: "/healthz", Handler: http.HandlerFunc(s.handleHealthz)},
			telemetry.Route{Pattern: "/readyz", Handler: http.HandlerFunc(s.handleReadyz)},
			telemetry.Route{Pattern: "/drain", Handler: http.HandlerFunc(s.handleDrain)},
			telemetry.Route{Pattern: "/debug/requests", Handler: s.traces.Handler()},
		)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.admin = admin
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	if cfg.ClusterMap != nil {
		s.log.Info("serving", "addr", ln.Addr().String(), "admin", cfg.AdminAddr,
			"node", cfg.NodeID, "epoch", cfg.ClusterMap.Epoch)
	} else {
		s.log.Info("serving", "addr", ln.Addr().String(), "admin", cfg.AdminAddr)
	}
	return s, nil
}

// Addr returns the bound wire-protocol address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AdminAddr returns the bound admin-plane address, or "" when disabled.
func (s *Server) AdminAddr() string {
	if s.admin == nil {
		return ""
	}
	return s.admin.Addr()
}

// DrainRequested is closed when an operator hits the admin /drain
// endpoint. The owning process (cmd/latestd) selects on it alongside
// SIGTERM and runs the same Shutdown path for both.
func (s *Server) DrainRequested() <-chan struct{} { return s.drainCh }

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain or Close
		}
		if s.draining.Load() || s.st.connsActive.Load() >= int64(s.cfg.MaxConns) {
			s.st.connsRejected.Add(1)
			nc.Close()
			continue
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.st.connsActive.Add(1)
		s.st.connsAccepted.Add(1)
		s.connWG.Add(1)
		go c.serve()
	}
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.st.connDur.Record(time.Since(c.opened))
	s.st.connsActive.Add(-1)
	s.connWG.Done()
}

// Traces exposes the sampled-trace buffer (the /debug/requests source);
// tests and embedding processes read it directly.
func (s *Server) Traces() *telemetry.TraceBuffer { return s.traces }

// estimate runs one query, threading the request trace into the engine
// when the engine supports span attribution (all shipped shapes do).
func (s *Server) estimate(q *latest.Query, tr *telemetry.ActiveTrace) (float64, int) {
	if tr != nil {
		if te, ok := s.eng.(latest.TracedEngine); ok {
			return te.EstimateAndExecuteTraced(q, tr)
		}
	}
	return s.eng.EstimateAndExecute(q)
}

// Shutdown drains gracefully: stop accepting, answer new requests with
// CodeDraining, let accepted requests finish and flush, and wait for peers
// to hang up. At ctx expiry any straggler connections are force-closed.
// Idempotent with Close; the engine is not touched — the caller owns its
// lifecycle.
func (s *Server) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		s.ln.Close()
		s.acceptWG.Wait()
		s.log.Info("draining", "conns", s.st.connsActive.Load(),
			"inflight", s.st.inFlight.Load())

		// Wait for peers to finish and hang up; poll rather than
		// channel-per-conn since drain is rare and seconds-scale.
		done := make(chan struct{})
		go func() {
			s.connWG.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.mu.Lock()
			n := len(s.conns)
			for c := range s.conns {
				c.nc.Close()
			}
			s.mu.Unlock()
			<-done
			err = fmt.Errorf("server: drain deadline: force-closed %d conns: %w", n, ctx.Err())
		}
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		if s.admin != nil {
			if aerr := s.admin.Shutdown(ctx); err == nil {
				err = aerr
			}
		}
		s.log.Info("stopped")
	})
	return err
}

// Close force-stops: listener, all connections, admin plane. In-flight
// requests are abandoned. Idempotent with Shutdown.
func (s *Server) Close() error {
	var err error
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		s.ln.Close()
		s.acceptWG.Wait()
		s.mu.Lock()
		s.closed = true
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		s.connWG.Wait()
		if s.admin != nil {
			err = s.admin.Close()
		}
		s.log.Info("stopped")
	})
	return err
}

// snapshot is the admin plane's scrape source: the engine's own snapshot
// with the serving-layer sample attached.
func (s *Server) snapshot() telemetry.Snapshot {
	snap := s.eng.TelemetrySnapshot()
	sample := s.sample()
	snap.Server = &sample
	return snap
}

// sample builds the serving-layer slice of the telemetry snapshot.
func (s *Server) sample() telemetry.ServerSample {
	st := &s.st
	return telemetry.ServerSample{
		Addr:           s.Addr(),
		Draining:       s.draining.Load(),
		ConnsActive:    st.connsActive.Load(),
		ConnsAccepted:  st.connsAccepted.Load(),
		ConnsRejected:  st.connsRejected.Load(),
		BytesIn:        st.bytesIn.Load(),
		BytesOut:       st.bytesOut.Load(),
		FramesIn:       st.framesIn.Load(),
		FramesOut:      st.framesOut.Load(),
		InFlight:       st.inFlight.Load(),
		FeedObjects:    st.feedObjects.Load(),
		CoalescedFeeds: st.coalescedFeeds.Load(),
		Ops: []telemetry.ServerOp{
			{Op: "feed", Requests: st.feed.requests.Load(), Latency: st.feed.latency.Snapshot()},
			{Op: "estimate", Requests: st.estimate.requests.Load(), Latency: st.estimate.latency.Snapshot()},
			{Op: "query", Requests: st.query.requests.Load(), Latency: st.query.latency.Snapshot()},
			{Op: "ping", Requests: st.ping.requests.Load(), Latency: st.ping.latency.Snapshot()},
		},
		ConnDuration:  st.connDur.Snapshot(),
		TracesSeen:    s.traces.Seen(),
		TracesSampled: s.traces.Sampled(),
		Errors: telemetry.ServerErrors{
			Malformed:    st.errs[wire.CodeMalformed].Load(),
			TooLarge:     st.errs[wire.CodeTooLarge].Load(),
			VersionSkew:  st.errs[wire.CodeVersionSkew].Load(),
			UnknownType:  st.errs[wire.CodeUnknownType].Load(),
			Backpressure: st.errs[wire.CodeBackpressure].Load(),
			Draining:     st.errs[wire.CodeDraining].Load(),
			Deadline:     st.errs[wire.CodeDeadlineExceeded].Load(),
			Internal:     st.errs[wire.CodeInternal].Load(),
			NotOwner:     st.notOwner.Load(),
		},
	}
}

// healthStatus assesses the whole stack for the health endpoints: the
// serving layer's drain state, the durability layer's degraded-mode
// machine (via latest.HealthReporter, the same type-assert extension
// pattern TracedEngine uses) and the accuracy-drift watchdog.
func (s *Server) healthStatus() (status string, reasons []string) {
	if hr, ok := s.eng.(latest.HealthReporter); ok {
		if h := hr.Health(); !h.Healthy() {
			reasons = append(reasons, "persistence:"+h.State.String())
		}
	}
	for _, d := range s.eng.TelemetrySnapshot().Drift {
		if d.Drifted {
			reasons = append(reasons, "drift:"+d.Estimator)
		}
	}
	status = "ok"
	if len(reasons) > 0 {
		status = "degraded"
	}
	if s.draining.Load() {
		status = "draining"
		reasons = append(reasons, "draining")
	}
	return status, reasons
}

// handleHealthz is liveness plus condition: HTTP 200 as long as the
// process serves — even degraded, since a restart will not mend a broken
// disk and would lose the in-memory state a repair snapshot could still
// save — with the real assessment in the body. Route away on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status, reasons := s.healthStatus()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":   status,
		"reasons":  reasons,
		"draining": s.draining.Load(),
		"conns":    s.st.connsActive.Load(),
	})
}

// handleReadyz splits readiness from liveness: HTTP 503 while draining,
// persistence-degraded or drift-tripped, so load balancers stop routing
// here while the process stays up (and /healthz stays 200).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	status, reasons := s.healthStatus()
	ready := status == "ok"
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"ready":   ready,
		"status":  status,
		"reasons": reasons,
	})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	s.drainReq.Do(func() { close(s.drainCh) })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"draining": true})
}
