package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/persist"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
	"github.com/spatiotext/latest/internal/wire"
)

// fakeEngine is a deterministic Engine: fixed estimate, optional per-call
// delay, optional gate that blocks estimates until released, optional
// panic injection.
type fakeEngine struct {
	mu      sync.Mutex
	batches int
	objects int

	estimate float64
	delay    time.Duration
	gate     chan struct{} // non-nil: estimates block until a receive succeeds
	panicky  bool
	drift    []telemetry.DriftSample // reported by TelemetrySnapshot
}

func (f *fakeEngine) FeedBatch(objs []stream.Object) {
	f.mu.Lock()
	f.batches++
	f.objects += len(objs)
	f.mu.Unlock()
}

func (f *fakeEngine) counts() (batches, objects int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.batches, f.objects
}

func (f *fakeEngine) EstimateAndExecute(q *stream.Query) (float64, int) {
	if f.panicky {
		panic("injected engine fault")
	}
	if f.gate != nil {
		<-f.gate
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return f.estimate, int(f.estimate)
}

func (f *fakeEngine) EstimateAndExecuteBatch(qs []stream.Query) ([]float64, []int) {
	ests := make([]float64, len(qs))
	acts := make([]int, len(qs))
	for i := range qs {
		ests[i], acts[i] = f.EstimateAndExecute(&qs[i])
	}
	return ests, acts
}

func (f *fakeEngine) TelemetrySnapshot() telemetry.Snapshot {
	return telemetry.Snapshot{Engine: "fake", Drift: f.drift}
}

// The remaining latest.Engine methods are inert: the serving layer never
// calls them, but the unified interface requires every shape to carry them.
func (f *fakeEngine) Feed(o stream.Object)                         { f.FeedBatch([]stream.Object{o}) }
func (f *fakeEngine) Stats() latest.Stats                          { return latest.Stats{} }
func (f *fakeEngine) Shutdown(context.Context) error               { return nil }
func (f *fakeEngine) Snapshot(context.Context, latest.Store) error { return nil }
func (f *fakeEngine) Restore(context.Context, latest.Store) error  { return nil }

// rawConn drives the wire protocol directly, with no client-side help.
type rawConn struct {
	t  *testing.T
	nc net.Conn
	fr *wire.FrameReader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc, fr: wire.NewFrameReader(bufio.NewReader(nc), 0)}
}

// write sends all frames in one TCP write so the server sees them as one
// pipelined burst.
func (r *rawConn) write(frames ...[]byte) {
	r.t.Helper()
	var buf []byte
	for _, f := range frames {
		buf = append(buf, f...)
	}
	if _, err := r.nc.Write(buf); err != nil {
		r.t.Fatalf("write: %v", err)
	}
}

// read returns the next frame with the payload copied out.
func (r *rawConn) read() (wire.Header, []byte) {
	r.t.Helper()
	r.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	h, payload, err := r.fr.Next()
	if err != nil {
		r.t.Fatalf("read frame: %v", err)
	}
	return h, append([]byte(nil), payload...)
}

func (r *rawConn) readErr() (wire.Header, *wire.RemoteError) {
	r.t.Helper()
	h, payload := r.read()
	if h.Type != wire.TError {
		r.t.Fatalf("expected TError, got %v", h.Type)
	}
	re, err := wire.DecodeError(payload)
	if err != nil {
		r.t.Fatalf("decode error frame: %v", err)
	}
	return h, re
}

func testObj(id uint64) stream.Object {
	o := stream.Object{ID: id, Timestamp: int64(id), Keywords: []string{"fire", "storm"}}
	o.Loc.X, o.Loc.Y = -118.2+float64(id)*0.001, 34.05
	return o
}

func testQuery() stream.Query {
	var p geo.Point
	p.X, p.Y = -118.2, 34.05
	return stream.HybridQ(geo.CenteredRect(p, 1, 1), []string{"fire"}, 6)
}

func startServer(t *testing.T, eng Engine, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestPingEstimateQueryBatch(t *testing.T) {
	eng := &fakeEngine{estimate: 42.5}
	srv := startServer(t, eng, Config{})
	rc := dialRaw(t, srv.Addr())

	rc.write(wire.AppendPing(nil, 7))
	if h, _ := rc.read(); h.Type != wire.TPong || h.ID != 7 {
		t.Fatalf("bad pong: %+v", h)
	}

	q := testQuery()
	rc.write(wire.AppendEstimate(nil, 8, 0, &q))
	h, payload := rc.read()
	if h.Type != wire.TEstimateResult || h.ID != 8 {
		t.Fatalf("bad estimate response: %+v", h)
	}
	if est, err := wire.DecodeEstimateResult(payload); err != nil || est != 42.5 {
		t.Fatalf("estimate = %v, %v", est, err)
	}

	rc.write(wire.AppendQueryBatch(nil, 9, 0, []stream.Query{q, q}))
	h, payload = rc.read()
	if h.Type != wire.TQueryBatchResult || h.ID != 9 {
		t.Fatalf("bad query batch response: %+v", h)
	}
	ests, acts, err := wire.DecodeQueryBatchResult(payload, nil, nil)
	if err != nil || len(ests) != 2 || len(acts) != 2 || ests[0] != 42.5 || acts[1] != 42 {
		t.Fatalf("query batch = %v %v %v", ests, acts, err)
	}
}

func TestFeedAckAndCoalescing(t *testing.T) {
	eng := &fakeEngine{}
	srv := startServer(t, eng, Config{})
	rc := dialRaw(t, srv.Addr())

	// Five feed frames in one burst: each must be acked individually, but
	// the engine should see fewer than five batches.
	var frames [][]byte
	for i := 0; i < 5; i++ {
		frames = append(frames, wire.AppendFeedBatch(nil, uint64(100+i),
			[]stream.Object{testObj(uint64(2 * i)), testObj(uint64(2*i + 1))}))
	}
	rc.write(frames...)
	seen := map[uint64]uint32{}
	for i := 0; i < 5; i++ {
		h, payload := rc.read()
		if h.Type != wire.TAck {
			t.Fatalf("frame %d: expected ack, got %v", i, h.Type)
		}
		n, err := wire.DecodeAck(payload)
		if err != nil {
			t.Fatal(err)
		}
		seen[h.ID] = n
	}
	for i := 0; i < 5; i++ {
		if seen[uint64(100+i)] != 2 {
			t.Fatalf("ack counts: %v", seen)
		}
	}
	batches, objects := eng.counts()
	if objects != 10 {
		t.Fatalf("engine saw %d objects", objects)
	}
	if batches >= 5 {
		t.Fatalf("no coalescing: %d batches for 5 frames", batches)
	}
	if srv.sample().CoalescedFeeds == 0 {
		t.Fatal("coalesced counter did not move")
	}
}

func TestMalformedPayloadKeepsConnection(t *testing.T) {
	srv := startServer(t, &fakeEngine{}, Config{})
	rc := dialRaw(t, srv.Addr())

	// Valid header, garbage payload: typed error, connection stays up.
	frame := wire.AppendFeedBatch(nil, 11, []stream.Object{testObj(1)})
	frame = frame[:len(frame)-3] // truncate payload bytes
	hdr := frame[:wire.HeaderSize]
	wire.PutHeader(hdr, wire.Header{Type: wire.TFeedBatch, ID: 11,
		Length: uint32(len(frame) - wire.HeaderSize)})
	rc.write(frame)
	h, re := rc.readErr()
	if h.ID != 11 || re.Code != wire.CodeMalformed {
		t.Fatalf("got id=%d code=%v", h.ID, re.Code)
	}

	rc.write(wire.AppendPing(nil, 12))
	if h, _ := rc.read(); h.Type != wire.TPong {
		t.Fatalf("connection unusable after payload error: %v", h.Type)
	}
	if srv.sample().Errors.Malformed == 0 {
		t.Fatal("malformed counter did not move")
	}
}

func TestFramingErrorDropsConnection(t *testing.T) {
	srv := startServer(t, &fakeEngine{}, Config{})
	rc := dialRaw(t, srv.Addr())
	rc.write([]byte("this is not a frame, not even close!!"))
	_, re := rc.readErr()
	if re.Code != wire.CodeMalformed {
		t.Fatalf("code = %v", re.Code)
	}
	// Server must hang up after a framing error.
	rc.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := rc.fr.Next(); err != io.EOF && err != io.ErrUnexpectedEOF {
		t.Fatalf("connection still open after framing error: %v", err)
	}
	_ = srv
}

func TestUnknownTypeRejected(t *testing.T) {
	srv := startServer(t, &fakeEngine{}, Config{})
	rc := dialRaw(t, srv.Addr())
	var buf [wire.HeaderSize]byte
	wire.PutHeader(buf[:], wire.Header{Type: 0x30, ID: 21})
	rc.write(buf[:])
	h, re := rc.readErr()
	if h.ID != 21 || re.Code != wire.CodeUnknownType {
		t.Fatalf("id=%d code=%v", h.ID, re.Code)
	}
	if srv.sample().Errors.UnknownType != 1 {
		t.Fatal("unknown-type counter did not move")
	}
}

func TestBackpressureRefusal(t *testing.T) {
	eng := &fakeEngine{estimate: 1, gate: make(chan struct{})}
	srv := startServer(t, eng, Config{MaxInFlight: 2})
	rc := dialRaw(t, srv.Addr())

	q := testQuery()
	rc.write(
		wire.AppendEstimate(nil, 1, 0, &q),
		wire.AppendEstimate(nil, 2, 0, &q),
		wire.AppendEstimate(nil, 3, 0, &q),
	)
	// First two occupy the window; the third must be refused immediately
	// with a retry-after hint, while the others are still blocked.
	h, re := rc.readErr()
	if h.ID != 3 || re.Code != wire.CodeBackpressure {
		t.Fatalf("id=%d code=%v", h.ID, re.Code)
	}
	if re.RetryAfter <= 0 {
		t.Fatal("backpressure refusal carries no retry-after hint")
	}
	if !re.Temporary() {
		t.Fatal("backpressure must be retryable")
	}
	close(eng.gate)
	got := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		h, _ := rc.read()
		if h.Type != wire.TEstimateResult {
			t.Fatalf("expected result, got %v", h.Type)
		}
		got[h.ID] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("missing results: %v", got)
	}
	if srv.sample().Errors.Backpressure != 1 {
		t.Fatal("backpressure counter did not move")
	}
}

func TestConnectionLimit(t *testing.T) {
	srv := startServer(t, &fakeEngine{}, Config{MaxConns: 1})
	rc1 := dialRaw(t, srv.Addr())
	rc1.write(wire.AppendPing(nil, 1))
	rc1.read() // first connection is fully established and serving

	nc2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	nc2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc2.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("second connection not refused: %v", err)
	}
	if srv.sample().ConnsRejected == 0 {
		t.Fatal("rejected counter did not move")
	}
}

func TestDeadlineExceeded(t *testing.T) {
	eng := &fakeEngine{estimate: 1, delay: 30 * time.Millisecond}
	srv := startServer(t, eng, Config{})
	rc := dialRaw(t, srv.Addr())
	q := testQuery()
	rc.write(wire.AppendEstimate(nil, 5, 1, &q)) // 1ms budget vs 30ms engine
	h, re := rc.readErr()
	if h.ID != 5 || re.Code != wire.CodeDeadlineExceeded {
		t.Fatalf("id=%d code=%v", h.ID, re.Code)
	}
	if srv.sample().Errors.Deadline != 1 {
		t.Fatal("deadline counter did not move")
	}
}

func TestEnginePanicContained(t *testing.T) {
	eng := &fakeEngine{panicky: true}
	srv := startServer(t, eng, Config{})
	rc := dialRaw(t, srv.Addr())
	q := testQuery()
	rc.write(wire.AppendEstimate(nil, 6, 0, &q))
	h, re := rc.readErr()
	if h.ID != 6 || re.Code != wire.CodeInternal {
		t.Fatalf("id=%d code=%v", h.ID, re.Code)
	}
	// The connection survives a contained engine fault.
	eng.panicky = false
	rc.write(wire.AppendPing(nil, 7))
	if h, _ := rc.read(); h.Type != wire.TPong {
		t.Fatalf("conn dead after engine panic: %v", h.Type)
	}
	if srv.sample().Errors.Internal == 0 {
		t.Fatal("internal counter did not move")
	}
}

// TestDrainUnderLoad is the drain contract: a client with requests in
// flight when Shutdown begins sees every one of them answered — success or
// a retryable draining error — and never a dropped request.
func TestDrainUnderLoad(t *testing.T) {
	eng := &fakeEngine{estimate: 2, delay: 2 * time.Millisecond}
	srv := startServer(t, eng, Config{MaxInFlight: 64})
	rc := dialRaw(t, srv.Addr())
	q := testQuery()

	const n = 40
	var frames [][]byte
	for i := 1; i <= n; i++ {
		frames = append(frames, wire.AppendEstimate(nil, uint64(i), 0, &q))
	}
	rc.write(frames...)

	// Start draining while those requests are being served.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	answered := 0
	for answered < n {
		h, payload := rc.read()
		switch h.Type {
		case wire.TEstimateResult:
			answered++
		case wire.TError:
			re, err := wire.DecodeError(payload)
			if err != nil {
				t.Fatal(err)
			}
			if re.Code != wire.CodeDraining && re.Code != wire.CodeBackpressure {
				t.Fatalf("request %d lost to %v", h.ID, re.Code)
			}
			if !re.Temporary() {
				t.Fatal("drain-time refusal must be retryable")
			}
			answered++
		default:
			t.Fatalf("unexpected frame %v", h.Type)
		}
	}
	// Well-behaved peer: all pendings answered, hang up.
	rc.nc.Close()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// New connections must be refused outright.
	if nc, err := net.Dial("tcp", srv.Addr()); err == nil {
		nc.Close()
		t.Fatal("listener still accepting after drain")
	}
}

// TestDrainRefusesNewRequests: a request arriving after drain begins gets
// CodeDraining with a retry-after hint, and the already-queued responses
// still flush.
func TestDrainRefusesNewRequests(t *testing.T) {
	eng := &fakeEngine{estimate: 2}
	srv := startServer(t, eng, Config{})
	rc := dialRaw(t, srv.Addr())

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	rc.write(wire.AppendPing(nil, 1))
	h, re := rc.readErr()
	if h.ID != 1 || re.Code != wire.CodeDraining {
		t.Fatalf("id=%d code=%v", h.ID, re.Code)
	}
	if re.RetryAfter <= 0 {
		t.Fatal("draining refusal carries no retry-after hint")
	}
	rc.nc.Close()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestAdminPlane(t *testing.T) {
	eng := &fakeEngine{estimate: 1}
	srv := startServer(t, eng, Config{AdminAddr: "127.0.0.1:0"})
	base := "http://" + srv.AdminAddr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	// Drive a little traffic so serving families have non-zero samples.
	rc := dialRaw(t, srv.Addr())
	rc.write(wire.AppendPing(nil, 1))
	rc.read()

	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "latest_server_connections") ||
		!strings.Contains(body, `latest_server_requests_total{op="ping"} 1`) {
		t.Fatalf("metrics missing server families: %d\n%s", code, body)
	}
	if code, body := get("/statusz"); code != http.StatusOK || !strings.Contains(body, `"server"`) {
		t.Fatalf("statusz missing server sample: %d %s", code, body)
	}

	// GET /drain is refused; POST triggers the drain-request channel.
	if code, _ := get("/drain"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /drain = %d", code)
	}
	resp, err := http.Post(base+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if out["draining"] != true {
		t.Fatalf("drain response: %v", out)
	}
	select {
	case <-srv.DrainRequested():
	case <-time.After(2 * time.Second):
		t.Fatal("drain request not signaled")
	}
}

// TestHealthEndpointsReflectDurability drives the real durability stack
// behind the admin plane: an injected WAL append fault degrades the
// DurableEngine, /healthz reports it (still HTTP 200 — liveness) and
// /readyz flips to 503; a repair re-arms both.
func TestHealthEndpointsReflectDurability(t *testing.T) {
	fst := persist.NewFaultStore(latest.NewMemStore(),
		persist.FaultRule{Op: persist.FaultAppend, Count: 1})
	fst.SetEnabled(false)
	core, err := latest.NewConcurrent(geo.Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// An hour of repair backoff keeps the background loop out of the
	// test's way; repairs here are explicit RepairNow calls.
	dur, err := latest.NewDurable(core, fst, latest.DurableConfig{
		WALSyncEvery: 1, RepairBackoff: time.Hour, RepairBackoffMax: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dur.Shutdown(context.Background()) })
	srv := startServer(t, dur, Config{AdminAddr: "127.0.0.1:0"})
	base := "http://" + srv.AdminAddr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthy healthz: %d %s", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("healthy readyz: %d %s", code, body)
	}

	fst.SetEnabled(true)
	dur.Feed(testObj(1)) // the WAL append fires the fault and degrades

	if code, body := get("/healthz"); code != http.StatusOK ||
		!strings.Contains(body, `"status":"degraded"`) ||
		!strings.Contains(body, "persistence:degraded") {
		t.Fatalf("degraded healthz must stay 200 with the real state: %d %s", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, `"ready":false`) {
		t.Fatalf("degraded readyz: %d %s", code, body)
	}
	// Degraded is not down: the wire plane still serves.
	rc := dialRaw(t, srv.Addr())
	rc.write(wire.AppendPing(nil, 1))
	if h, _ := rc.read(); h.Type != wire.TPong {
		t.Fatalf("degraded ping answered %v", h.Type)
	}

	fst.SetEnabled(false)
	if err := dur.RepairNow(context.Background()); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("repaired readyz: %d %s", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "latest_durable_state 0") ||
		!strings.Contains(body, "latest_durable_repairs_total 1") {
		t.Fatalf("metrics missing durable state families: %d", code)
	}
}

// TestHealthEndpointsReflectDrift: a tripped accuracy-drift watchdog makes
// /healthz degraded and /readyz 503, naming the estimator.
func TestHealthEndpointsReflectDrift(t *testing.T) {
	eng := &fakeEngine{estimate: 1, drift: []telemetry.DriftSample{
		{Estimator: "RSH", Ratio: 3.1, Threshold: 2, Drifted: true},
	}}
	srv := startServer(t, eng, Config{AdminAddr: "127.0.0.1:0"})
	base := "http://" + srv.AdminAddr()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "drift:RSH") {
		t.Fatalf("drifted healthz: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drifted readyz = %d, want 503", resp.StatusCode)
	}
}

// TestReadyzDraining: a draining server is alive but not ready.
func TestReadyzDraining(t *testing.T) {
	srv := startServer(t, &fakeEngine{estimate: 1}, Config{})
	srv.draining.Store(true)
	rec := httptest.NewRecorder()
	srv.handleReadyz(rec, nil)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining readyz: %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	srv.handleHealthz(rec, nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"draining"`) {
		t.Fatalf("draining healthz: %d %s", rec.Code, rec.Body.String())
	}
}

// TestServerShutdownIdempotent: Shutdown then Close (and vice versa) is
// safe, and a goroutine check catches leaked accept/conn/writer loops.
func TestServerLifecycleNoLeak(t *testing.T) {
	for i := 0; i < 3; i++ {
		eng := &fakeEngine{estimate: 1}
		srv := startServer(t, eng, Config{})
		rc := dialRaw(t, srv.Addr())
		rc.write(wire.AppendPing(nil, 1))
		rc.read()
		rc.nc.Close()
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.withDefaults()
	if c.MaxConns <= 0 || c.MaxInFlight <= 0 || c.MaxPayload <= 0 ||
		c.CoalesceObjects <= 0 || c.RetryAfter <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil engine accepted")
	}
}
