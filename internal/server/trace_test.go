package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"

	latest "github.com/spatiotext/latest"
	"github.com/spatiotext/latest/client"
	"github.com/spatiotext/latest/internal/telemetry"
)

// warmDurable builds the acceptance-criterion engine stack: a DurableEngine
// wrapping a System driven to its incremental phase, so traced queries
// exercise the estimator-inference span.
func warmDurable(t *testing.T) *latest.DurableEngine {
	t.Helper()
	sys, err := latest.New(latest.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10*time.Second,
		latest.WithPretrainQueries(150), latest.WithAccWindow(60), latest.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var ts int64
	for i := 0; i < 3000; i++ {
		ts++
		sys.Feed(latest.Object{
			ID:        uint64(ts),
			Loc:       latest.Pt(rng.Float64(), rng.Float64()),
			Keywords:  []string{fmt.Sprintf("kw%d", rng.Intn(20))},
			Timestamp: ts,
		})
	}
	for i := 0; i < 2000 && sys.Stats().Phase != latest.PhaseIncremental; i++ {
		ts++
		q := latest.HybridQuery(
			latest.CenteredRect(latest.Pt(rng.Float64(), rng.Float64()), 0.5, 0.5),
			[]string{fmt.Sprintf("kw%d", rng.Intn(20))}, ts)
		sys.EstimateAndExecute(&q)
	}
	if p := sys.Stats().Phase; p != latest.PhaseIncremental {
		t.Fatalf("engine never left %v", p)
	}
	dur, err := latest.NewDurable(sys, latest.NewMemStore(), latest.DurableConfig{WALSyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	return dur
}

func spanIn(tr telemetry.Trace, name string) (telemetry.Span, bool) {
	for _, sp := range tr.Spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return telemetry.Span{}, false
}

// TestEndToEndTrace is the PR's acceptance criterion: a query issued through
// the client against a server fronting a DurableEngine carries ONE trace ID
// across every tier — client spans in the client buffer, server + engine +
// estimator spans in the server buffer, and the timeline retrievable from
// /debug/requests by that ID.
func TestEndToEndTrace(t *testing.T) {
	dur := warmDurable(t)
	srv := startServer(t, dur, Config{TraceEvery: 1, AdminAddr: "127.0.0.1:0"})
	cl := client.Dial(srv.Addr(), client.Options{Trace: true, TraceEvery: 1})
	defer cl.Close()
	ctx := context.Background()

	if _, err := cl.FeedBatch(ctx, []latest.Object{
		{ID: 90001, Loc: latest.Pt(0.4, 0.4), Keywords: []string{"kw1"}, Timestamp: 1 << 40},
	}); err != nil {
		t.Fatal(err)
	}
	q := latest.HybridQuery(latest.CenteredRect(latest.Pt(0.5, 0.5), 0.4, 0.4),
		[]string{"kw1"}, 1<<40)
	if _, err := cl.Estimate(ctx, q); err != nil {
		t.Fatal(err)
	}

	// Client tier: both requests traced, estimate timeline complete.
	var clTrace telemetry.Trace
	var haveCl bool
	for _, tr := range cl.Traces().Snapshot() {
		if tr.Op == "estimate" {
			clTrace, haveCl = tr, true
		}
	}
	if !haveCl {
		t.Fatalf("client buffer has no estimate trace: %+v", cl.Traces().Snapshot())
	}
	for _, want := range []string{"encode", "write", "wait", "decode"} {
		if _, ok := spanIn(clTrace, want); !ok {
			t.Errorf("client trace missing %q span: %v", want, clTrace.Spans)
		}
	}

	// Server tier: the SAME ID appears once the write loop seals the trace.
	var svTrace telemetry.Trace
	var haveSv bool
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline) && !haveSv; {
		for _, tr := range srv.Traces().Snapshot() {
			if tr.ID == clTrace.ID {
				svTrace, haveSv = tr, true
			}
		}
		if !haveSv {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !haveSv {
		t.Fatalf("trace %s never reached the server buffer: %+v", clTrace.ID, srv.Traces().Snapshot())
	}
	if svTrace.Op != "estimate" || svTrace.Error != "" {
		t.Fatalf("server trace = %+v", svTrace)
	}
	for _, want := range []string{"read", "queue", "engine", "estimator", "encode", "write"} {
		if _, ok := spanIn(svTrace, want); !ok {
			t.Errorf("server trace missing %q span: %v", want, svTrace.Spans)
		}
	}
	// The read span covers waiting for the frame, which ends at clock zero.
	if sp, ok := spanIn(svTrace, "read"); ok && sp.StartNS > 0 {
		t.Errorf("read span starts after clock zero: %+v", sp)
	}
	if sp, ok := spanIn(svTrace, "estimator"); ok && sp.Detail == "" {
		t.Errorf("estimator span has no estimator name: %+v", sp)
	}

	// The feed frame was traced too, with its own engine span.
	var feedTraced bool
	for _, tr := range srv.Traces().Snapshot() {
		if tr.Op == "feed" {
			feedTraced = true
			if _, ok := spanIn(tr, "engine"); !ok {
				t.Errorf("feed trace has no engine span: %v", tr.Spans)
			}
		}
	}
	if !feedTraced {
		t.Error("feed request left no server trace")
	}

	// Admin tier: /debug/requests?id= returns exactly this timeline.
	resp, err := http.Get("http://" + srv.AdminAddr() + "/debug/requests?id=" + clTrace.ID.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump telemetry.TraceDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("/debug/requests not JSON: %v", err)
	}
	if len(dump.Traces) != 1 || dump.Traces[0].ID != clTrace.ID {
		t.Fatalf("/debug/requests?id= returned %+v", dump.Traces)
	}
	if _, ok := spanIn(dump.Traces[0], "estimator"); !ok {
		t.Errorf("admin timeline missing estimator span: %v", dump.Traces[0].Spans)
	}

	// Metrics tier: traces counted, exemplars attach the ID to a bucket.
	s := srv.sample()
	if s.TracesSeen < 2 || s.TracesSampled < 2 {
		t.Errorf("traces seen/sampled = %d/%d, want >= 2", s.TracesSeen, s.TracesSampled)
	}
	var exemplarHit bool
	for _, ex := range srv.Traces().Exemplars() {
		if ex.TraceID == clTrace.ID && ex.Op == "estimate" {
			exemplarHit = true
		}
	}
	if !exemplarHit {
		t.Errorf("no latency-bucket exemplar for %s: %+v", clTrace.ID, srv.Traces().Exemplars())
	}
}

// TestTraceSamplingStride: with the default stride only a subset of traced
// requests is retained, but every one is counted as seen.
func TestTraceSamplingStride(t *testing.T) {
	srv := startServer(t, &fakeEngine{estimate: 1}, Config{TraceEvery: 4})
	cl := client.Dial(srv.Addr(), client.Options{Trace: true, TraceEvery: 1})
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := cl.Ping(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if seen := srv.Traces().Seen(); seen != 8 {
		t.Fatalf("server saw %d traced requests, want 8", seen)
	}
	// 1 in 4 retained; pings finish synchronously in the write loop, so give
	// the last one a moment.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Traces().Sampled() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := srv.Traces().Sampled(); got != 2 {
		t.Fatalf("sampled = %d, want 2", got)
	}
}

// TestUntracedClientLeavesNoTrace: a client without tracing produces zero
// trace overhead or records on the server.
func TestUntracedClientLeavesNoTrace(t *testing.T) {
	srv := startServer(t, &fakeEngine{estimate: 1}, Config{TraceEvery: 1})
	cl := client.Dial(srv.Addr(), client.Options{})
	defer cl.Close()
	if err := cl.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cl.Traces() != nil {
		t.Error("untraced client allocated a trace buffer")
	}
	if seen := srv.Traces().Seen(); seen != 0 {
		t.Errorf("server counted %d traced requests from an untraced client", seen)
	}
}
