// Package spn is a compact sum-product network over spatio-textual objects,
// standing in for the LibSPN model the paper uses as its data-driven SPN
// baseline (§VI-A). The network's structure is fixed and shallow but real:
//
//	root        — sum node over K mixture components
//	component c — product node over three groups of leaves:
//	                a histogram leaf for X, a histogram leaf for Y,
//	                and per-bucket Bernoulli leaves for keyword presence
//
// Training is hard EM over a sample of the current window: each sample is
// assigned to its maximum-likelihood component and leaf statistics are
// re-estimated with Laplace smoothing. Inference answers the RC-DVQ
// probability P(loc ∈ R ∧ kw ∩ W ≠ ∅) exactly under the model, which the
// SPN estimator scales by the live window size.
//
// The design deliberately mirrors the paper's findings for SPNs on streams:
// good static accuracy, inference cost linear in the component count
// (Fig. 13's linear latency growth), and an expensive full retrain whenever
// the window moves on.
package spn

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one training observation: a location normalized to [0,1)² and
// the set of keyword-hash buckets the object's keywords occupy.
type Sample struct {
	X, Y float64
	KwB  []int
}

// Config sizes the network.
type Config struct {
	// Components is K, the root sum node's fan-out. Zero means 4.
	Components int
	// XBins/YBins are the spatial leaf histogram resolutions. Zero means 32.
	XBins, YBins int
	// KwBuckets is the keyword-hash domain size. Zero means 64.
	KwBuckets int
	// EMIters is the number of hard-EM rounds per Train. Zero means 5.
	EMIters int
	// Seed makes component initialization reproducible.
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Components <= 0 {
		out.Components = 4
	}
	if out.XBins <= 0 {
		out.XBins = 32
	}
	if out.YBins <= 0 {
		out.YBins = 32
	}
	if out.KwBuckets <= 0 {
		out.KwBuckets = 64
	}
	if out.EMIters <= 0 {
		out.EMIters = 5
	}
	return out
}

// component is a product node: independent X, Y histograms and keyword
// Bernoullis.
type component struct {
	weight float64   // mixture weight at the root sum node
	histX  []float64 // P(X bin), sums to 1
	histY  []float64
	kwP    []float64 // P(object has a keyword in bucket b)
	n      float64   // samples assigned last E step
}

// Network is a trained SPN. The zero value is unusable; construct with New
// and call Train before Prob. Not safe for concurrent use.
type Network struct {
	cfg     Config
	comps   []component
	trained bool
}

// New allocates an untrained network.
func New(cfg Config) *Network {
	c := cfg.withDefaults()
	n := &Network{cfg: c, comps: make([]component, c.Components)}
	for i := range n.comps {
		n.comps[i] = component{
			weight: 1 / float64(c.Components),
			histX:  uniformHist(c.XBins),
			histY:  uniformHist(c.YBins),
			kwP:    make([]float64, c.KwBuckets),
		}
	}
	return n
}

func uniformHist(bins int) []float64 {
	h := make([]float64, bins)
	for i := range h {
		h[i] = 1 / float64(bins)
	}
	return h
}

// Trained reports whether Train has run at least once.
func (n *Network) Trained() bool { return n.trained }

// Components returns K.
func (n *Network) Components() int { return n.cfg.Components }

// Train fits the network to the sample set with hard EM. An empty sample
// set resets the network to its uniform prior.
func (n *Network) Train(samples []Sample) {
	c := n.cfg
	if len(samples) == 0 {
		for i := range n.comps {
			n.comps[i] = component{
				weight: 1 / float64(c.Components),
				histX:  uniformHist(c.XBins),
				histY:  uniformHist(c.YBins),
				kwP:    make([]float64, c.KwBuckets),
			}
		}
		n.trained = false
		return
	}
	rng := rand.New(rand.NewSource(c.Seed))
	// Init: spatial k-means++ assignment breaks symmetry robustly.
	// (Likelihood-seeded init collapses: samples far from every seed tie on
	// the uniform background and all fall into one component.)
	assign := kmeansInit(samples, c.Components, rng)
	for iter := 0; iter < c.EMIters; iter++ {
		// M step: re-estimate each component from its members.
		n.mStep(samples, assign)
		if iter == c.EMIters-1 {
			break
		}
		// E step: hard-assign each sample to its most likely component.
		for si := range samples {
			best, bestLL := 0, math.Inf(-1)
			for ci := range n.comps {
				ll := n.logLik(&n.comps[ci], &samples[si])
				if ll > bestLL {
					best, bestLL = ci, ll
				}
			}
			assign[si] = best
		}
	}
	n.trained = true
}

// kmeansInit returns an initial hard assignment from k-means++ seeding plus
// a few Lloyd iterations over the spatial coordinates.
func kmeansInit(samples []Sample, k int, rng *rand.Rand) []int {
	type pt struct{ x, y float64 }
	centers := make([]pt, 0, k)
	// k-means++ seeding.
	first := samples[rng.Intn(len(samples))]
	centers = append(centers, pt{first.X, first.Y})
	d2 := make([]float64, len(samples))
	for len(centers) < k {
		total := 0.0
		for i := range samples {
			best := math.Inf(1)
			for _, ct := range centers {
				dx, dy := samples[i].X-ct.x, samples[i].Y-ct.y
				if d := dx*dx + dy*dy; d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All samples coincide with existing centers; duplicate one.
			centers = append(centers, centers[0])
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := len(samples) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centers = append(centers, pt{samples[pick].X, samples[pick].Y})
	}
	assign := make([]int, len(samples))
	for iter := 0; iter < 4; iter++ {
		for i := range samples {
			best, bestD := 0, math.Inf(1)
			for ci, ct := range centers {
				dx, dy := samples[i].X-ct.x, samples[i].Y-ct.y
				if d := dx*dx + dy*dy; d < bestD {
					best, bestD = ci, d
				}
			}
			assign[i] = best
		}
		var sx, sy = make([]float64, k), make([]float64, k)
		cnt := make([]float64, k)
		for i, a := range assign {
			sx[a] += samples[i].X
			sy[a] += samples[i].Y
			cnt[a]++
		}
		for ci := range centers {
			if cnt[ci] > 0 {
				centers[ci] = pt{sx[ci] / cnt[ci], sy[ci] / cnt[ci]}
			}
		}
	}
	return assign
}

func binOf(v float64, bins int) int {
	b := int(v * float64(bins))
	if b < 0 {
		b = 0
	} else if b >= bins {
		b = bins - 1
	}
	return b
}

// logLik is the component's log density of the sample (up to a shared
// constant: bin widths cancel across components).
func (n *Network) logLik(c *component, s *Sample) float64 {
	ll := math.Log(c.weight + 1e-12)
	ll += math.Log(c.histX[binOf(s.X, n.cfg.XBins)] + 1e-12)
	ll += math.Log(c.histY[binOf(s.Y, n.cfg.YBins)] + 1e-12)
	for _, b := range s.KwB {
		ll += math.Log(c.kwP[b] + 1e-3)
	}
	return ll
}

func (n *Network) mStep(samples []Sample, assign []int) {
	c := n.cfg
	for ci := range n.comps {
		comp := &n.comps[ci]
		comp.n = 0
		for i := range comp.histX {
			comp.histX[i] = 0
		}
		for i := range comp.histY {
			comp.histY[i] = 0
		}
		for i := range comp.kwP {
			comp.kwP[i] = 0
		}
	}
	for si := range samples {
		comp := &n.comps[assign[si]]
		comp.n++
		comp.histX[binOf(samples[si].X, c.XBins)]++
		comp.histY[binOf(samples[si].Y, c.YBins)]++
		for _, b := range samples[si].KwB {
			if b >= 0 && b < c.KwBuckets {
				comp.kwP[b]++
			}
		}
	}
	total := float64(len(samples))
	for ci := range n.comps {
		comp := &n.comps[ci]
		comp.weight = (comp.n + 1) / (total + float64(c.Components))
		normalizeLaplace(comp.histX, comp.n)
		normalizeLaplace(comp.histY, comp.n)
		for b := range comp.kwP {
			// Bernoulli presence probability with light smoothing.
			comp.kwP[b] = (comp.kwP[b] + 0.01) / (comp.n + 1)
			if comp.kwP[b] > 1 {
				comp.kwP[b] = 1
			}
		}
	}
}

func normalizeLaplace(h []float64, n float64) {
	denom := n + float64(len(h))
	for i := range h {
		h[i] = (h[i] + 1) / denom
	}
}

// RangeQuery describes the marginal event whose probability Prob computes.
// X/Y bounds are normalized to [0,1]; HasRange false marginalizes location
// out entirely, and empty KwB marginalizes keywords out.
type RangeQuery struct {
	XLo, XHi float64
	YLo, YHi float64
	HasRange bool
	KwB      []int
}

// Prob returns the model probability that a random window object satisfies
// the query: P(loc ∈ R ∧ kw ∩ W ≠ ∅), with each absent predicate
// marginalized to 1.
func (n *Network) Prob(q RangeQuery) float64 {
	total := 0.0
	for ci := range n.comps {
		comp := &n.comps[ci]
		p := comp.weight
		if q.HasRange {
			p *= histMass(comp.histX, q.XLo, q.XHi)
			p *= histMass(comp.histY, q.YLo, q.YHi)
		}
		if len(q.KwB) > 0 {
			// P(at least one bucket present) under bucket independence.
			miss := 1.0
			for _, b := range q.KwB {
				if b >= 0 && b < len(comp.kwP) {
					miss *= 1 - comp.kwP[b]
				}
			}
			p *= 1 - miss
		}
		total += p
	}
	if total < 0 {
		return 0
	}
	if total > 1 {
		return 1
	}
	return total
}

// histMass integrates a bin histogram over [lo, hi] ⊆ [0,1] with partial
// bins interpolated linearly.
func histMass(h []float64, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	lo = math.Max(0, lo)
	hi = math.Min(1, hi)
	bins := float64(len(h))
	mass := 0.0
	for i, p := range h {
		bLo, bHi := float64(i)/bins, float64(i+1)/bins
		overlap := math.Min(hi, bHi) - math.Max(lo, bLo)
		if overlap > 0 {
			mass += p * overlap * bins
		}
	}
	return mass
}

// MemoryBytes approximates the model footprint: 8 bytes per parameter.
func (n *Network) MemoryBytes() int {
	per := n.cfg.XBins + n.cfg.YBins + n.cfg.KwBuckets + 2
	return 8 * per * n.cfg.Components
}

// String summarizes the trained structure for diagnostics.
func (n *Network) String() string {
	return fmt.Sprintf("spn{K=%d bins=%dx%d kw=%d trained=%v}",
		n.cfg.Components, n.cfg.XBins, n.cfg.YBins, n.cfg.KwBuckets, n.trained)
}
