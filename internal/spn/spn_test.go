package spn

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func uniformSamples(rng *rand.Rand, n, kwBuckets int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{X: rng.Float64(), Y: rng.Float64(), KwB: []int{rng.Intn(kwBuckets)}}
	}
	return out
}

func TestUntrainedIsUniformPrior(t *testing.T) {
	n := New(Config{Seed: 1})
	if n.Trained() {
		t.Error("fresh network claims trained")
	}
	p := n.Prob(RangeQuery{XLo: 0, XHi: 0.5, YLo: 0, YHi: 1, HasRange: true})
	if math.Abs(p-0.5) > 1e-9 {
		t.Errorf("uniform prior half-space prob = %v, want 0.5", p)
	}
}

func TestProbRangeUniformData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := New(Config{Components: 4, Seed: 2})
	n.Train(uniformSamples(rng, 20000, 64))
	if !n.Trained() {
		t.Fatal("Train did not mark trained")
	}
	tests := []struct {
		q    RangeQuery
		want float64
		tol  float64
	}{
		{RangeQuery{0, 1, 0, 1, true, nil}, 1, 0.02},
		{RangeQuery{0, 0.5, 0, 1, true, nil}, 0.5, 0.05},
		{RangeQuery{0.25, 0.75, 0.25, 0.75, true, nil}, 0.25, 0.05},
		{RangeQuery{0, 0.1, 0, 0.1, true, nil}, 0.01, 0.01},
	}
	for _, tc := range tests {
		got := n.Prob(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Prob(%+v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestProbClusteredData(t *testing.T) {
	// Two well-separated clusters; a query on one cluster should capture
	// roughly its mixture share.
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	for i := 0; i < 10000; i++ {
		if i%2 == 0 {
			samples = append(samples, Sample{X: 0.2 + rng.NormFloat64()*0.02, Y: 0.2 + rng.NormFloat64()*0.02})
		} else {
			samples = append(samples, Sample{X: 0.8 + rng.NormFloat64()*0.02, Y: 0.8 + rng.NormFloat64()*0.02})
		}
	}
	n := New(Config{Components: 4, EMIters: 10, Seed: 3})
	n.Train(samples)
	got := n.Prob(RangeQuery{0.1, 0.3, 0.1, 0.3, true, nil})
	if math.Abs(got-0.5) > 0.1 {
		t.Errorf("cluster A prob = %v, want ~0.5", got)
	}
	// Empty middle.
	if got := n.Prob(RangeQuery{0.45, 0.55, 0.45, 0.55, true, nil}); got > 0.05 {
		t.Errorf("empty middle prob = %v", got)
	}
}

func TestKeywordBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var samples []Sample
	for i := 0; i < 8000; i++ {
		s := Sample{X: rng.Float64(), Y: rng.Float64()}
		if i%4 == 0 { // bucket 7 present on 25% of objects
			s.KwB = []int{7}
		} else {
			s.KwB = []int{20}
		}
		samples = append(samples, s)
	}
	n := New(Config{Components: 2, Seed: 4})
	n.Train(samples)
	got := n.Prob(RangeQuery{KwB: []int{7}})
	if math.Abs(got-0.25) > 0.05 {
		t.Errorf("P(bucket 7) = %v, want ~0.25", got)
	}
	// Union of both buckets covers every object, but the per-component
	// bucket-independence assumption caps the union of two mutually
	// exclusive buckets at 1-(1-0.25)(1-0.75) = 0.8125 when a component
	// mixes both. Anything in [0.78, 1] is model-faithful.
	got = n.Prob(RangeQuery{KwB: []int{7, 20}})
	if got < 0.78 {
		t.Errorf("P(7 ∪ 20) = %v, want ≥ 0.78", got)
	}
	// Absent bucket has only smoothing mass.
	if got := n.Prob(RangeQuery{KwB: []int{40}}); got > 0.05 {
		t.Errorf("P(absent bucket) = %v", got)
	}
}

func TestHybridQueryLocalCorrelation(t *testing.T) {
	// Bucket 3 keywords only occur in the right half.
	rng := rand.New(rand.NewSource(5))
	var samples []Sample
	for i := 0; i < 10000; i++ {
		x := rng.Float64()
		s := Sample{X: x, Y: rng.Float64()}
		if x > 0.5 {
			s.KwB = []int{3}
		}
		samples = append(samples, s)
	}
	n := New(Config{Components: 8, EMIters: 10, Seed: 5})
	n.Train(samples)
	right := n.Prob(RangeQuery{0.5, 1, 0, 1, true, []int{3}})
	left := n.Prob(RangeQuery{0, 0.5, 0, 1, true, []int{3}})
	if right < 3*math.Max(left, 1e-3) {
		t.Errorf("correlation lost: right=%v left=%v", right, left)
	}
}

func TestTrainEmptyResets(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := New(Config{Seed: 6})
	n.Train(uniformSamples(rng, 1000, 64))
	n.Train(nil)
	if n.Trained() {
		t.Error("empty Train should reset trained flag")
	}
	p := n.Prob(RangeQuery{0, 0.25, 0, 1, true, nil})
	if math.Abs(p-0.25) > 1e-9 {
		t.Errorf("reset prior prob = %v", p)
	}
}

func TestProbBoundsAndDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := New(Config{Seed: 7})
	n.Train(uniformSamples(rng, 2000, 64))
	if p := n.Prob(RangeQuery{0.5, 0.5, 0, 1, true, nil}); p != 0 {
		t.Errorf("zero-width range prob = %v", p)
	}
	if p := n.Prob(RangeQuery{-1, 2, -1, 2, true, nil}); math.Abs(p-1) > 0.02 {
		t.Errorf("super-range prob = %v", p)
	}
	// Probabilities always within [0,1].
	for i := 0; i < 100; i++ {
		q := RangeQuery{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), true, []int{rng.Intn(64)}}
		if q.XHi < q.XLo {
			q.XLo, q.XHi = q.XHi, q.XLo
		}
		if q.YHi < q.YLo {
			q.YLo, q.YHi = q.YHi, q.YLo
		}
		if p := n.Prob(q); p < 0 || p > 1 {
			t.Fatalf("Prob out of bounds: %v for %+v", p, q)
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples := uniformSamples(rng, 3000, 64)
	a, b := New(Config{Seed: 9}), New(Config{Seed: 9})
	a.Train(samples)
	b.Train(samples)
	q := RangeQuery{0.1, 0.6, 0.2, 0.9, true, []int{5}}
	if a.Prob(q) != b.Prob(q) {
		t.Error("same seed + data must give identical models")
	}
}

func TestMemoryScalesWithComponents(t *testing.T) {
	small := New(Config{Components: 2})
	big := New(Config{Components: 16})
	if small.MemoryBytes() >= big.MemoryBytes() {
		t.Errorf("memory: K=2 %d >= K=16 %d", small.MemoryBytes(), big.MemoryBytes())
	}
	if !strings.Contains(big.String(), "K=16") {
		t.Errorf("String = %q", big.String())
	}
}

func BenchmarkTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	samples := uniformSamples(rng, 10000, 64)
	n := New(Config{Components: 8, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Train(samples)
	}
}

func BenchmarkProb(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := New(Config{Components: 8, Seed: 1})
	n.Train(uniformSamples(rng, 10000, 64))
	q := RangeQuery{0.2, 0.7, 0.1, 0.8, true, []int{3, 9}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Prob(q)
	}
}
