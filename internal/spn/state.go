package spn

import "github.com/spatiotext/latest/internal/persist"

// SaveState serializes the mixture parameters. Train reseeds its EM RNG
// from the config on every call, so no RNG position needs saving.
func (n *Network) SaveState(e *persist.Enc) {
	e.Bool(n.trained)
	e.Int(len(n.comps))
	for i := range n.comps {
		c := &n.comps[i]
		e.F64(c.weight)
		e.F64s(c.histX)
		e.F64s(c.histY)
		e.F64s(c.kwP)
		e.F64(c.n)
	}
}

// LoadState restores parameters into a network built with the same Config.
// On error the receiver must be discarded.
func (n *Network) LoadState(d *persist.Dec) error {
	const op = "spn network"
	trained := d.Bool()
	count := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if count != len(n.comps) {
		return persist.Errf(persist.CodeMismatch, op, "%d components, receiver has %d", count, len(n.comps))
	}
	for i := range n.comps {
		c := &n.comps[i]
		weight := d.F64()
		histX := d.F64s()
		histY := d.F64s()
		kwP := d.F64s()
		nn := d.F64()
		if d.Err() != nil {
			return d.Err()
		}
		if len(histX) != len(c.histX) || len(histY) != len(c.histY) || len(kwP) != len(c.kwP) {
			return persist.Errf(persist.CodeMismatch, op,
				"component %d bins %d/%d/%d, receiver %d/%d/%d",
				i, len(histX), len(histY), len(kwP), len(c.histX), len(c.histY), len(c.kwP))
		}
		c.weight = weight
		copy(c.histX, histX)
		copy(c.histY, histY)
		copy(c.kwP, kwP)
		c.n = nn
	}
	n.trained = trained
	return nil
}
