package stream

import "fmt"

// Clock is the virtual time source of a simulation run. All timestamps in
// this repository are virtual milliseconds from an arbitrary epoch, so a
// ten-hour paper stream can be replayed in seconds of wall time without
// changing any windowing logic.
type Clock struct {
	now int64
}

// NewClock returns a clock starting at the given epoch (usually 0).
func NewClock(epoch int64) *Clock { return &Clock{now: epoch} }

// Now returns the current virtual time in milliseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d milliseconds. It panics on negative
// d: virtual time never rewinds, and a negative advance is a driver bug.
func (c *Clock) Advance(d int64) int64 {
	if d < 0 {
		panic(fmt.Sprintf("stream: clock cannot rewind (advance %d)", d))
	}
	c.now += d
	return c.now
}

// AdvanceTo moves the clock to absolute time t, which must not precede the
// current time.
func (c *Clock) AdvanceTo(t int64) {
	if t < c.now {
		panic(fmt.Sprintf("stream: clock cannot rewind (%d -> %d)", c.now, t))
	}
	c.now = t
}
