// Package stream defines the geo-textual streaming data model of the paper:
// objects (oid, loc, kw, timestamp), RC-DVQ estimation queries, a virtual
// clock, and the exact sliding-window store that plays the role of the
// "system logs" — the source of actual query selectivity against which every
// estimator's answer is scored.
package stream

import (
	"fmt"
	"sort"
	"strings"

	"github.com/spatiotext/latest/internal/geo"
)

// Object is a geo-textual stream element, mirroring the paper's
// (oid, loc, kw, timestamp) tuple. Timestamps are virtual-clock milliseconds
// (see Clock); they must be non-decreasing in arrival order.
type Object struct {
	ID        uint64
	Loc       geo.Point
	Keywords  []string
	Timestamp int64
}

// HasKeyword reports whether the object carries keyword kw.
func (o *Object) HasKeyword(kw string) bool {
	for _, k := range o.Keywords {
		if k == kw {
			return true
		}
	}
	return false
}

// MatchesAny reports whether the object carries at least one of the given
// keywords (the RC-DVQ keyword predicate: o.kw ∩ q.W ≠ ∅).
func (o *Object) MatchesAny(kws []string) bool {
	for _, k := range kws {
		if o.HasKeyword(k) {
			return true
		}
	}
	return false
}

// QueryType classifies an RC-DVQ by which predicates it carries. The paper's
// workloads are mixes of these three types.
type QueryType uint8

const (
	// SpatialQuery has only a spatial range R (a pure range-counting query).
	SpatialQuery QueryType = iota
	// KeywordQuery has only a keyword set W (a pure distinct-value query).
	KeywordQuery
	// HybridQuery has both predicates.
	HybridQuery
)

// String implements fmt.Stringer.
func (t QueryType) String() string {
	switch t {
	case SpatialQuery:
		return "spatial"
	case KeywordQuery:
		return "keyword"
	case HybridQuery:
		return "hybrid"
	default:
		return fmt.Sprintf("QueryType(%d)", uint8(t))
	}
}

// Query is a Range-Counting Distinct-Value Query (RC-DVQ, paper §III):
// estimate |{o ∈ S_T : o.loc ∈ R ∧ o.kw ∩ W ≠ ∅}|. Both predicates are
// optional; at least one must be present for the query to be meaningful.
type Query struct {
	// Range is the spatial predicate R. Ignored unless HasRange.
	Range geo.Rect
	// HasRange marks the spatial predicate as present. A pure keyword query
	// has HasRange == false.
	HasRange bool
	// Keywords is the keyword predicate W; empty for pure spatial queries.
	Keywords []string
	// Timestamp is when the query was issued (virtual ms). The window it
	// observes is [Timestamp-T, Timestamp].
	Timestamp int64
}

// SpatialQ builds a pure spatial query.
func SpatialQ(r geo.Rect, ts int64) Query {
	return Query{Range: r, HasRange: true, Timestamp: ts}
}

// KeywordQ builds a pure keyword query.
func KeywordQ(kws []string, ts int64) Query {
	return Query{Keywords: kws, Timestamp: ts}
}

// HybridQ builds a combined spatial-keyword query.
func HybridQ(r geo.Rect, kws []string, ts int64) Query {
	return Query{Range: r, HasRange: true, Keywords: kws, Timestamp: ts}
}

// Type classifies the query.
func (q *Query) Type() QueryType {
	switch {
	case q.HasRange && len(q.Keywords) > 0:
		return HybridQuery
	case q.HasRange:
		return SpatialQuery
	default:
		return KeywordQuery
	}
}

// Valid reports whether the query carries at least one predicate and, when
// present, a valid rectangle.
func (q *Query) Valid() bool {
	if !q.HasRange && len(q.Keywords) == 0 {
		return false
	}
	if q.HasRange && (!q.Range.Valid() || q.Range.Empty()) {
		return false
	}
	return true
}

// Matches reports whether object o satisfies the query's predicates
// (ignoring the time window, which is the store's concern).
func (q *Query) Matches(o *Object) bool {
	if q.HasRange && !q.Range.Contains(o.Loc) {
		return false
	}
	if len(q.Keywords) > 0 && !o.MatchesAny(q.Keywords) {
		return false
	}
	return true
}

// String implements fmt.Stringer.
func (q Query) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "q{%s", q.Type())
	if q.HasRange {
		fmt.Fprintf(&b, " R=%v", q.Range)
	}
	if len(q.Keywords) > 0 {
		kws := append([]string(nil), q.Keywords...)
		sort.Strings(kws)
		fmt.Fprintf(&b, " W=%v", kws)
	}
	fmt.Fprintf(&b, " @%d}", q.Timestamp)
	return b.String()
}
