package stream

import (
	"strings"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
)

func TestObjectKeywordMatching(t *testing.T) {
	o := Object{ID: 1, Keywords: []string{"fire", "rescue", "ca"}}
	if !o.HasKeyword("fire") || o.HasKeyword("flood") {
		t.Error("HasKeyword mismatch")
	}
	if !o.MatchesAny([]string{"flood", "ca"}) {
		t.Error("MatchesAny should hit on second keyword")
	}
	if o.MatchesAny([]string{"flood", "storm"}) {
		t.Error("MatchesAny false positive")
	}
	if o.MatchesAny(nil) {
		t.Error("MatchesAny(nil) should be false")
	}
	empty := Object{ID: 2}
	if empty.MatchesAny([]string{"fire"}) {
		t.Error("keywordless object should match nothing")
	}
}

func TestQueryTypeClassification(t *testing.T) {
	r := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	tests := []struct {
		q    Query
		want QueryType
	}{
		{SpatialQ(r, 0), SpatialQuery},
		{KeywordQ([]string{"a"}, 0), KeywordQuery},
		{HybridQ(r, []string{"a"}, 0), HybridQuery},
	}
	for _, tc := range tests {
		if got := tc.q.Type(); got != tc.want {
			t.Errorf("Type(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if SpatialQuery.String() != "spatial" || KeywordQuery.String() != "keyword" || HybridQuery.String() != "hybrid" {
		t.Error("QueryType.String mismatch")
	}
	if !strings.Contains(QueryType(9).String(), "9") {
		t.Error("unknown QueryType should include raw value")
	}
}

func TestQueryValid(t *testing.T) {
	r := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	tests := []struct {
		name string
		q    Query
		want bool
	}{
		{"spatial", SpatialQ(r, 0), true},
		{"keyword", KeywordQ([]string{"a"}, 0), true},
		{"hybrid", HybridQ(r, []string{"a"}, 0), true},
		{"no predicates", Query{}, false},
		{"empty rect", SpatialQ(geo.Rect{}, 0), false},
		{"inverted rect", Query{HasRange: true, Range: geo.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}}, false},
	}
	for _, tc := range tests {
		if got := tc.q.Valid(); got != tc.want {
			t.Errorf("%s: Valid = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestQueryMatches(t *testing.T) {
	r := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	in := Object{Loc: geo.Pt(0.5, 0.5), Keywords: []string{"fire"}}
	out := Object{Loc: geo.Pt(2, 2), Keywords: []string{"fire"}}
	noKw := Object{Loc: geo.Pt(0.5, 0.5), Keywords: []string{"flood"}}

	hq := HybridQ(r, []string{"fire"}, 0)
	if !hq.Matches(&in) {
		t.Error("hybrid should match in-range keyword object")
	}
	if hq.Matches(&out) {
		t.Error("hybrid should reject out-of-range object")
	}
	if hq.Matches(&noKw) {
		t.Error("hybrid should reject non-matching keywords")
	}
	sq := SpatialQ(r, 0)
	if !sq.Matches(&noKw) {
		t.Error("spatial ignores keywords")
	}
	kq := KeywordQ([]string{"fire"}, 0)
	if !kq.Matches(&out) {
		t.Error("keyword ignores location")
	}
}

func TestQueryString(t *testing.T) {
	q := HybridQ(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, []string{"b", "a"}, 42)
	s := q.String()
	for _, want := range []string{"hybrid", "[a b]", "@42"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestClock(t *testing.T) {
	c := NewClock(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %d", c.Now())
	}
	if got := c.Advance(50); got != 150 || c.Now() != 150 {
		t.Fatalf("Advance = %d, Now = %d", got, c.Now())
	}
	c.AdvanceTo(150) // no-op advance to same time is fine
	c.AdvanceTo(200)
	if c.Now() != 200 {
		t.Fatalf("AdvanceTo: Now = %d", c.Now())
	}
	for _, fn := range []func(){
		func() { c.Advance(-1) },
		func() { c.AdvanceTo(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on clock rewind")
				}
			}()
			fn()
		}()
	}
}
