package stream

import (
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/persist"
)

// EncodeObject appends one object's fields. The same encoding is used by
// the window snapshot below and by the feed WAL, so a replayed record and a
// restored window object are byte-for-byte the same input.
func EncodeObject(e *persist.Enc, o *Object) {
	e.U64(o.ID)
	e.F64(o.Loc.X)
	e.F64(o.Loc.Y)
	e.I64(o.Timestamp)
	e.Strs(o.Keywords)
}

// DecodeObject reads one object; check d.Err after the last object.
func DecodeObject(d *persist.Dec) Object {
	id := d.U64()
	x := d.F64()
	y := d.F64()
	ts := d.I64()
	kws := d.Strs()
	return Object{ID: id, Loc: geo.Point{X: x, Y: y}, Keywords: kws, Timestamp: ts}
}

// SaveState serializes the window: sequence counters plus every live
// object in arrival order. The grid and postings index re-derive on load by
// re-inserting the objects.
func (w *Window) SaveState(e *persist.Enc) {
	e.U64(w.base)
	e.U64(w.inserted)
	e.U64(w.evicted)
	e.U32(uint32(w.Size()))
	for i := w.head; i < len(w.objs); i++ {
		EncodeObject(e, &w.objs[i])
	}
}

// LoadState restores a window saved with the same world, span and grid.
// The receiver must be empty and never inserted into; the saved base is
// installed *before* re-inserting so restored objects keep their original
// sequence numbers — shard prefill bookkeeping (NextSeq/EachBefore)
// continues exactly where the original left off.
func (w *Window) LoadState(d *persist.Dec) error {
	const op = "window"
	if w.inserted != 0 || w.Size() != 0 {
		return persist.Errf(persist.CodeState, op, "receiver already holds %d objects", w.Size())
	}
	base := d.U64()
	inserted := d.U64()
	evicted := d.U64()
	count := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	if count < 0 || inserted-evicted != uint64(count) {
		return persist.Errf(persist.CodeMalformed, op,
			"%d live objects vs inserted %d - evicted %d", count, inserted, evicted)
	}
	w.base = base
	last := int64(0)
	for i := 0; i < count; i++ {
		o := DecodeObject(d)
		if d.Err() != nil {
			return d.Err()
		}
		if i > 0 && o.Timestamp < last {
			return persist.Errf(persist.CodeMalformed, op, "objects out of order (%d after %d)", o.Timestamp, last)
		}
		last = o.Timestamp
		w.objs = append(w.objs, o)
		w.cells[w.grid.CellOf(o.Loc)].pushBack(base + uint64(i))
		for _, kw := range dedupe(o.Keywords) {
			pq := w.postings[kw]
			if pq == nil {
				pq = &refQueue{}
				w.postings[kw] = pq
			}
			pq.pushBack(base + uint64(i))
		}
	}
	w.inserted = inserted
	w.evicted = evicted
	return nil
}
