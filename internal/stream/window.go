package stream

import (
	"fmt"

	"github.com/spatiotext/latest/internal/geo"
)

// refQueue is a FIFO of global sequence numbers with amortised O(1)
// PushBack/PopFront. Objects arrive in timestamp order and expire in the
// same order, so every per-cell and per-keyword list in the window behaves
// as a queue, never a general set.
type refQueue struct {
	refs []uint64
	head int
}

func (q *refQueue) len() int { return len(q.refs) - q.head }

func (q *refQueue) pushBack(seq uint64) { q.refs = append(q.refs, seq) }

func (q *refQueue) front() uint64 { return q.refs[q.head] }

func (q *refQueue) popFront() uint64 {
	seq := q.refs[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.refs) {
		n := copy(q.refs, q.refs[q.head:])
		q.refs = q.refs[:n]
		q.head = 0
	}
	return seq
}

// each iterates live refs in arrival order; fn returning false stops early.
func (q *refQueue) each(fn func(seq uint64) bool) {
	for _, seq := range q.refs[q.head:] {
		if !fn(seq) {
			return
		}
	}
}

// Window is the exact store of S_T: every live object of the last T time
// units, indexed by a uniform grid and an inverted keyword index. It is the
// repository's stand-in for the paper's "actual data" path — the query
// processor whose system logs reveal true selectivity. Count answers RC-DVQ
// exactly and is used to score every estimator.
//
// Window is not safe for concurrent use; the simulation driver owns it.
type Window struct {
	world geo.Rect
	span  int64 // T, in virtual ms
	grid  *geo.Grid

	// Object arena: objs[i] has sequence number base+uint64(i)-uint64(head)
	// ... more precisely seq(objs[head+k]) = base+k. Compacted as the head
	// advances.
	objs []Object
	head int
	base uint64 // sequence number of objs[head]

	cells    []refQueue
	postings map[string]*refQueue

	inserted uint64 // lifetime insert count
	evicted  uint64 // lifetime evict count
}

// NewWindow builds a window store over the given world rectangle keeping the
// last span milliseconds. gridCells is the oracle's internal grid resolution
// (a perfect square, e.g. 16384); it affects only speed, never correctness.
func NewWindow(world geo.Rect, span int64, gridCells int) *Window {
	if span <= 0 {
		panic(fmt.Sprintf("stream: window span must be positive, got %d", span))
	}
	g := geo.NewSquareGrid(world, gridCells)
	return &Window{
		world:    world,
		span:     span,
		grid:     g,
		cells:    make([]refQueue, g.NumCells()),
		postings: make(map[string]*refQueue),
	}
}

// World returns the spatial domain of the window.
func (w *Window) World() geo.Rect { return w.world }

// Span returns T in virtual milliseconds.
func (w *Window) Span() int64 { return w.span }

// Size returns the number of live objects currently in the window.
func (w *Window) Size() int { return len(w.objs) - w.head }

// Inserted returns the lifetime number of inserted objects.
func (w *Window) Inserted() uint64 { return w.inserted }

// DistinctKeywords returns the number of distinct keywords currently live.
func (w *Window) DistinctKeywords() int { return len(w.postings) }

// objBySeq returns the live object with the given sequence number.
func (w *Window) objBySeq(seq uint64) *Object {
	return &w.objs[w.head+int(seq-w.base)]
}

// Insert appends an object to the window and evicts everything older than
// o.Timestamp - T. Timestamps must be non-decreasing; Insert panics
// otherwise because out-of-order arrival would corrupt the queue invariant.
func (w *Window) Insert(o Object) {
	if n := w.Size(); n > 0 {
		if last := w.objs[len(w.objs)-1].Timestamp; o.Timestamp < last {
			panic(fmt.Sprintf("stream: out-of-order insert (%d after %d)", o.Timestamp, last))
		}
	}
	seq := w.base + uint64(w.Size())
	w.objs = append(w.objs, o)
	w.inserted++

	w.cells[w.grid.CellOf(o.Loc)].pushBack(seq)
	for _, kw := range dedupe(o.Keywords) {
		pq := w.postings[kw]
		if pq == nil {
			pq = &refQueue{}
			w.postings[kw] = pq
		}
		pq.pushBack(seq)
	}
	w.EvictBefore(o.Timestamp - w.span)
}

// EvictBefore drops every object with Timestamp < cutoff. The driver also
// calls this before queries so the window reflects query time, not just the
// last insert.
func (w *Window) EvictBefore(cutoff int64) {
	for w.Size() > 0 && w.objs[w.head].Timestamp < cutoff {
		o := &w.objs[w.head]
		seq := w.base

		cq := &w.cells[w.grid.CellOf(o.Loc)]
		if cq.len() == 0 || cq.front() != seq {
			panic("stream: cell queue invariant violated")
		}
		cq.popFront()

		for _, kw := range dedupe(o.Keywords) {
			pq := w.postings[kw]
			if pq == nil || pq.len() == 0 || pq.front() != seq {
				panic("stream: posting queue invariant violated")
			}
			pq.popFront()
			if pq.len() == 0 {
				delete(w.postings, kw)
			}
		}

		w.head++
		w.base++
		w.evicted++
	}
	if w.head > 1024 && w.head*2 >= len(w.objs) {
		n := copy(w.objs, w.objs[w.head:])
		w.objs = w.objs[:n]
		w.head = 0
	}
}

// Answer evicts up to the query's window boundary and then counts exactly.
// This is the "execute on actual data" step of the paper's pipeline, whose
// result lands in the system logs.
func (w *Window) Answer(q *Query) int {
	w.EvictBefore(q.Timestamp - w.span)
	return w.Count(q)
}

// Count answers the RC-DVQ exactly over the current window contents. The
// caller is responsible for having evicted up to q.Timestamp - T first
// (Answer does both steps).
func (w *Window) Count(q *Query) int {
	if !q.Valid() {
		return 0
	}
	switch q.Type() {
	case SpatialQuery:
		return w.countSpatial(q.Range, nil)
	case KeywordQuery:
		return w.countKeyword(q.Keywords, nil)
	default:
		return w.countHybrid(q)
	}
}

// countSpatial counts window objects inside r that also match kws (nil kws
// means no keyword predicate). Interior cells are counted without touching
// objects when there is no keyword predicate.
func (w *Window) countSpatial(r geo.Rect, kws []string) int {
	cr := w.grid.CellsOverlapping(r)
	total := 0
	w.grid.ForEachCell(cr, func(idx int, cell geo.Rect) bool {
		cq := &w.cells[idx]
		if cq.len() == 0 {
			return true
		}
		if kws == nil && r.ContainsRect(cell) {
			total += cq.len()
			return true
		}
		cq.each(func(seq uint64) bool {
			o := w.objBySeq(seq)
			if r.Contains(o.Loc) && (kws == nil || o.MatchesAny(kws)) {
				total++
			}
			return true
		})
		return true
	})
	return total
}

// countKeyword counts distinct window objects carrying any of kws, further
// filtered by r when non-nil.
func (w *Window) countKeyword(kws []string, r *geo.Rect) int {
	if len(kws) == 1 {
		pq := w.postings[kws[0]]
		if pq == nil {
			return 0
		}
		if r == nil {
			return pq.len()
		}
		total := 0
		pq.each(func(seq uint64) bool {
			if r.Contains(w.objBySeq(seq).Loc) {
				total++
			}
			return true
		})
		return total
	}
	seen := make(map[uint64]struct{})
	for _, kw := range dedupe(kws) {
		pq := w.postings[kw]
		if pq == nil {
			continue
		}
		pq.each(func(seq uint64) bool {
			if _, dup := seen[seq]; dup {
				return true
			}
			if r == nil || r.Contains(w.objBySeq(seq).Loc) {
				seen[seq] = struct{}{}
			}
			return true
		})
	}
	return len(seen)
}

// countHybrid picks the cheaper side to drive the scan: keyword postings
// when they are collectively shorter than the spatial candidate set.
func (w *Window) countHybrid(q *Query) int {
	postingsLen := 0
	for _, kw := range dedupe(q.Keywords) {
		if pq := w.postings[kw]; pq != nil {
			postingsLen += pq.len()
		}
	}
	cr := w.grid.CellsOverlapping(q.Range)
	spatialLen := 0
	w.grid.ForEachCell(cr, func(idx int, _ geo.Rect) bool {
		spatialLen += w.cells[idx].len()
		return true
	})
	if postingsLen <= spatialLen {
		return w.countKeyword(q.Keywords, &q.Range)
	}
	return w.countSpatial(q.Range, q.Keywords)
}

// Each iterates over every live object in arrival order. Used by estimator
// pre-filling (§V-D): a freshly recommended estimator is warmed from the
// live window before it takes over.
func (w *Window) Each(fn func(o *Object) bool) {
	for i := w.head; i < len(w.objs); i++ {
		if !fn(&w.objs[i]) {
			return
		}
	}
}

// NextSeq returns the sequence number the next inserted object will
// receive. Together with EachBefore it lets a caller snapshot "everything
// in the window as of now" by value: record NextSeq at decision time,
// replay EachBefore(seq) later, and objects inserted in between are
// excluded no matter how long the replay is deferred. Deferred estimator
// pre-filling uses exactly this to move the window replay off the query
// path without double-inserting objects the estimator already saw live.
func (w *Window) NextSeq() uint64 { return w.base + uint64(w.Size()) }

// EachBefore iterates, in arrival order, over the live objects whose
// sequence number is below maxSeq (i.e. those already present when
// NextSeq returned maxSeq). Objects evicted since then are skipped
// naturally — they are no longer live. fn returning false stops early.
func (w *Window) EachBefore(maxSeq uint64, fn func(o *Object) bool) {
	if maxSeq <= w.base {
		return
	}
	end := w.head + int(maxSeq-w.base)
	if end > len(w.objs) {
		end = len(w.objs)
	}
	for i := w.head; i < end; i++ {
		if !fn(&w.objs[i]) {
			return
		}
	}
}

// dedupe returns kws with duplicates removed, preserving order. Keyword
// lists are tiny (1-5 entries), so the quadratic scan beats a map.
func dedupe(kws []string) []string {
	if len(kws) < 2 {
		return kws
	}
	out := kws[:0:0]
	for i, kw := range kws {
		dup := false
		for _, prev := range kws[:i] {
			if prev == kw {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, kw)
		}
	}
	return out
}
