package stream

import (
	"testing"

	"github.com/spatiotext/latest/internal/geo"
)

// TestWindowEachBefore covers the snapshot-iteration contract used by
// deferred pre-filling: objects inserted after NextSeq are excluded, and
// objects evicted since are skipped.
func TestWindowEachBefore(t *testing.T) {
	w := NewWindow(geo.UnitSquare, 100, 16)
	for i := 0; i < 10; i++ {
		w.Insert(Object{ID: uint64(i), Loc: geo.Pt(0.5, 0.5), Timestamp: int64(i)})
	}
	seq := w.NextSeq()

	count := func(maxSeq uint64) (ids []uint64) {
		w.EachBefore(maxSeq, func(o *Object) bool {
			ids = append(ids, o.ID)
			return true
		})
		return ids
	}
	if got := count(seq); len(got) != 10 || got[0] != 0 || got[9] != 9 {
		t.Fatalf("snapshot = %v, want ids 0..9", got)
	}

	// Later inserts must stay invisible to the old snapshot.
	for i := 10; i < 15; i++ {
		w.Insert(Object{ID: uint64(i), Loc: geo.Pt(0.5, 0.5), Timestamp: int64(i)})
	}
	if got := count(seq); len(got) != 10 || got[9] != 9 {
		t.Fatalf("snapshot after inserts = %v, want ids 0..9", got)
	}

	// Eviction shrinks the snapshot from the front.
	w.EvictBefore(5) // drops ts 0..4
	if got := count(seq); len(got) != 5 || got[0] != 5 || got[4] != 9 {
		t.Fatalf("snapshot after evict = %v, want ids 5..9", got)
	}

	// A snapshot wholly evicted iterates nothing.
	w.EvictBefore(12)
	if got := count(seq); len(got) != 0 {
		t.Fatalf("fully evicted snapshot = %v, want empty", got)
	}

	// Early stop.
	n := 0
	w.EachBefore(w.NextSeq(), func(o *Object) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d objects", n)
	}
}
