package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
)

// bruteCount is the trivially correct reference implementation of RC-DVQ
// against a plain object slice.
func bruteCount(objs []Object, q *Query, cutoff int64) int {
	n := 0
	for i := range objs {
		o := &objs[i]
		if o.Timestamp < cutoff {
			continue
		}
		if q.Matches(o) {
			n++
		}
	}
	return n
}

func randomObject(rng *rand.Rand, id uint64, ts int64, vocab []string) Object {
	nk := rng.Intn(4) // 0..3 keywords
	kws := make([]string, 0, nk)
	for i := 0; i < nk; i++ {
		kws = append(kws, vocab[rng.Intn(len(vocab))])
	}
	return Object{
		ID:        id,
		Loc:       geo.Pt(rng.Float64(), rng.Float64()),
		Keywords:  kws,
		Timestamp: ts,
	}
}

func randomQuery(rng *rand.Rand, ts int64, vocab []string) Query {
	switch rng.Intn(3) {
	case 0:
		return SpatialQ(randRect(rng), ts)
	case 1:
		n := 1 + rng.Intn(3)
		kws := make([]string, n)
		for i := range kws {
			kws[i] = vocab[rng.Intn(len(vocab))]
		}
		return KeywordQ(kws, ts)
	default:
		return HybridQ(randRect(rng), []string{vocab[rng.Intn(len(vocab))]}, ts)
	}
}

func randRect(rng *rand.Rand) geo.Rect {
	cx, cy := rng.Float64(), rng.Float64()
	w, h := rng.Float64()*0.4+0.01, rng.Float64()*0.4+0.01
	return geo.CenteredRect(geo.Pt(cx, cy), w, h)
}

func vocabN(n int) []string {
	v := make([]string, n)
	for i := range v {
		v[i] = fmt.Sprintf("kw%02d", i)
	}
	return v
}

func TestWindowMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocab := vocabN(20)
	const span = 1000
	w := NewWindow(geo.UnitSquare, span, 64)

	var all []Object
	ts := int64(0)
	for i := 0; i < 3000; i++ {
		ts += int64(rng.Intn(3))
		o := randomObject(rng, uint64(i), ts, vocab)
		all = append(all, o)
		w.Insert(o)

		if i%50 == 0 {
			q := randomQuery(rng, ts, vocab)
			got := w.Answer(&q)
			want := bruteCount(all, &q, ts-span)
			if got != want {
				t.Fatalf("at insert %d, %v: got %d, want %d", i, q, got, want)
			}
		}
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(geo.UnitSquare, 100, 16)
	for i := 0; i < 10; i++ {
		w.Insert(Object{ID: uint64(i), Loc: geo.Pt(0.5, 0.5), Timestamp: int64(i * 10), Keywords: []string{"a"}})
	}
	if w.Size() != 10 {
		t.Fatalf("Size = %d, want 10 (all inside window)", w.Size())
	}
	// Inserting at t=150 evicts everything with ts < 50 (ids 0..4).
	w.Insert(Object{ID: 99, Loc: geo.Pt(0.5, 0.5), Timestamp: 150, Keywords: []string{"a"}})
	if w.Size() != 6 {
		t.Fatalf("Size = %d, want 6", w.Size())
	}
	q := KeywordQ([]string{"a"}, 150)
	if got := w.Answer(&q); got != 6 {
		t.Fatalf("keyword count = %d, want 6", got)
	}
	// Advance far enough to empty the window entirely.
	w.EvictBefore(10_000)
	if w.Size() != 0 {
		t.Fatalf("Size after full evict = %d", w.Size())
	}
	if w.DistinctKeywords() != 0 {
		t.Fatalf("postings not cleaned: %d distinct keywords", w.DistinctKeywords())
	}
}

func TestWindowOutOfOrderPanics(t *testing.T) {
	w := NewWindow(geo.UnitSquare, 100, 16)
	w.Insert(Object{ID: 1, Loc: geo.Pt(0.1, 0.1), Timestamp: 50})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-order insert")
		}
	}()
	w.Insert(Object{ID: 2, Loc: geo.Pt(0.1, 0.1), Timestamp: 40})
}

func TestWindowBadSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-positive span")
		}
	}()
	NewWindow(geo.UnitSquare, 0, 16)
}

func TestWindowDuplicateKeywordsCountOnce(t *testing.T) {
	w := NewWindow(geo.UnitSquare, 1000, 16)
	w.Insert(Object{ID: 1, Loc: geo.Pt(0.5, 0.5), Keywords: []string{"x", "x", "y"}, Timestamp: 0})
	q := KeywordQ([]string{"x"}, 0)
	if got := w.Answer(&q); got != 1 {
		t.Fatalf("duplicate keyword object counted %d times", got)
	}
	// A multi-keyword query hitting both of the object's keywords still
	// counts the object once (distinct-value semantics).
	q2 := KeywordQ([]string{"x", "y"}, 0)
	if got := w.Answer(&q2); got != 1 {
		t.Fatalf("multi-keyword distinct count = %d, want 1", got)
	}
	// Duplicate keywords in the *query* don't double count either.
	q3 := KeywordQ([]string{"x", "x"}, 0)
	if got := w.Answer(&q3); got != 1 {
		t.Fatalf("duplicate query keyword count = %d, want 1", got)
	}
}

func TestWindowHybridBothDirections(t *testing.T) {
	// Force both scan directions of countHybrid: a rare keyword (posting
	// scan wins) and a common keyword with a tiny range (spatial scan wins).
	rng := rand.New(rand.NewSource(3))
	w := NewWindow(geo.UnitSquare, 1_000_000, 256)
	var all []Object
	for i := 0; i < 5000; i++ {
		kw := "common"
		if i%500 == 0 {
			kw = "rare"
		}
		o := Object{ID: uint64(i), Loc: geo.Pt(rng.Float64(), rng.Float64()), Keywords: []string{kw}, Timestamp: int64(i)}
		all = append(all, o)
		w.Insert(o)
	}
	rare := HybridQ(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, []string{"rare"}, 5000)
	if got, want := w.Answer(&rare), bruteCount(all, &rare, 0); got != want {
		t.Errorf("rare hybrid: got %d want %d", got, want)
	}
	tiny := HybridQ(geo.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.45, MaxY: 0.45}, []string{"common"}, 5000)
	if got, want := w.Answer(&tiny), bruteCount(all, &tiny, 0); got != want {
		t.Errorf("tiny-range hybrid: got %d want %d", got, want)
	}
}

func TestWindowEachOrder(t *testing.T) {
	w := NewWindow(geo.UnitSquare, 1000, 16)
	for i := 0; i < 20; i++ {
		w.Insert(Object{ID: uint64(i), Loc: geo.Pt(0.5, 0.5), Timestamp: int64(i)})
	}
	var ids []uint64
	w.Each(func(o *Object) bool {
		ids = append(ids, o.ID)
		return true
	})
	if len(ids) != 20 {
		t.Fatalf("Each visited %d, want 20", len(ids))
	}
	for i, id := range ids {
		if id != uint64(i) {
			t.Fatalf("Each order broken at %d: %v", i, ids)
		}
	}
	n := 0
	w.Each(func(o *Object) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Each early stop visited %d", n)
	}
}

func TestWindowCompactionKeepsAnswers(t *testing.T) {
	// Long run with aggressive eviction: exercises arena and queue
	// compaction paths, checking counts stay exact throughout.
	rng := rand.New(rand.NewSource(9))
	vocab := vocabN(8)
	const span = 200
	w := NewWindow(geo.UnitSquare, span, 64)
	var all []Object
	ts := int64(0)
	for i := 0; i < 20000; i++ {
		ts += 1
		o := randomObject(rng, uint64(i), ts, vocab)
		all = append(all, o)
		w.Insert(o)
		if i%997 == 0 {
			q := randomQuery(rng, ts, vocab)
			got := w.Answer(&q)
			want := bruteCount(all, &q, ts-span)
			if got != want {
				t.Fatalf("at %d: got %d, want %d for %v", i, got, want, q)
			}
		}
	}
	if w.Size() > span+1 {
		t.Fatalf("window retained %d objects with 1/ms arrival and span %d", w.Size(), span)
	}
	if w.Inserted() != 20000 {
		t.Fatalf("Inserted = %d", w.Inserted())
	}
}

func BenchmarkWindowInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vocab := vocabN(100)
	w := NewWindow(geo.UnitSquare, 100_000, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Insert(randomObject(rng, uint64(i), int64(i), vocab))
	}
}

func BenchmarkWindowAnswerSpatial(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vocab := vocabN(100)
	w := NewWindow(geo.UnitSquare, 1_000_000, 4096)
	for i := 0; i < 100_000; i++ {
		w.Insert(randomObject(rng, uint64(i), int64(i), vocab))
	}
	q := SpatialQ(geo.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.6, MaxY: 0.6}, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Answer(&q)
	}
}
