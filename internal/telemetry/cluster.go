package telemetry

import (
	"strconv"
	"strings"
)

// cluster.go holds the cluster routing layer's slice of a telemetry
// Snapshot: the partition-map view, scatter/forward/broadcast routing
// counters, map-negotiation counters and per-node request statistics that
// the router (embedded client.Cluster or cmd/latest-router) publishes
// through the same /metrics and /statusz endpoints as everything else. The
// types live here, below the cluster package in the dependency order, for
// the same reason ServerSample does.

// ClusterNode is one backend node's share of the router's traffic.
type ClusterNode struct {
	// Addr is the node's wire-protocol address.
	Addr string `json:"addr"`
	// Requests counts sub-requests sent to this node (feeds, estimates,
	// query batches, map fetches); Errors counts the ones that failed
	// after the router's own retries.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// Latency is the router-observed round-trip distribution.
	Latency HistSnapshot `json:"latency"`
}

// ClusterSample is the cluster routing layer's slice of a Snapshot.
type ClusterSample struct {
	// Epoch is the partition-map version the router currently holds.
	Epoch uint64 `json:"epoch"`
	// Nodes, Cols and Rows describe the held map.
	Nodes int `json:"nodes"`
	Cols  int `json:"cols"`
	Rows  int `json:"rows"`

	// FeedObjects counts objects routed; FeedBatches counts caller feed
	// batches (one batch fans out to at most Nodes sub-batches).
	FeedObjects uint64 `json:"feed_objects"`
	FeedBatches uint64 `json:"feed_batches"`
	// Estimates and Queries count caller-visible operations.
	Estimates uint64 `json:"estimates"`
	Queries   uint64 `json:"queries"`

	// ForwardSingle counts queries forwarded unmodified to one owner,
	// ScatterMulti queries clipped across several owners, Broadcasts
	// keyword-only queries sent to every node.
	ForwardSingle uint64 `json:"forward_single"`
	ScatterMulti  uint64 `json:"scatter_multi"`
	Broadcasts    uint64 `json:"broadcasts"`
	// Subqueries counts node-bound sub-requests issued for queries.
	Subqueries uint64 `json:"subqueries"`

	// NotOwner counts not-owner refusals observed, MapRefetches the map
	// fetches they (or startup) triggered, Retries the transparent
	// re-routes that followed, NodeErrors the hard node failures
	// surfaced to callers.
	NotOwner     uint64 `json:"not_owner"`
	MapRefetches uint64 `json:"map_refetches"`
	Retries      uint64 `json:"retries"`
	NodeErrors   uint64 `json:"node_errors"`

	PerNode []ClusterNode `json:"per_node"`
}

// writeClusterProm renders the latest_cluster_* metric families.
func writeClusterProm(b *strings.Builder, s *ClusterSample) {
	counter := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " counter\n")
	}
	gauge := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " gauge\n")
	}
	sample := func(name, labels string, v float64) {
		b.WriteString(name)
		if labels != "" {
			b.WriteString("{" + labels + "}")
		}
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteByte('\n')
	}

	gauge("latest_cluster_epoch", "Partition-map epoch the router currently holds.")
	sample("latest_cluster_epoch", "", float64(s.Epoch))
	gauge("latest_cluster_nodes", "Backend nodes in the held partition map.")
	sample("latest_cluster_nodes", "", float64(s.Nodes))
	gauge("latest_cluster_cells", "Partition-map grid cells (cols x rows).")
	sample("latest_cluster_cells", "", float64(s.Cols*s.Rows))

	counter("latest_cluster_feed_objects_total", "Objects routed to owning nodes.")
	sample("latest_cluster_feed_objects_total", "", float64(s.FeedObjects))
	counter("latest_cluster_requests_total", "Caller-visible operations by kind.")
	sample("latest_cluster_requests_total", `op="feed"`, float64(s.FeedBatches))
	sample("latest_cluster_requests_total", `op="estimate"`, float64(s.Estimates))
	sample("latest_cluster_requests_total", `op="query"`, float64(s.Queries))

	counter("latest_cluster_routing_total", "Query routing decisions by mode.")
	sample("latest_cluster_routing_total", `mode="forward"`, float64(s.ForwardSingle))
	sample("latest_cluster_routing_total", `mode="scatter"`, float64(s.ScatterMulti))
	sample("latest_cluster_routing_total", `mode="broadcast"`, float64(s.Broadcasts))
	counter("latest_cluster_subqueries_total", "Node-bound sub-requests issued for queries.")
	sample("latest_cluster_subqueries_total", "", float64(s.Subqueries))

	counter("latest_cluster_not_owner_total", "Not-owner refusals observed from nodes.")
	sample("latest_cluster_not_owner_total", "", float64(s.NotOwner))
	counter("latest_cluster_map_refetches_total", "Partition-map refetches.")
	sample("latest_cluster_map_refetches_total", "", float64(s.MapRefetches))
	counter("latest_cluster_retries_total", "Transparent re-routes after a map refetch.")
	sample("latest_cluster_retries_total", "", float64(s.Retries))
	counter("latest_cluster_node_errors_total", "Hard node failures surfaced to callers.")
	sample("latest_cluster_node_errors_total", "", float64(s.NodeErrors))

	counter("latest_cluster_node_requests_total", "Sub-requests per backend node.")
	for _, n := range s.PerNode {
		sample("latest_cluster_node_requests_total", `node="`+n.Addr+`"`, float64(n.Requests))
	}
	counter("latest_cluster_node_request_errors_total", "Failed sub-requests per backend node.")
	for _, n := range s.PerNode {
		sample("latest_cluster_node_request_errors_total", `node="`+n.Addr+`"`, float64(n.Errors))
	}
	b.WriteString("# HELP latest_cluster_node_latency_seconds Router-observed round-trip latency per backend node.\n" +
		"# TYPE latest_cluster_node_latency_seconds histogram\n")
	for _, n := range s.PerNode {
		promHistogramOne(b, "latest_cluster_node_latency_seconds", `node="`+n.Addr+`"`, n.Latency)
	}
}
