package telemetry

import (
	"math"
	"sync"
)

// drift.go is the accuracy-drift watchdog: per-estimator windowed q-error
// drift detection. The VFDT adaptor reacts to *relative* estimator ranking;
// it can keep an estimator active while the whole fleet degrades together
// (workload shift, window churn). The watchdog catches that case by
// comparing the mean q-error of a frozen reference window — the first W
// observed errors after calibration, when the envelope was known-good —
// against a rolling window of the most recent W errors. The ratio
// current/reference is exported as latest_qerror_drift; a ratio ≥ the
// threshold marks the estimator drifted. This is also the input signal the
// planned online-correction layer (ROADMAP item 2) consumes.

// DefaultDriftWindow is the reference/current window length in q-error
// observations when the embedder does not size it.
const DefaultDriftWindow = 128

// DefaultDriftThreshold is the current/reference mean q-error ratio at and
// above which an estimator is flagged drifted. 2 means "typical error has
// doubled since calibration" — well outside run-to-run noise for every
// estimator envelope in internal/check, while a sustained regression
// (evicted training regime, workload shift) crosses it quickly.
const DefaultDriftThreshold = 2.0

// DriftSample is one estimator's drift reading.
type DriftSample struct {
	Estimator string `json:"estimator"`
	// Reference is the mean q-error of the frozen reference window (the
	// first Window observations); Current the mean over the most recent
	// Window observations. Both are 0 until their windows fill.
	Reference float64 `json:"reference"`
	Current   float64 `json:"current"`
	// Ratio is Current/Reference, the drift signal; 0 until both windows
	// are full.
	Ratio float64 `json:"ratio"`
	// Threshold is the ratio at which Drifted trips.
	Threshold float64 `json:"threshold"`
	// Samples is the lifetime q-error observation count.
	Samples uint64 `json:"samples"`
	// Drifted reports Ratio >= Threshold (with both windows full).
	Drifted bool `json:"drifted"`
}

// DriftTracker detects q-error drift for one estimator. Not safe for
// concurrent use; callers observe under the same lock that serializes the
// query path (core.Module access is already single-writer per shard).
type DriftTracker struct {
	window int
	thresh float64

	// Reference window: sum of the first `window` observations, frozen
	// once full.
	refSum float64
	refN   int

	// Current window: ring of the most recent `window` observations with
	// an incrementally maintained sum.
	cur    []float64
	curSum float64
	curN   int
	next   int

	total uint64
}

// NewDriftTracker creates a tracker with the given window length and ratio
// threshold (values <= 0 take the defaults).
func NewDriftTracker(window int, threshold float64) *DriftTracker {
	if window <= 0 {
		window = DefaultDriftWindow
	}
	if threshold <= 0 {
		threshold = DefaultDriftThreshold
	}
	return &DriftTracker{window: window, thresh: threshold, cur: make([]float64, window)}
}

// Observe folds one q-error observation (≥ 1 by construction) into both
// windows. O(1), allocation-free.
func (d *DriftTracker) Observe(q float64) {
	if d == nil || math.IsNaN(q) || math.IsInf(q, 0) || q < 1 {
		// Non-finite or sub-1 readings never reach here by construction
		// (q-error >= 1); be safe against misuse.
		return
	}
	d.total++
	if d.refN < d.window {
		d.refSum += q
		d.refN++
	}
	if d.curN == d.window {
		d.curSum -= d.cur[d.next]
	} else {
		d.curN++
	}
	d.cur[d.next] = q
	d.curSum += q
	d.next = (d.next + 1) % d.window
}

// Sample reads the tracker's current drift state for the named estimator.
func (d *DriftTracker) Sample(estimator string) DriftSample {
	s := DriftSample{Estimator: estimator, Threshold: DefaultDriftThreshold}
	if d == nil {
		return s
	}
	s.Threshold = d.thresh
	s.Samples = d.total
	if d.refN == d.window {
		s.Reference = d.refSum / float64(d.refN)
	}
	if d.curN == d.window {
		s.Current = d.curSum / float64(d.curN)
	}
	if s.Reference > 0 && s.Current > 0 {
		s.Ratio = s.Current / s.Reference
		s.Drifted = s.Ratio >= d.thresh
	}
	return s
}

// Reset re-anchors the tracker: both windows clear and the next Window
// observations become the new reference. Called when the embedder knows the
// regime legitimately changed (estimator re-admission after quarantine,
// explicit recalibration).
func (d *DriftTracker) Reset() {
	if d == nil {
		return
	}
	d.refSum, d.refN = 0, 0
	d.curSum, d.curN, d.next = 0, 0, 0
	d.total = 0
}

// MergeDriftSamples folds per-shard drift samples for the same estimator
// set into one fleet view: reference and current means combine weighted by
// each shard's sample count, the ratio is recomputed, and the threshold is
// taken from the first sample (all shards share a config). Order of the
// input groups is preserved.
func MergeDriftSamples(groups ...[]DriftSample) []DriftSample {
	type acc struct {
		ref, cur   float64 // sample-weighted sums
		refW, curW float64
		samples    uint64
		thresh     float64
	}
	var order []string
	accs := map[string]*acc{}
	for _, g := range groups {
		for _, s := range g {
			a := accs[s.Estimator]
			if a == nil {
				a = &acc{thresh: s.Threshold}
				accs[s.Estimator] = a
				order = append(order, s.Estimator)
			}
			w := float64(s.Samples)
			if s.Reference > 0 {
				a.ref += s.Reference * w
				a.refW += w
			}
			if s.Current > 0 {
				a.cur += s.Current * w
				a.curW += w
			}
			a.samples += s.Samples
		}
	}
	out := make([]DriftSample, 0, len(order))
	for _, name := range order {
		a := accs[name]
		s := DriftSample{Estimator: name, Threshold: a.thresh, Samples: a.samples}
		if a.refW > 0 {
			s.Reference = a.ref / a.refW
		}
		if a.curW > 0 {
			s.Current = a.cur / a.curW
		}
		if s.Reference > 0 && s.Current > 0 {
			s.Ratio = s.Current / s.Reference
			s.Drifted = s.Ratio >= s.Threshold
		}
		out = append(out, s)
	}
	return out
}

// DriftSet is a concurrency-safe bundle of per-estimator trackers for
// embedders whose observation path is not already serialized. The core
// module does not need it (its access is lock-serialized); it exists for
// external consumers of the telemetry package.
type DriftSet struct {
	mu       sync.Mutex
	window   int
	thresh   float64
	trackers map[string]*DriftTracker
	order    []string
}

// NewDriftSet creates an empty set; trackers are created on first Observe
// per estimator with the given window/threshold (<= 0 take defaults).
func NewDriftSet(window int, threshold float64) *DriftSet {
	return &DriftSet{window: window, thresh: threshold, trackers: map[string]*DriftTracker{}}
}

// Observe records one q-error for the named estimator.
func (s *DriftSet) Observe(estimator string, q float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	t := s.trackers[estimator]
	if t == nil {
		t = NewDriftTracker(s.window, s.thresh)
		s.trackers[estimator] = t
		s.order = append(s.order, estimator)
	}
	t.Observe(q)
	s.mu.Unlock()
}

// Samples reads every tracker in first-observed order.
func (s *DriftSet) Samples() []DriftSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DriftSample, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.trackers[name].Sample(name))
	}
	return out
}
