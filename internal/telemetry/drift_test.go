package telemetry

import (
	"math"
	"testing"
)

func TestDriftTrackerWindows(t *testing.T) {
	d := NewDriftTracker(4, 2.0)

	// Before any window fills nothing is reported.
	s := d.Sample("H4096")
	if s.Reference != 0 || s.Current != 0 || s.Drifted {
		t.Fatalf("empty sample = %+v", s)
	}

	// After one partial observation neither window reports.
	d.Observe(1.25)
	if s = d.Sample("H4096"); s.Reference != 0 || s.Current != 0 || s.Ratio != 0 {
		t.Fatalf("partial sample = %+v", s)
	}

	// The first 4 observations freeze the reference window (mean 1.25)
	// and simultaneously fill the current ring: ratio 1, no drift.
	for i := 0; i < 3; i++ {
		d.Observe(1.25)
	}
	s = d.Sample("H4096")
	if s.Reference != 1.25 || s.Current != 1.25 {
		t.Fatalf("full-window sample = %+v", s)
	}
	if math.Abs(s.Ratio-1) > 1e-9 || s.Drifted {
		t.Fatalf("healthy sample = %+v", s)
	}

	// Accuracy collapse: q-errors triple, ratio crosses the threshold.
	for i := 0; i < 4; i++ {
		d.Observe(3.75)
	}
	s = d.Sample("H4096")
	if math.Abs(s.Ratio-3) > 1e-9 || !s.Drifted {
		t.Fatalf("drifted sample = %+v", s)
	}
	if s.Estimator != "H4096" || s.Threshold != 2.0 {
		t.Fatalf("sample metadata = %+v", s)
	}

	// Recovery: the rolling window slides back under the threshold.
	for i := 0; i < 4; i++ {
		d.Observe(1.3)
	}
	if s = d.Sample("H4096"); s.Drifted {
		t.Fatalf("recovered but still drifted: %+v", s)
	}

	d.Reset()
	if s = d.Sample("H4096"); s.Reference != 0 || s.Samples != 0 {
		t.Fatalf("reset sample = %+v", s)
	}
}

func TestDriftTrackerRejectsInvalid(t *testing.T) {
	d := NewDriftTracker(2, 2.0)
	d.Observe(math.NaN())
	d.Observe(0.5) // q-error is >= 1 by definition
	d.Observe(math.Inf(1))
	if s := d.Sample("x"); s.Samples != 0 {
		t.Fatalf("invalid observations counted: %+v", s)
	}
}

func TestDriftTrackerDefaults(t *testing.T) {
	d := NewDriftTracker(0, 0)
	for i := 0; i < 2*DefaultDriftWindow; i++ {
		d.Observe(1.5)
	}
	s := d.Sample("y")
	if s.Threshold != DefaultDriftThreshold || s.Ratio == 0 {
		t.Fatalf("defaulted sample = %+v", s)
	}
}

func TestMergeDriftSamples(t *testing.T) {
	a := []DriftSample{
		{Estimator: "H4096", Reference: 1.0, Current: 2.0, Ratio: 2.0, Threshold: 2.0, Samples: 100, Drifted: true},
		{Estimator: "RSH", Reference: 1.2, Current: 1.2, Ratio: 1.0, Threshold: 2.0, Samples: 50},
	}
	b := []DriftSample{
		{Estimator: "H4096", Reference: 1.0, Current: 1.0, Ratio: 1.0, Threshold: 2.0, Samples: 300},
	}
	merged := MergeDriftSamples(a, b)
	if len(merged) != 2 {
		t.Fatalf("%d merged samples", len(merged))
	}
	var h DriftSample
	for _, m := range merged {
		if m.Estimator == "H4096" {
			h = m
		}
	}
	if h.Samples != 400 {
		t.Fatalf("merged samples = %d", h.Samples)
	}
	// Weighted: (2.0*100 + 1.0*300) / 400 = 1.25 current, reference 1.0.
	if math.Abs(h.Current-1.25) > 1e-9 || math.Abs(h.Ratio-1.25) > 1e-9 {
		t.Fatalf("merged current/ratio = %v/%v", h.Current, h.Ratio)
	}
	if h.Drifted {
		t.Fatal("merged ratio below threshold must not be drifted")
	}

	if out := MergeDriftSamples(nil, nil); len(out) != 0 {
		t.Fatalf("merging nothing = %+v", out)
	}
}

func TestDriftSet(t *testing.T) {
	set := NewDriftSet(0, 0)
	for i := 0; i < 2*DefaultDriftWindow; i++ {
		set.Observe("a", 1.0)
		set.Observe("b", 4.0)
	}
	samples := set.Samples()
	if len(samples) != 2 {
		t.Fatalf("%d samples", len(samples))
	}
	for _, s := range samples {
		if s.Samples == 0 {
			t.Fatalf("empty sample %+v", s)
		}
	}
}
