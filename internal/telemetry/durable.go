package telemetry

import (
	"strconv"
	"strings"
)

// durable.go holds the durability layer's slice of a telemetry Snapshot:
// WAL append/fsync counters and latency distributions, snapshot
// duration/size/generation, and the startup recovery cost. The types live
// here (below latest.DurableEngine in the dependency order) so the
// exposition renderer can describe the layer without importing it —
// mirroring how serving.go describes internal/server.

// DurableError is one retained persistence failure, for /statusz.
type DurableError struct {
	UnixNanos int64  `json:"unix_nanos"`
	Op        string `json:"op"`
	Err       string `json:"err"`
}

// DurableSample is the durability layer's slice of a Snapshot.
type DurableSample struct {
	// Generation is the current snapshot generation (each snapshot commit
	// increments it and rotates the WAL).
	Generation uint64 `json:"generation"`

	// State is the degraded-mode machine's position ("healthy" or
	// "degraded"); StateSeconds how long it has been there.
	State        string  `json:"state"`
	StateSeconds float64 `json:"state_seconds"`

	// WALAppends counts records appended to the live WAL across all
	// generations; WALBytes the framed bytes written; WALSyncs the fsync
	// batches issued; WALRotations the generation rollovers.
	WALAppends   uint64 `json:"wal_appends"`
	WALBytes     uint64 `json:"wal_bytes"`
	WALSyncs     uint64 `json:"wal_syncs"`
	WALRotations uint64 `json:"wal_rotations"`

	// WALErrors counts failed WAL operations; StoreErrors failed store
	// housekeeping; DroppedAppends feeds not logged while degraded (in
	// memory only until the repair snapshot commits).
	WALErrors      uint64 `json:"wal_errors"`
	StoreErrors    uint64 `json:"store_errors"`
	DroppedAppends uint64 `json:"dropped_appends"`

	// Degradations counts healthy-to-degraded transitions; RepairAttempts
	// snapshot-based repair tries; Repairs successful re-arms;
	// ErrorsTotal every persistence error recorded.
	Degradations   uint64 `json:"degradations"`
	RepairAttempts uint64 `json:"repair_attempts"`
	Repairs        uint64 `json:"repairs"`
	ErrorsTotal    uint64 `json:"errors_total"`

	// LastErrors is the bounded tail of recent persistence failures,
	// oldest first.
	LastErrors []DurableError `json:"last_errors,omitempty"`

	// Snapshots counts committed snapshots this process took;
	// SnapshotErrors failed attempts (each degrades the state machine;
	// the engine keeps serving from memory).
	Snapshots      uint64 `json:"snapshots"`
	SnapshotErrors uint64 `json:"snapshot_errors"`
	// LastSnapshotBytes is the serialized size of the most recent committed
	// snapshot.
	LastSnapshotBytes uint64 `json:"last_snapshot_bytes"`

	// RecoverySeconds is the startup cost of restore + WAL replay (near
	// zero for a fresh directory); RecoveryWALRecords the records replayed;
	// RecoveryTruncatedBytes the torn tail discarded from the live WAL.
	RecoverySeconds        float64 `json:"recovery_seconds"`
	RecoveryWALRecords     uint64  `json:"recovery_wal_records"`
	RecoveryTruncatedBytes int64   `json:"recovery_truncated_bytes"`
	// RecoveredSnapshot is true when startup restored from a snapshot
	// (false: fresh start, WAL-only replay counts from generation 0).
	RecoveredSnapshot bool `json:"recovered_snapshot"`
	// RecoveredGeneration is the generation startup restored from;
	// RecoveredFallback is true when that was not the newest generation on
	// disk (the newest failed its checksums and recovery fell back).
	RecoveredGeneration uint64 `json:"recovered_generation"`
	RecoveredFallback   bool   `json:"recovered_fallback"`

	// AppendLatency is the WAL append call distribution (framing + write,
	// fsync excluded), SyncLatency the fsync-batch distribution, and
	// SnapshotLatency full snapshot commits (serialize + rename + WAL
	// rotation).
	AppendLatency   HistSnapshot `json:"append_latency"`
	SyncLatency     HistSnapshot `json:"sync_latency"`
	SnapshotLatency HistSnapshot `json:"snapshot_latency"`
}

// writeDurableProm renders the latest_wal_*, latest_snapshot_* and
// latest_recovery_* metric families.
func writeDurableProm(b *strings.Builder, d *DurableSample) {
	counter := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " counter\n")
	}
	gauge := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " gauge\n")
	}
	hist := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " histogram\n")
	}
	sample := func(name string, v float64) {
		b.WriteString(name + " " + strconv.FormatFloat(v, 'g', -1, 64) + "\n")
	}
	boolGauge := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}

	counter("latest_wal_appends_total", "Records appended to the feed WAL.")
	sample("latest_wal_appends_total", float64(d.WALAppends))
	counter("latest_wal_bytes_total", "Framed bytes written to the feed WAL.")
	sample("latest_wal_bytes_total", float64(d.WALBytes))
	counter("latest_wal_fsyncs_total", "Fsync batches issued on the feed WAL.")
	sample("latest_wal_fsyncs_total", float64(d.WALSyncs))
	counter("latest_wal_rotations_total", "WAL generation rollovers (one per committed snapshot).")
	sample("latest_wal_rotations_total", float64(d.WALRotations))
	hist("latest_wal_append_latency_seconds", "WAL append latency (framing and write, fsync excluded).")
	promHistogramOne(b, "latest_wal_append_latency_seconds", "", d.AppendLatency)
	hist("latest_wal_fsync_latency_seconds", "WAL fsync-batch latency.")
	promHistogramOne(b, "latest_wal_fsync_latency_seconds", "", d.SyncLatency)

	gauge("latest_durable_state", "Degraded-mode state machine position (0 healthy, 1 degraded).")
	sample("latest_durable_state", boolGauge(d.State == "degraded"))
	gauge("latest_durable_state_seconds", "Seconds in the current durability state.")
	sample("latest_durable_state_seconds", d.StateSeconds)
	counter("latest_durable_degradations_total", "Healthy-to-degraded transitions.")
	sample("latest_durable_degradations_total", float64(d.Degradations))
	counter("latest_durable_repair_attempts_total", "Snapshot-based repair attempts while degraded.")
	sample("latest_durable_repair_attempts_total", float64(d.RepairAttempts))
	counter("latest_durable_repairs_total", "Successful repairs (degraded back to healthy).")
	sample("latest_durable_repairs_total", float64(d.Repairs))
	counter("latest_durable_dropped_appends_total", "Feeds not WAL-logged while degraded (durable again after the repair snapshot).")
	sample("latest_durable_dropped_appends_total", float64(d.DroppedAppends))
	counter("latest_durable_wal_errors_total", "Failed WAL operations (append, fsync, close, recovery truncation).")
	sample("latest_durable_wal_errors_total", float64(d.WALErrors))
	counter("latest_durable_store_errors_total", "Failed store housekeeping operations.")
	sample("latest_durable_store_errors_total", float64(d.StoreErrors))
	counter("latest_durable_errors_total", "All persistence errors recorded.")
	sample("latest_durable_errors_total", float64(d.ErrorsTotal))

	counter("latest_snapshots_total", "Snapshots committed by this process.")
	sample("latest_snapshots_total", float64(d.Snapshots))
	counter("latest_snapshot_errors_total", "Snapshot attempts that failed (engine keeps serving).")
	sample("latest_snapshot_errors_total", float64(d.SnapshotErrors))
	gauge("latest_snapshot_generation", "Current snapshot generation.")
	sample("latest_snapshot_generation", float64(d.Generation))
	gauge("latest_snapshot_bytes", "Serialized size of the most recent committed snapshot.")
	sample("latest_snapshot_bytes", float64(d.LastSnapshotBytes))
	hist("latest_snapshot_duration_seconds", "Full snapshot commit latency (serialize, rename, WAL rotation).")
	promHistogramOne(b, "latest_snapshot_duration_seconds", "", d.SnapshotLatency)

	gauge("latest_recovery_seconds", "Startup restore plus WAL replay wall time.")
	sample("latest_recovery_seconds", d.RecoverySeconds)
	gauge("latest_recovery_wal_records", "WAL records replayed at startup.")
	sample("latest_recovery_wal_records", float64(d.RecoveryWALRecords))
	gauge("latest_recovery_truncated_bytes", "Torn-tail bytes truncated from the live WAL at startup.")
	sample("latest_recovery_truncated_bytes", float64(d.RecoveryTruncatedBytes))
	gauge("latest_recovery_from_snapshot", "1 when startup restored from a snapshot.")
	sample("latest_recovery_from_snapshot", boolGauge(d.RecoveredSnapshot))
	gauge("latest_recovery_generation", "Snapshot generation startup restored from.")
	sample("latest_recovery_generation", float64(d.RecoveredGeneration))
	gauge("latest_recovery_fallback", "1 when recovery fell back past a corrupt newest snapshot generation.")
	sample("latest_recovery_fallback", boolGauge(d.RecoveredFallback))
}
