package telemetry

import (
	"strconv"
	"strings"
)

// durable.go holds the durability layer's slice of a telemetry Snapshot:
// WAL append/fsync counters and latency distributions, snapshot
// duration/size/generation, and the startup recovery cost. The types live
// here (below latest.DurableEngine in the dependency order) so the
// exposition renderer can describe the layer without importing it —
// mirroring how serving.go describes internal/server.

// DurableSample is the durability layer's slice of a Snapshot.
type DurableSample struct {
	// Generation is the current snapshot generation (each snapshot commit
	// increments it and rotates the WAL).
	Generation uint64 `json:"generation"`

	// WALAppends counts records appended to the live WAL across all
	// generations; WALBytes the framed bytes written; WALSyncs the fsync
	// batches issued; WALRotations the generation rollovers.
	WALAppends   uint64 `json:"wal_appends"`
	WALBytes     uint64 `json:"wal_bytes"`
	WALSyncs     uint64 `json:"wal_syncs"`
	WALRotations uint64 `json:"wal_rotations"`

	// Snapshots counts committed snapshots this process took;
	// SnapshotErrors failed attempts (engine keeps serving, Err() latches).
	Snapshots      uint64 `json:"snapshots"`
	SnapshotErrors uint64 `json:"snapshot_errors"`
	// LastSnapshotBytes is the serialized size of the most recent committed
	// snapshot.
	LastSnapshotBytes uint64 `json:"last_snapshot_bytes"`

	// RecoverySeconds is the startup cost of restore + WAL replay (near
	// zero for a fresh directory); RecoveryWALRecords the records replayed;
	// RecoveryTruncatedBytes the torn tail discarded from the live WAL.
	RecoverySeconds        float64 `json:"recovery_seconds"`
	RecoveryWALRecords     uint64  `json:"recovery_wal_records"`
	RecoveryTruncatedBytes int64   `json:"recovery_truncated_bytes"`
	// RecoveredSnapshot is true when startup restored from a snapshot
	// (false: fresh start, WAL-only replay counts from generation 0).
	RecoveredSnapshot bool `json:"recovered_snapshot"`

	// AppendLatency is the WAL append call distribution (framing + write,
	// fsync excluded), SyncLatency the fsync-batch distribution, and
	// SnapshotLatency full snapshot commits (serialize + rename + WAL
	// rotation).
	AppendLatency   HistSnapshot `json:"append_latency"`
	SyncLatency     HistSnapshot `json:"sync_latency"`
	SnapshotLatency HistSnapshot `json:"snapshot_latency"`
}

// writeDurableProm renders the latest_wal_*, latest_snapshot_* and
// latest_recovery_* metric families.
func writeDurableProm(b *strings.Builder, d *DurableSample) {
	counter := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " counter\n")
	}
	gauge := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " gauge\n")
	}
	hist := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " histogram\n")
	}
	sample := func(name string, v float64) {
		b.WriteString(name + " " + strconv.FormatFloat(v, 'g', -1, 64) + "\n")
	}
	boolGauge := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}

	counter("latest_wal_appends_total", "Records appended to the feed WAL.")
	sample("latest_wal_appends_total", float64(d.WALAppends))
	counter("latest_wal_bytes_total", "Framed bytes written to the feed WAL.")
	sample("latest_wal_bytes_total", float64(d.WALBytes))
	counter("latest_wal_fsyncs_total", "Fsync batches issued on the feed WAL.")
	sample("latest_wal_fsyncs_total", float64(d.WALSyncs))
	counter("latest_wal_rotations_total", "WAL generation rollovers (one per committed snapshot).")
	sample("latest_wal_rotations_total", float64(d.WALRotations))
	hist("latest_wal_append_latency_seconds", "WAL append latency (framing and write, fsync excluded).")
	promHistogramOne(b, "latest_wal_append_latency_seconds", "", d.AppendLatency)
	hist("latest_wal_fsync_latency_seconds", "WAL fsync-batch latency.")
	promHistogramOne(b, "latest_wal_fsync_latency_seconds", "", d.SyncLatency)

	counter("latest_snapshots_total", "Snapshots committed by this process.")
	sample("latest_snapshots_total", float64(d.Snapshots))
	counter("latest_snapshot_errors_total", "Snapshot attempts that failed (engine keeps serving).")
	sample("latest_snapshot_errors_total", float64(d.SnapshotErrors))
	gauge("latest_snapshot_generation", "Current snapshot generation.")
	sample("latest_snapshot_generation", float64(d.Generation))
	gauge("latest_snapshot_bytes", "Serialized size of the most recent committed snapshot.")
	sample("latest_snapshot_bytes", float64(d.LastSnapshotBytes))
	hist("latest_snapshot_duration_seconds", "Full snapshot commit latency (serialize, rename, WAL rotation).")
	promHistogramOne(b, "latest_snapshot_duration_seconds", "", d.SnapshotLatency)

	gauge("latest_recovery_seconds", "Startup restore plus WAL replay wall time.")
	sample("latest_recovery_seconds", d.RecoverySeconds)
	gauge("latest_recovery_wal_records", "WAL records replayed at startup.")
	sample("latest_recovery_wal_records", float64(d.RecoveryWALRecords))
	gauge("latest_recovery_truncated_bytes", "Torn-tail bytes truncated from the live WAL at startup.")
	sample("latest_recovery_truncated_bytes", float64(d.RecoveryTruncatedBytes))
	gauge("latest_recovery_from_snapshot", "1 when startup restored from a snapshot.")
	sample("latest_recovery_from_snapshot", boolGauge(d.RecoveredSnapshot))
}
