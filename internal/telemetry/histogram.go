// Package telemetry is the observability layer of the reproduction: a
// lock-free log-bucketed latency histogram for the ingest and query hot
// paths, a fixed-size ring buffer tracing every estimator-switch decision,
// a minimal leveled structured logger, and a stdlib-only exposition server
// publishing Prometheus text format at /metrics, JSON snapshots at
// /statusz, and the expvar + pprof debug endpoints.
//
// The package sits below internal/metrics and internal/core in the
// dependency order and imports nothing but the standard library, so every
// layer — gauges, module, engines — can feed it. Everything touched on a
// hot path (Histogram.Record) is a handful of atomic adds: no locks, no
// allocation, safe under arbitrary writer concurrency.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the histogram resolution. Bucket i counts durations in
// [2^(i-1), 2^i) nanoseconds (bucket 0 holds sub-nanosecond readings, the
// last bucket is a catch-all), so 40 buckets span one nanosecond to about
// eighteen minutes — wider than any latency this system can produce.
const NumBuckets = 40

// Histogram is a lock-free log-bucketed latency histogram. Writers pay
// three atomic adds and one CAS-free max update attempt; there is no
// allocation and no lock on either the write or the snapshot path, so the
// ingest and query hot paths can record unconditionally.
//
// The zero value is ready to use.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Int64 // nanoseconds
	max   atomic.Int64 // nanoseconds, monotone under CAS
	bkt   [NumBuckets]atomic.Uint64
}

// bucketOf maps a duration to its bucket index: the bit length of the
// nanosecond count, clamped to the catch-all bucket.
func bucketOf(d time.Duration) int {
	n := uint64(d)
	if d < 0 {
		n = 0
	}
	i := bits.Len64(n)
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// BucketBound returns the exclusive upper bound of bucket i. The last
// bucket is unbounded (+Inf in the Prometheus exposition) and reports the
// largest representable duration here.
func BucketBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(uint64(1) << uint(i))
}

// Record folds one duration into the histogram. Lock-free and
// allocation-free; safe for any number of concurrent writers.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.bkt[bucketOf(d)].Add(1)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Snapshot reads the histogram. Fields are individually atomic but not
// mutually consistent under concurrent writes, which is fine for
// monitoring; a quiesced histogram snapshots exactly.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	for i := range h.bkt {
		s.Buckets[i] = h.bkt[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram. It is a plain
// comparable value (fixed-size bucket array) so snapshot structs that embed
// it stay comparable.
type HistSnapshot struct {
	// Count is the number of recorded samples.
	Count uint64
	// Sum is the total of all recorded durations.
	Sum time.Duration
	// Max is the largest recorded duration.
	Max time.Duration
	// Buckets holds per-bucket sample counts; bucket i spans
	// [2^(i-1), 2^i) ns.
	Buckets [NumBuckets]uint64
}

// Mean returns the average recorded duration (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns the q-quantile (q ∈ [0,1]) estimated by linear
// interpolation within the containing log bucket; 0 when empty. The result
// is exact to within the bucket's factor-of-two width.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := float64(0)
			if i > 0 {
				lo = float64(uint64(1) << uint(i-1))
			}
			hi := float64(BucketBound(i))
			if i == NumBuckets-1 {
				hi = math.Max(lo, float64(s.Max)) // catch-all: cap at observed max
			}
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / float64(n)
			}
			v := lo + frac*(hi-lo)
			if mx := float64(s.Max); mx > 0 && v > mx {
				v = mx
			}
			return time.Duration(v)
		}
		cum = next
	}
	return s.Max
}

// P50 returns the estimated median latency.
func (s HistSnapshot) P50() time.Duration { return s.Quantile(0.50) }

// P95 returns the estimated 95th-percentile latency.
func (s HistSnapshot) P95() time.Duration { return s.Quantile(0.95) }

// P99 returns the estimated 99th-percentile latency.
func (s HistSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// Merge folds another snapshot into s: counts and sums add, buckets add
// element-wise, max takes the larger. Merging per-shard snapshots yields
// the system-wide distribution exactly (log bucketing commutes with
// summation).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}
