package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	samples := []time.Duration{
		100 * time.Nanosecond, 200 * time.Nanosecond, 400 * time.Nanosecond,
		time.Microsecond, 10 * time.Microsecond, time.Millisecond,
	}
	var sum time.Duration
	for _, d := range samples {
		h.Record(d)
		sum += d
	}
	s := h.Snapshot()
	if s.Count != uint64(len(samples)) {
		t.Errorf("count = %d, want %d", s.Count, len(samples))
	}
	if s.Sum != sum {
		t.Errorf("sum = %v, want %v", s.Sum, sum)
	}
	if s.Max != time.Millisecond {
		t.Errorf("max = %v, want 1ms", s.Max)
	}
	if s.Mean() != sum/time.Duration(len(samples)) {
		t.Errorf("mean = %v", s.Mean())
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Errorf("bucket total = %d, count = %d", total, s.Count)
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	var h Histogram
	h.Record(5 * time.Nanosecond) // bits.Len64(5) = 3 → bucket 3, bound 8ns
	s := h.Snapshot()
	if s.Buckets[3] != 1 {
		t.Errorf("5ns landed in %v, want bucket 3", s.Buckets)
	}
	if BucketBound(3) != 8*time.Nanosecond {
		t.Errorf("BucketBound(3) = %v, want 8ns", BucketBound(3))
	}
	// Bounds must be strictly increasing up to the catch-all.
	for i := 1; i < NumBuckets-1; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Fatalf("bucket bounds not increasing at %d", i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 99 samples at ~1µs, 1 sample at ~1ms: p50 must sit near 1µs and p99+
	// must reach toward the outlier's bucket.
	for i := 0; i < 99; i++ {
		h.Record(time.Microsecond)
	}
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if p50 := s.P50(); p50 < 512*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs", p50)
	}
	if p99 := s.P99(); p99 > time.Millisecond || p99 < 512*time.Nanosecond {
		t.Errorf("p99 = %v out of range", p99)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Errorf("q1 = %v, want max %v", q, s.Max)
	}
	var empty HistSnapshot
	if empty.P95() != 0 || empty.Mean() != 0 {
		t.Errorf("empty snapshot percentiles nonzero")
	}
}

func TestHistogramNegativeAndHuge(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)           // clamps to 0
	h.Record(30 * 24 * time.Hour)    // beyond the last bound: catch-all
	s := h.Snapshot()
	if s.Buckets[0] != 1 {
		t.Errorf("negative sample not clamped to bucket 0: %v", s.Buckets)
	}
	if s.Buckets[NumBuckets-1] != 1 {
		t.Errorf("huge sample not in catch-all: %v", s.Buckets)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Record(time.Microsecond)
		b.Record(time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != 20 {
		t.Errorf("merged count = %d", merged.Count)
	}
	if merged.Sum != sa.Sum+sb.Sum {
		t.Errorf("merged sum = %v", merged.Sum)
	}
	if merged.Max != sb.Max {
		t.Errorf("merged max = %v", merged.Max)
	}
	for i := range merged.Buckets {
		if merged.Buckets[i] != sa.Buckets[i]+sb.Buckets[i] {
			t.Fatalf("bucket %d not summed", i)
		}
	}
}

// TestHistogramConcurrent hammers Record from many goroutines while a
// reader snapshots continuously. Counts are exact because every update is
// atomic. Run with -race.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, each = 8, 5000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.Count > workers*each {
					t.Error("count overshoot")
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Record(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Errorf("count = %d, want %d", s.Count, workers*each)
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Errorf("bucket total = %d, count = %d", total, s.Count)
	}
}

// BenchmarkHistogramRecord proves the hot-path claim: no allocation, a few
// atomic adds.
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Nanosecond)
	}
}
