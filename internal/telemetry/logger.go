package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int32

// Severities, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// Logger is a minimal leveled structured logger emitting logfmt-style
// lines: `ts=<RFC3339> level=info component=shard-3 msg="switch" from=RSH
// to=H4096`. It exists so the shard prefill workers and the switch path
// have a voice without dragging a logging dependency into the module; a
// nil *Logger is valid and drops everything, so call sites never nil-check.
//
// Logging happens only on cold paths (switches, prefills, server
// lifecycle); the per-line fmt allocation is irrelevant there.
type Logger struct {
	mu        sync.Mutex
	w         io.Writer
	min       Level
	component string
}

// NewLogger builds a logger writing lines at or above min to w. A nil
// writer yields a nil logger (drop everything).
func NewLogger(w io.Writer, min Level) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w, min: min}
}

// Named returns a logger stamping every line with component=name. The
// child shares the parent's writer and level.
func (l *Logger) Named(name string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{w: l.w, min: l.min, component: name}
}

// Enabled reports whether lines at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

// Debug logs at LevelDebug. kv are alternating key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.Grow(64 + 16*len(kv))
	b.WriteString("ts=")
	b.WriteString(time.Now().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	if l.component != "" {
		b.WriteString(" component=")
		b.WriteString(l.component)
	}
	b.WriteString(" msg=")
	writeValue(&b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[i])
		b.WriteByte('=')
		writeValue(&b, fmt.Sprintf("%v", kv[i+1]))
	}
	if len(kv)%2 == 1 {
		b.WriteString(" !odd-kv=")
		writeValue(&b, fmt.Sprintf("%v", kv[len(kv)-1]))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// writeValue quotes values containing spaces, quotes or equals signs.
func writeValue(b *strings.Builder, s string) {
	if strings.ContainsAny(s, " \"=\n") {
		fmt.Fprintf(b, "%q", s)
		return
	}
	b.WriteString(s)
}
