package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestLoggerLevelsAndFormat(t *testing.T) {
	var buf strings.Builder
	mu := &sync.Mutex{}
	w := lockedWriter{mu: mu, b: &buf}
	l := NewLogger(w, LevelInfo).Named("shard-3")
	l.Debug("dropped", "k", 1)
	l.Info("estimator switch", "from", "RSH", "to", "H4096", "conf", 0.75)
	l.Warn("inline fallback", "reason", "worker backlog")
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if strings.Contains(out, "dropped") {
		t.Errorf("debug line emitted below min level: %q", out)
	}
	for _, want := range []string{
		"level=info", "component=shard-3", `msg="estimator switch"`,
		"from=RSH", "to=H4096", "conf=0.75",
		"level=warn", `reason="worker backlog"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Errorf("want 2 lines, got %d", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") {
			t.Errorf("line missing timestamp: %q", line)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", "k", "v") // must not panic
	l.Named("x").Error("still fine")
	if l.Enabled(LevelError) {
		t.Errorf("nil logger claims enabled")
	}
	if NewLogger(nil, LevelDebug) != nil {
		t.Errorf("nil writer should yield nil logger")
	}
}

func TestLoggerOddKV(t *testing.T) {
	var buf strings.Builder
	mu := &sync.Mutex{}
	l := NewLogger(lockedWriter{mu: mu, b: &buf}, LevelDebug)
	l.Debug("odd", "only-key")
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(buf.String(), "!odd-kv=only-key") {
		t.Errorf("odd kv not flagged: %q", buf.String())
	}
}
