package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden exposition file from current output")

// TestWritePromGolden pins WriteProm's output byte for byte. The renderer is
// a pure function of its Snapshot (runtime families are appended separately
// by the HTTP handler), so any diff here is a deliberate exposition change —
// rerun with -update and review the golden diff in the same commit.
func TestWritePromGolden(t *testing.T) {
	var b strings.Builder
	WriteProm(&b, fullSnapshot())
	got := b.String()

	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run `go test -run Golden -update ./internal/telemetry` to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition differs from golden:\n%s\n(run with -update to accept)", firstDiff(string(want), got))
	}

	// The pinned bytes must themselves be a valid exposition — a golden
	// file can otherwise freeze a spec violation in place.
	if errs := LintProm(strings.NewReader(got)); len(errs) != 0 {
		for _, e := range errs {
			t.Errorf("golden output fails lint: %v", e)
		}
	}
}

// firstDiff renders the first differing line of two multi-line strings.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return "line " + itoa(i+1) + ":\n  golden: " + w + "\n  got:    " + g
		}
	}
	return "lengths differ only"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
