package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promlint.go is a self-contained validator for the Prometheus text
// exposition format (version 0.0.4) — the contract every scraper depends
// on. It exists so a new metric family cannot silently break scrapes: the
// golden exposition test runs it over WriteProm's output, and the CI
// metrics-lint step runs it over a live /metrics scrape from a running
// latestd. It checks the subset of the spec this exporter can violate:
// line grammar, metric/label name charsets, HELP/TYPE placement, label
// escaping, float-parseable values, and histogram structure (le on every
// bucket, cumulative monotone counts, +Inf bucket equal to _count).

// LintError is one exposition violation with its line number.
type LintError struct {
	Line int
	Msg  string
}

func (e LintError) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// LintProm validates a text exposition read from r, returning every
// violation found (nil when clean).
func LintProm(r io.Reader) []LintError {
	l := promLinter{
		types:   map[string]string{},
		helped:  map[string]bool{},
		sampled: map[string]bool{},
		hists:   map[string]*histCheck{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		l.line(n, sc.Text())
	}
	if err := sc.Err(); err != nil {
		l.errs = append(l.errs, LintError{n, "read: " + err.Error()})
	}
	l.finish(n)
	return l.errs
}

type histCheck struct {
	// per label-set (labels minus le): last cumulative count and le bound,
	// the +Inf count, and the _count value once seen.
	series map[string]*histSeries
}

type histSeries struct {
	lastLE   float64
	lastCum  uint64
	infCount uint64
	hasInf   bool
	count    uint64
	hasCount bool
	line     int
}

type promLinter struct {
	errs    []LintError
	types   map[string]string // family -> type
	helped  map[string]bool
	sampled map[string]bool // family has emitted samples
	hists   map[string]*histCheck
}

func (l *promLinter) errf(line int, format string, args ...any) {
	l.errs = append(l.errs, LintError{line, fmt.Sprintf(format, args...)})
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// family maps a sample name to its declared family: histogram samples
// attach to the family without the _bucket/_sum/_count suffix when that
// family was declared a histogram.
func (l *promLinter) family(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if l.types[base] == "histogram" || l.types[base] == "summary" {
				return base
			}
		}
	}
	return name
}

func (l *promLinter) line(n int, s string) {
	if strings.TrimSpace(s) == "" {
		return
	}
	if strings.HasPrefix(s, "# HELP ") {
		rest := s[len("# HELP "):]
		name, _, ok := strings.Cut(rest, " ")
		if !ok || name == "" {
			l.errf(n, "HELP without name and text: %q", s)
			return
		}
		if !validMetricName(name) {
			l.errf(n, "HELP for invalid metric name %q", name)
		}
		if l.helped[name] {
			l.errf(n, "duplicate HELP for %q", name)
		}
		if l.sampled[name] {
			l.errf(n, "HELP for %q after its samples", name)
		}
		l.helped[name] = true
		return
	}
	if strings.HasPrefix(s, "# TYPE ") {
		rest := s[len("# TYPE "):]
		name, typ, ok := strings.Cut(rest, " ")
		if !ok || !validMetricName(name) {
			l.errf(n, "malformed TYPE line: %q", s)
			return
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(n, "unknown type %q for %q", typ, name)
		}
		if _, dup := l.types[name]; dup {
			l.errf(n, "duplicate TYPE for %q", name)
		}
		if l.sampled[name] {
			l.errf(n, "TYPE for %q after its samples", name)
		}
		l.types[name] = typ
		return
	}
	if strings.HasPrefix(s, "#") {
		// Free-form comment: legal, ignored.
		return
	}
	l.sample(n, s)
}

func (l *promLinter) sample(n int, s string) {
	// name[{labels}] value [timestamp]
	var name, labels, rest string
	if i := strings.IndexByte(s, '{'); i >= 0 {
		name = s[:i]
		j := strings.LastIndexByte(s, '}')
		if j < i {
			l.errf(n, "unterminated label block: %q", s)
			return
		}
		labels = s[i+1 : j]
		rest = strings.TrimSpace(s[j+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(s, " ")
		if !ok {
			l.errf(n, "sample without value: %q", s)
			return
		}
	}
	if !validMetricName(name) {
		l.errf(n, "invalid metric name %q", name)
		return
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		l.errf(n, "expected value [timestamp] after %q, got %q", name, rest)
		return
	}
	val, err := parsePromValue(fields[0])
	if err != nil {
		l.errf(n, "%s: unparseable value %q", name, fields[0])
		return
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			l.errf(n, "%s: unparseable timestamp %q", name, fields[1])
		}
	}
	labelMap, perr := parseLabels(labels)
	if perr != "" {
		l.errf(n, "%s: %s", name, perr)
		return
	}

	fam := l.family(name)
	l.sampled[fam] = true
	if _, ok := l.types[fam]; !ok {
		l.errf(n, "sample %q before any TYPE for family %q", name, fam)
	}

	if l.types[fam] == "histogram" {
		l.histSample(n, fam, name, labelMap, val)
	}
}

// parsePromValue accepts Prometheus float syntax including +Inf/-Inf/NaN.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf", "-Inf", "NaN":
		// strconv accepts these too, but be explicit about the spec forms.
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k="v",k2="v2"`, validating names and escape
// sequences; returns a description of the first violation.
func parseLabels(s string) (map[string]string, string) {
	out := map[string]string{}
	if s == "" {
		return out, ""
	}
	i := 0
	for i < len(s) {
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return nil, fmt.Sprintf("label pair without '=': %q", s[i:])
		}
		name := s[i : i+j]
		if !validLabelName(name) {
			return nil, fmt.Sprintf("invalid label name %q", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Sprintf("duplicate label %q", name)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Sprintf("label %q value not quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Sprintf("label %q: dangling escape", name)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
					val.WriteByte(s[i+1])
				default:
					return nil, fmt.Sprintf("label %q: invalid escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Sprintf("label %q: unterminated value", name)
		}
		out[name] = val.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Sprintf("expected ',' between labels, got %q", s[i:])
			}
			i++
		}
	}
	return out, ""
}

// histSample folds one histogram-family sample into the structural check.
func (l *promLinter) histSample(n int, fam, name string, labels map[string]string, val float64) {
	hc := l.hists[fam]
	if hc == nil {
		hc = &histCheck{series: map[string]*histSeries{}}
		l.hists[fam] = hc
	}
	// Series key: labels minus le, order-normalized.
	var parts []string
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	sortStrings(parts)
	key := strings.Join(parts, ",")
	hs := hc.series[key]
	if hs == nil {
		hs = &histSeries{lastLE: -1, line: n}
		hc.series[key] = hs
	}

	switch {
	case strings.HasSuffix(name, "_bucket"):
		le, ok := labels["le"]
		if !ok {
			l.errf(n, "%s_bucket without le label", fam)
			return
		}
		if le == "+Inf" {
			hs.hasInf = true
			hs.infCount = uint64(val)
			return
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			l.errf(n, "%s_bucket: unparseable le %q", fam, le)
			return
		}
		if bound <= hs.lastLE {
			l.errf(n, "%s_bucket: le %q not increasing", fam, le)
		}
		if uint64(val) < hs.lastCum {
			l.errf(n, "%s_bucket{le=%q}: cumulative count decreased", fam, le)
		}
		hs.lastLE = bound
		hs.lastCum = uint64(val)
	case strings.HasSuffix(name, "_count"):
		hs.count = uint64(val)
		hs.hasCount = true
	}
}

// finish runs the end-of-stream histogram checks.
func (l *promLinter) finish(lastLine int) {
	for fam, hc := range l.hists {
		for key, hs := range hc.series {
			at := hs.line
			where := fam
			if key != "" {
				where += "{" + key + "}"
			}
			if !hs.hasInf {
				l.errf(at, "%s: histogram series missing le=\"+Inf\" bucket", where)
				continue
			}
			if !hs.hasCount {
				l.errf(at, "%s: histogram series missing _count", where)
				continue
			}
			if hs.infCount != hs.count {
				l.errf(at, "%s: +Inf bucket %d != _count %d", where, hs.infCount, hs.count)
			}
			if hs.lastCum > hs.infCount {
				l.errf(at, "%s: finite bucket count %d exceeds +Inf %d", where, hs.lastCum, hs.infCount)
			}
		}
	}
	_ = lastLine
}
