package telemetry

import (
	"strings"
	"testing"
	"time"
)

// fullSnapshot extends the engine-only test fixture with the serving,
// durability and drift slices so every WriteProm family is exercised.
func fullSnapshot() Snapshot {
	var h Histogram
	for i := 0; i < 64; i++ {
		h.Record(time.Duration(i) * 10 * time.Microsecond)
	}
	hs := h.Snapshot()

	snap := testSnapshot()
	snap.Drift = []DriftSample{
		{Estimator: "RSH", Reference: 1.2, Current: 1.5, Ratio: 1.25, Threshold: 2, Samples: 256},
		{Estimator: "H4096", Reference: 1.1, Current: 2.9, Ratio: 2.64, Threshold: 2, Samples: 256, Drifted: true},
	}
	snap.Server = &ServerSample{
		Addr:           "127.0.0.1:7070",
		ConnsActive:    2,
		ConnsAccepted:  9,
		ConnsRejected:  1,
		BytesIn:        4096,
		BytesOut:       8192,
		FramesIn:       120,
		FramesOut:      118,
		InFlight:       1,
		FeedObjects:    900,
		CoalescedFeeds: 7,
		Ops: []ServerOp{
			{Op: "feed", Requests: 80, Latency: hs},
			{Op: "estimate", Requests: 30, Latency: hs},
		},
		Errors:        ServerErrors{Backpressure: 3, Deadline: 1, NotOwner: 2},
		ConnDuration:  hs,
		TracesSeen:    40,
		TracesSampled: 5,
	}
	snap.Cluster = &ClusterSample{
		Epoch:         4,
		Nodes:         3,
		Cols:          8,
		Rows:          4,
		FeedObjects:   1200,
		FeedBatches:   40,
		Estimates:     25,
		Queries:       10,
		ForwardSingle: 20,
		ScatterMulti:  12,
		Broadcasts:    3,
		Subqueries:    55,
		NotOwner:      2,
		MapRefetches:  1,
		Retries:       1,
		NodeErrors:    1,
		PerNode: []ClusterNode{
			{Addr: "127.0.0.1:7101", Requests: 60, Errors: 1, Latency: hs},
			{Addr: "127.0.0.1:7102", Requests: 58, Latency: hs},
		},
	}
	snap.Durable = &DurableSample{
		Generation:          3,
		State:               "degraded",
		StateSeconds:        4.5,
		WALAppends:          500,
		WALBytes:            123456,
		WALSyncs:            50,
		WALRotations:        3,
		WALErrors:           2,
		StoreErrors:         1,
		DroppedAppends:      17,
		Degradations:        2,
		RepairAttempts:      3,
		Repairs:             1,
		ErrorsTotal:         4,
		LastErrors:          []DurableError{{UnixNanos: 1700000000000000000, Op: "wal-append", Err: "injected fault"}},
		Snapshots:           3,
		SnapshotErrors:      1,
		LastSnapshotBytes:   6789,
		RecoverySeconds:     0.125,
		RecoveryWALRecords:  42,
		RecoveredSnapshot:   true,
		RecoveredGeneration: 2,
		RecoveredFallback:   true,
		AppendLatency:       hs,
		SyncLatency:         hs,
		SnapshotLatency:     hs,
	}
	return snap
}

// TestLintPromAcceptsWriteProm is the contract between the exporter and the
// linter: everything WriteProm can render must lint clean.
func TestLintPromAcceptsWriteProm(t *testing.T) {
	var b strings.Builder
	WriteProm(&b, fullSnapshot())
	WriteGoRuntimeProm(&b, ReadGoRuntime())
	if errs := LintProm(strings.NewReader(b.String())); len(errs) != 0 {
		for _, e := range errs {
			t.Errorf("lint: %v", e)
		}
	}
}

// TestLintPromAcceptsSpecForms covers legal exposition the exporter happens
// not to emit: timestamps, escapes, free comments, special float values.
func TestLintPromAcceptsSpecForms(t *testing.T) {
	const src = `# a free-form comment
# HELP good_metric Described metric.
# TYPE good_metric gauge
good_metric{path="C:\\temp\\x",msg="say \"hi\"\n"} NaN 1699999999999
good_metric{path="other"} -Inf
# TYPE untyped_ok untyped
untyped_ok 3.14e-2
`
	if errs := LintProm(strings.NewReader(src)); len(errs) != 0 {
		for _, e := range errs {
			t.Errorf("lint: %v", e)
		}
	}
}

// TestLintPromCatchesViolations proves each checked class of breakage is
// actually caught — the linter guards CI, so a silent pass would render the
// metrics-lint step decorative.
func TestLintPromCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of at least one reported violation
	}{
		{
			"sample before TYPE",
			"orphan_metric 1\n",
			"before any TYPE",
		},
		{
			"invalid metric name",
			"# TYPE 0bad gauge\n",
			"malformed TYPE",
		},
		{
			"unknown type keyword",
			"# TYPE m histo\n",
			"unknown type",
		},
		{
			"TYPE after samples",
			"# TYPE m gauge\nm 1\n# TYPE m gauge\n",
			"after its samples",
		},
		{
			"duplicate HELP",
			"# HELP m one\n# HELP m two\n# TYPE m gauge\nm 1\n",
			"duplicate HELP",
		},
		{
			"unparseable value",
			"# TYPE m gauge\nm abc\n",
			"unparseable value",
		},
		{
			"bad label escape",
			"# TYPE m gauge\nm{l=\"a\\t\"} 1\n",
			"invalid escape",
		},
		{
			"unquoted label value",
			"# TYPE m gauge\nm{l=5} 1\n",
			"not quoted",
		},
		{
			"reserved label name",
			"# TYPE m gauge\nm{__name__=\"x\"} 1\n",
			"invalid label name",
		},
		{
			"duplicate label",
			"# TYPE m gauge\nm{a=\"1\",a=\"2\"} 1\n",
			"duplicate label",
		},
		{
			"unterminated label block",
			"# TYPE m gauge\nm{a=\"1\" 1\n",
			"unterminated",
		},
		{
			"bucket without le",
			"# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
			"without le",
		},
		{
			"missing +Inf bucket",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"missing le=\"+Inf\"",
		},
		{
			"non-monotone cumulative counts",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
				"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"cumulative count decreased",
		},
		{
			"non-increasing le bounds",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n" +
				"h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"not increasing",
		},
		{
			"+Inf bucket disagrees with _count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
			"!= _count",
		},
		{
			"histogram missing _count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\n",
			"missing _count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := LintProm(strings.NewReader(tc.src))
			if len(errs) == 0 {
				t.Fatalf("lint accepted broken input:\n%s", tc.src)
			}
			for _, e := range errs {
				if strings.Contains(e.Msg, tc.want) {
					return
				}
			}
			t.Fatalf("no violation mentions %q; got %v", tc.want, errs)
		})
	}
}

// TestLintErrorString pins the operator-facing error rendering.
func TestLintErrorString(t *testing.T) {
	e := LintError{Line: 7, Msg: "boom"}
	if e.Error() != "line 7: boom" {
		t.Fatalf("Error() = %q", e.Error())
	}
}
