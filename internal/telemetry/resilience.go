package telemetry

// EstimatorHealth is one fleet member's fault-isolation status as exposed
// by /statusz and /metrics. The resilience layer produces it (via core);
// this package only carries and renders it, keeping telemetry free of a
// resilience dependency.
type EstimatorHealth struct {
	Estimator    string `json:"estimator"`
	State        string `json:"state"` // closed | open | half-open
	Panics       uint64 `json:"panics,omitempty"`
	ValueFaults  uint64 `json:"value_faults,omitempty"`
	Deadlines    uint64 `json:"deadlines,omitempty"`
	Quarantines  uint64 `json:"quarantines,omitempty"`
	Readmissions uint64 `json:"readmissions,omitempty"`
	Sanitized    uint64 `json:"sanitized,omitempty"`
}

// Faults is the lifetime fault total across kinds.
func (h EstimatorHealth) Faults() uint64 { return h.Panics + h.ValueFaults + h.Deadlines }

// ResilienceStats aggregates the fault-isolation layer's counters for one
// module (or, after merging, one whole sharded engine).
type ResilienceStats struct {
	// Estimators holds per-estimator breaker/guard health in fleet order.
	Estimators []EstimatorHealth `json:"estimators,omitempty"`
	// FallbackRunnerUp counts queries answered by the warming runner-up
	// because the active estimator faulted.
	FallbackRunnerUp uint64 `json:"fallback_runner_up,omitempty"`
	// FallbackOracle counts queries answered exactly from the window store.
	FallbackOracle uint64 `json:"fallback_oracle,omitempty"`
	// FallbackZero counts queries where no fallback was available and zero
	// was served (still finite, never NaN).
	FallbackZero uint64 `json:"fallback_zero,omitempty"`
}

// Faults sums lifetime faults across the fleet.
func (r ResilienceStats) Faults() uint64 {
	var n uint64
	for _, h := range r.Estimators {
		n += h.Faults()
	}
	return n
}

// Quarantined counts estimators currently not closed (open or half-open).
func (r ResilienceStats) Quarantined() int {
	n := 0
	for _, h := range r.Estimators {
		if h.State != "closed" && h.State != "" {
			n++
		}
	}
	return n
}

// Fallbacks sums the fallback counters across modes.
func (r ResilienceStats) Fallbacks() uint64 {
	return r.FallbackRunnerUp + r.FallbackOracle + r.FallbackZero
}

// stateRank orders breaker states by severity for cross-shard merging.
func stateRank(s string) int {
	switch s {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}

// MergeResilience folds per-shard resilience stats into one fleet view:
// counters sum; a merged estimator's state is the worst across shards, so a
// single quarantined shard surfaces on the engine-level status page.
func MergeResilience(parts []ResilienceStats) ResilienceStats {
	var out ResilienceStats
	index := map[string]int{}
	for _, p := range parts {
		out.FallbackRunnerUp += p.FallbackRunnerUp
		out.FallbackOracle += p.FallbackOracle
		out.FallbackZero += p.FallbackZero
		for _, h := range p.Estimators {
			i, seen := index[h.Estimator]
			if !seen {
				index[h.Estimator] = len(out.Estimators)
				out.Estimators = append(out.Estimators, h)
				continue
			}
			m := &out.Estimators[i]
			m.Panics += h.Panics
			m.ValueFaults += h.ValueFaults
			m.Deadlines += h.Deadlines
			m.Quarantines += h.Quarantines
			m.Readmissions += h.Readmissions
			m.Sanitized += h.Sanitized
			if stateRank(h.State) > stateRank(m.State) {
				m.State = h.State
			}
		}
	}
	return out
}
