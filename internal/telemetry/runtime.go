package telemetry

import (
	"io"
	"runtime/metrics"
	"strconv"
	"strings"
)

// runtime.go exports Go runtime health — goroutine count, live heap bytes,
// GC cycle count and GC pause quantiles — via the runtime/metrics API, so
// serving-path tail latency can be correlated with GC activity from the
// same /metrics scrape. The collection is read live per scrape by
// handleMetrics and deliberately kept OUT of WriteProm: the snapshot
// renderer stays a pure function of its Snapshot argument (golden-testable
// byte for byte), while runtime state is inherently nondeterministic.

// runtime/metrics names probed at init. The GC pause histogram moved from
// /gc/pauses:seconds to /sched/pauses/total/gc:seconds in Go 1.22; both are
// tried so the collector degrades gracefully across toolchains.
var (
	goroutinesMetric = "/sched/goroutines:goroutines"
	heapMetric       = "/memory/classes/heap/objects:bytes"
	gcCyclesMetric   = "/gc/cycles/total:gc-cycles"
	gcPauseMetrics   = []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}
)

// GoRuntimeSample is one reading of the process's runtime health.
type GoRuntimeSample struct {
	// Goroutines is the live goroutine count.
	Goroutines uint64 `json:"goroutines"`
	// HeapBytes is the bytes of live heap objects.
	HeapBytes uint64 `json:"heap_bytes"`
	// GCCycles counts completed GC cycles.
	GCCycles uint64 `json:"gc_cycles"`
	// GCPauseP50/P95/P99 are stop-the-world pause quantiles in seconds over
	// the process lifetime (0 when the toolchain exposes no pause
	// histogram or no GC has run).
	GCPauseP50 float64 `json:"gc_pause_p50"`
	GCPauseP95 float64 `json:"gc_pause_p95"`
	GCPauseP99 float64 `json:"gc_pause_p99"`
}

// ReadGoRuntime samples the runtime. Cheap enough for per-scrape use.
func ReadGoRuntime() GoRuntimeSample {
	names := []string{goroutinesMetric, heapMetric, gcCyclesMetric}
	names = append(names, gcPauseMetrics...)
	samples := make([]metrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	metrics.Read(samples)

	var out GoRuntimeSample
	u64 := func(s metrics.Sample) uint64 {
		if s.Value.Kind() == metrics.KindUint64 {
			return s.Value.Uint64()
		}
		return 0
	}
	out.Goroutines = u64(samples[0])
	out.HeapBytes = u64(samples[1])
	out.GCCycles = u64(samples[2])
	for _, s := range samples[3:] {
		if s.Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		h := s.Value.Float64Histogram()
		out.GCPauseP50 = histQuantile(h, 0.50)
		out.GCPauseP95 = histQuantile(h, 0.95)
		out.GCPauseP99 = histQuantile(h, 0.99)
		break
	}
	return out
}

// histQuantile estimates the q-quantile of a runtime/metrics histogram by
// linear interpolation within the containing bucket; 0 when empty.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		next := cum + float64(c)
		if c > 0 && rank <= next {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			// The first/last runtime buckets can be infinite; collapse to
			// the finite edge.
			if lo < 0 || lo != lo || lo < h.Buckets[0] {
				lo = 0
			}
			if hi > 1e9 || hi != hi { // +Inf catch-all
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.Buckets[len(h.Buckets)-1]
}

// WriteGoRuntimeProm renders the sample as latest_go_* metric families.
// handleMetrics appends this after the Snapshot families.
func WriteGoRuntimeProm(w io.Writer, s GoRuntimeSample) {
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " gauge\n")
		b.WriteString(name + " " + strconv.FormatFloat(v, 'g', -1, 64) + "\n")
	}
	counter := func(name, help string, v float64) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " counter\n")
		b.WriteString(name + " " + strconv.FormatFloat(v, 'g', -1, 64) + "\n")
	}
	gauge("latest_go_goroutines", "Live goroutine count.", float64(s.Goroutines))
	gauge("latest_go_heap_bytes", "Bytes of live heap objects.", float64(s.HeapBytes))
	counter("latest_go_gc_cycles_total", "Completed GC cycles.", float64(s.GCCycles))
	b.WriteString("# HELP latest_go_gc_pause_seconds Stop-the-world GC pause quantiles over the process lifetime.\n" +
		"# TYPE latest_go_gc_pause_seconds gauge\n")
	quant := func(q string, v float64) {
		b.WriteString(`latest_go_gc_pause_seconds{quantile="` + q + `"} ` +
			strconv.FormatFloat(v, 'g', -1, 64) + "\n")
	}
	quant("0.5", s.GCPauseP50)
	quant("0.95", s.GCPauseP95)
	quant("0.99", s.GCPauseP99)
	w.Write([]byte(b.String()))
}
