package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ShardSample is one shard's slice of a telemetry Snapshot — the
// operational counters plus the latency histograms for each instrumented
// path. A monolithic System reports itself as a single shard 0.
type ShardSample struct {
	Index  int    `json:"index"`
	Active string `json:"active"`
	Phase  string `json:"phase"`

	Feeds          uint64 `json:"feeds"`
	Batches        uint64 `json:"batches"`
	Queries        uint64 `json:"queries"`
	Reordered      uint64 `json:"reordered"`
	PrefillsAsync  uint64 `json:"prefills_async"`
	PrefillsInline uint64 `json:"prefills_inline"`
	Occupancy      int    `json:"occupancy"`
	Switches       int    `json:"switches"`

	// ValidationRejected counts inputs the validation policy refused,
	// ValidationClamped inputs it repaired in place, and PrefillQueueFull
	// deferred pre-fills that hit a full queue (backpressure events).
	ValidationRejected uint64 `json:"validation_rejected,omitempty"`
	ValidationClamped  uint64 `json:"validation_clamped,omitempty"`
	PrefillQueueFull   uint64 `json:"prefill_queue_full,omitempty"`

	// IngestRatePerSec is the shard's trailing mean feed rate (objects per
	// second over the last ten completed seconds); IngestBacklog the routed
	// chunks queued to the shard's feed worker but not yet applied; and
	// IngestBackpressure the feed hand-offs that found the queue full and
	// blocked.
	IngestRatePerSec   float64 `json:"ingest_rate_per_sec"`
	IngestBacklog      int     `json:"ingest_backlog,omitempty"`
	IngestBackpressure uint64  `json:"ingest_backpressure,omitempty"`

	// Resilience is the shard's fault-isolation health: per-estimator
	// breaker states and fault counters plus fallback-answer counts.
	Resilience ResilienceStats `json:"resilience,omitempty"`

	AccuracyAvg float64 `json:"accuracy_avg"`
	MemoryBytes int     `json:"memory_bytes"`

	// Feed holds sampled single-object ingest latencies, Batch per-batch
	// ingest latencies, Query full estimate+execute+observe cycles, and
	// Estimate the active estimator's approximate-answer latencies alone.
	Feed     HistSnapshot `json:"feed_latency"`
	Batch    HistSnapshot `json:"batch_latency"`
	Query    HistSnapshot `json:"query_latency"`
	Estimate HistSnapshot `json:"estimate_latency"`
}

// Snapshot is the full telemetry state an exposition server publishes:
// per-shard samples, the merged view, the recent switch-decision trace and
// the per-estimator rolling q-error.
type Snapshot struct {
	// Engine names the deployment shape ("system", "concurrent",
	// "sharded").
	Engine string `json:"engine"`
	// Phase and Active describe the merged module view.
	Phase       string  `json:"phase"`
	Active      string  `json:"active"`
	Switches    int     `json:"switches"`
	AccuracyAvg float64 `json:"accuracy_avg"`
	MemoryBytes int     `json:"memory_bytes"`
	WindowSize  int     `json:"window_size"`

	Shards    []ShardSample  `json:"shards"`
	Decisions []Decision     `json:"decisions"`
	QError    []QErrorSample `json:"qerror"`

	// Drift is the accuracy-drift watchdog's per-estimator reading
	// (current-window vs reference-window mean q-error), merged across
	// shards.
	Drift []DriftSample `json:"drift,omitempty"`

	// Resilience is the engine-level fault-isolation view: per-shard stats
	// merged (counters summed, estimator state = worst across shards).
	Resilience ResilienceStats `json:"resilience,omitempty"`

	// Server is the serving layer's slice of the snapshot when this
	// process fronts the engine with latestd's wire protocol; nil for
	// in-process deployments.
	Server *ServerSample `json:"server,omitempty"`

	// Durable is the durability layer's slice of the snapshot when the
	// engine is wrapped in a DurableEngine; nil otherwise.
	Durable *DurableSample `json:"durable,omitempty"`

	// Cluster is the routing layer's slice of the snapshot when this
	// process routes to a multi-node cluster (client.Cluster or
	// cmd/latest-router); nil otherwise.
	Cluster *ClusterSample `json:"cluster,omitempty"`
}

// Server publishes telemetry over HTTP using only the standard library:
//
//	/metrics      Prometheus text exposition (gauges, counters, histograms)
//	/statusz      the full Snapshot as JSON (histogram percentiles computed,
//	              last-N switch decisions, per-shard gauges)
//	/debug/vars   expvar
//	/debug/pprof  runtime profiling
type Server struct {
	ln        net.Listener
	srv       *http.Server
	src       func() Snapshot
	log       *Logger
	closeOnce sync.Once
	done      chan struct{}
}

// expvar publication: one process-wide "latest" Func variable pointing at
// the most recently started server's source (expvar.Publish panics on
// duplicate names, so registration happens once and the source is swapped
// atomically).
var (
	expvarOnce sync.Once
	expvarSrc  atomic.Value // of func() Snapshot
)

func publishExpvar(src func() Snapshot) {
	expvarSrc.Store(src)
	expvarOnce.Do(func() {
		expvar.Publish("latest", expvar.Func(func() any {
			if f, ok := expvarSrc.Load().(func() Snapshot); ok && f != nil {
				return f()
			}
			return nil
		}))
	})
}

// Route is an extra handler mounted on the exposition mux — the hook the
// serving layer uses to add its admin endpoints (/healthz, /drain) to the
// same listener that publishes /metrics.
type Route struct {
	Pattern string
	Handler http.Handler
}

// Serve starts a telemetry server on addr (e.g. "127.0.0.1:9090"; use port
// 0 to let the kernel pick) reading state through src on every scrape. The
// server runs until Close (immediate) or Shutdown (graceful). Extra routes
// are mounted alongside the built-in endpoints.
func Serve(addr string, src func() Snapshot, log *Logger, extra ...Route) (*Server, error) {
	if src == nil {
		return nil, fmt.Errorf("telemetry: nil snapshot source")
	}
	publishExpvar(src)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, src: src, log: log.Named("telemetry"), done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.log.Error("serve failed", "err", err)
		}
	}()
	s.log.Info("telemetry listening", "addr", ln.Addr().String())
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately, severing in-flight scrapes.
// Idempotent; a no-op after Shutdown.
func (s *Server) Close() error { return s.stop(nil) }

// Shutdown stops the server gracefully: the listener closes at once, but
// in-flight scrapes are allowed to finish until ctx expires. This is the
// path latestd's drain takes so a scrape racing the SIGTERM still gets its
// response. Idempotent; a no-op after Close.
func (s *Server) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.stop(ctx)
}

// stop implements Close (nil ctx: immediate) and Shutdown (graceful),
// sharing one sync.Once so whichever runs first wins and the server's
// goroutine is reaped exactly once.
func (s *Server) stop(ctx context.Context) error {
	var err error
	s.closeOnce.Do(func() {
		if ctx != nil {
			err = s.srv.Shutdown(ctx)
		} else {
			err = s.srv.Close()
		}
		<-s.done
		s.log.Info("telemetry stopped", "addr", s.ln.Addr().String())
	})
	return err
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(statuszView(s.src())); err != nil {
		s.log.Error("statusz encode failed", "err", err)
	}
}

// statuszPercentiles decorates a histogram with computed percentiles for
// the JSON view, where the raw bucket array alone would make operators do
// arithmetic.
type statuszPercentiles struct {
	Count uint64 `json:"count"`
	Mean  string `json:"mean"`
	P50   string `json:"p50"`
	P95   string `json:"p95"`
	P99   string `json:"p99"`
	Max   string `json:"max"`
}

type statuszShard struct {
	ShardSample
	FeedP     statuszPercentiles `json:"feed_percentiles"`
	BatchP    statuszPercentiles `json:"batch_percentiles"`
	QueryP    statuszPercentiles `json:"query_percentiles"`
	EstimateP statuszPercentiles `json:"estimate_percentiles"`
}

type statuszBody struct {
	Snapshot
	ShardsView []statuszShard `json:"shards_view"`
}

func percentilesOf(h HistSnapshot) statuszPercentiles {
	return statuszPercentiles{
		Count: h.Count,
		Mean:  h.Mean().String(),
		P50:   h.P50().String(),
		P95:   h.P95().String(),
		P99:   h.P99().String(),
		Max:   h.Max.String(),
	}
}

func statuszView(snap Snapshot) statuszBody {
	body := statuszBody{Snapshot: snap, ShardsView: make([]statuszShard, len(snap.Shards))}
	for i, sh := range snap.Shards {
		body.ShardsView[i] = statuszShard{
			ShardSample: sh,
			FeedP:       percentilesOf(sh.Feed),
			BatchP:      percentilesOf(sh.Batch),
			QueryP:      percentilesOf(sh.Query),
			EstimateP:   percentilesOf(sh.Estimate),
		}
	}
	return body
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteProm(w, s.src())
	// Runtime health is collected live per scrape and appended after the
	// snapshot families; it stays out of WriteProm so the snapshot renderer
	// remains a deterministic, golden-testable function of its argument.
	WriteGoRuntimeProm(w, ReadGoRuntime())
}

// WriteProm renders a Snapshot in the Prometheus text exposition format.
// Exported separately from the server so tests and offline tooling can
// render without a listener.
func WriteProm(w interface{ Write([]byte) (int, error) }, snap Snapshot) {
	var b strings.Builder

	counter := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " counter\n")
	}
	gauge := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " gauge\n")
	}
	sample := func(name, labels string, v float64) {
		b.WriteString(name)
		if labels != "" {
			b.WriteString("{" + labels + "}")
		}
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteByte('\n')
	}
	shardLabel := func(i int) string { return `shard="` + strconv.Itoa(i) + `"` }

	counter("latest_feeds_total", "Lifetime ingested objects per shard.")
	for _, sh := range snap.Shards {
		sample("latest_feeds_total", shardLabel(sh.Index), float64(sh.Feeds))
	}
	counter("latest_batches_total", "Lifetime ingested batches per shard.")
	for _, sh := range snap.Shards {
		sample("latest_batches_total", shardLabel(sh.Index), float64(sh.Batches))
	}
	counter("latest_queries_total", "Lifetime estimate/execute cycles per shard.")
	for _, sh := range snap.Shards {
		sample("latest_queries_total", shardLabel(sh.Index), float64(sh.Queries))
	}
	counter("latest_reordered_total", "Objects whose timestamps were clamped forward per shard.")
	for _, sh := range snap.Shards {
		sample("latest_reordered_total", shardLabel(sh.Index), float64(sh.Reordered))
	}
	counter("latest_prefills_total", "Estimator pre-fill replays per shard by execution mode.")
	for _, sh := range snap.Shards {
		sample("latest_prefills_total", shardLabel(sh.Index)+`,mode="async"`, float64(sh.PrefillsAsync))
		sample("latest_prefills_total", shardLabel(sh.Index)+`,mode="inline"`, float64(sh.PrefillsInline))
	}
	counter("latest_switches_total", "Estimator switches per shard.")
	for _, sh := range snap.Shards {
		sample("latest_switches_total", shardLabel(sh.Index), float64(sh.Switches))
	}
	gauge("latest_window_occupancy", "Live objects in the shard's exact window store.")
	for _, sh := range snap.Shards {
		sample("latest_window_occupancy", shardLabel(sh.Index), float64(sh.Occupancy))
	}
	gauge("latest_accuracy_avg", "Sliding accuracy average the adaptor monitors, per shard.")
	for _, sh := range snap.Shards {
		sample("latest_accuracy_avg", shardLabel(sh.Index), sh.AccuracyAvg)
	}
	gauge("latest_memory_bytes", "Estimator memory footprint per shard.")
	for _, sh := range snap.Shards {
		sample("latest_memory_bytes", shardLabel(sh.Index), float64(sh.MemoryBytes))
	}
	gauge("latest_active_estimator", "1 for the estimator currently serving each shard.")
	for _, sh := range snap.Shards {
		sample("latest_active_estimator",
			shardLabel(sh.Index)+`,estimator="`+sh.Active+`"`, 1)
	}
	gauge("latest_qerror", "Rolling q-error per estimator (1 is perfect), merged across shards.")
	for _, qe := range snap.QError {
		if qe.Samples > 0 {
			sample("latest_qerror", `estimator="`+qe.Estimator+`"`, qe.QError)
		}
	}

	if len(snap.Drift) > 0 {
		gauge("latest_qerror_drift", "Current-window over reference-window mean q-error ratio per estimator (0 until both windows fill; >= threshold means drifted).")
		for _, d := range snap.Drift {
			sample("latest_qerror_drift", `estimator="`+d.Estimator+`"`, d.Ratio)
		}
		gauge("latest_qerror_window", "Windowed mean q-error per estimator and window (reference is frozen at calibration, current rolls).")
		for _, d := range snap.Drift {
			sample("latest_qerror_window", `estimator="`+d.Estimator+`",window="reference"`, d.Reference)
			sample("latest_qerror_window", `estimator="`+d.Estimator+`",window="current"`, d.Current)
		}
		gauge("latest_qerror_drifted", "1 while the estimator's drift ratio is at or above its threshold.")
		for _, d := range snap.Drift {
			v := 0.0
			if d.Drifted {
				v = 1
			}
			sample("latest_qerror_drifted", `estimator="`+d.Estimator+`"`, v)
		}
	}

	counter("latest_validation_total", "Inputs handled by the validation policy per shard, by outcome.")
	for _, sh := range snap.Shards {
		sample("latest_validation_total", shardLabel(sh.Index)+`,outcome="rejected"`, float64(sh.ValidationRejected))
		sample("latest_validation_total", shardLabel(sh.Index)+`,outcome="clamped"`, float64(sh.ValidationClamped))
	}
	counter("latest_prefill_queue_full_total", "Deferred pre-fills that found the queue full and replayed inline, per shard.")
	for _, sh := range snap.Shards {
		sample("latest_prefill_queue_full_total", shardLabel(sh.Index), float64(sh.PrefillQueueFull))
	}
	gauge("latest_ingest_rate", "Trailing mean feed rate per shard (objects/second over the last ten completed seconds).")
	for _, sh := range snap.Shards {
		sample("latest_ingest_rate", shardLabel(sh.Index), sh.IngestRatePerSec)
	}
	gauge("latest_ingest_backlog", "Routed chunks queued to the shard's feed worker but not yet applied.")
	for _, sh := range snap.Shards {
		sample("latest_ingest_backlog", shardLabel(sh.Index), float64(sh.IngestBacklog))
	}
	counter("latest_ingest_backpressure_total", "Feed hand-offs that found the shard's ingest queue full and blocked, per shard.")
	for _, sh := range snap.Shards {
		sample("latest_ingest_backpressure_total", shardLabel(sh.Index), float64(sh.IngestBackpressure))
	}
	counter("latest_faults_total", "Estimator faults contained by the guard, per shard, estimator and kind.")
	for _, sh := range snap.Shards {
		for _, h := range sh.Resilience.Estimators {
			est := `,estimator="` + h.Estimator + `"`
			sample("latest_faults_total", shardLabel(sh.Index)+est+`,kind="panic"`, float64(h.Panics))
			sample("latest_faults_total", shardLabel(sh.Index)+est+`,kind="value"`, float64(h.ValueFaults))
			sample("latest_faults_total", shardLabel(sh.Index)+est+`,kind="deadline"`, float64(h.Deadlines))
		}
	}
	gauge("latest_quarantine_state", "Circuit-breaker state per shard and estimator: 0 closed, 1 half-open, 2 open.")
	for _, sh := range snap.Shards {
		for _, h := range sh.Resilience.Estimators {
			sample("latest_quarantine_state",
				shardLabel(sh.Index)+`,estimator="`+h.Estimator+`"`, float64(stateRank(h.State)))
		}
	}
	counter("latest_quarantines_total", "Breaker trips per shard and estimator.")
	for _, sh := range snap.Shards {
		for _, h := range sh.Resilience.Estimators {
			sample("latest_quarantines_total",
				shardLabel(sh.Index)+`,estimator="`+h.Estimator+`"`, float64(h.Quarantines))
		}
	}
	counter("latest_readmissions_total", "Probation re-admissions per shard and estimator.")
	for _, sh := range snap.Shards {
		for _, h := range sh.Resilience.Estimators {
			sample("latest_readmissions_total",
				shardLabel(sh.Index)+`,estimator="`+h.Estimator+`"`, float64(h.Readmissions))
		}
	}
	counter("latest_sanitized_total", "Estimates repaired in place by the guard (small negatives clamped), per shard and estimator.")
	for _, sh := range snap.Shards {
		for _, h := range sh.Resilience.Estimators {
			sample("latest_sanitized_total",
				shardLabel(sh.Index)+`,estimator="`+h.Estimator+`"`, float64(h.Sanitized))
		}
	}
	counter("latest_fallbacks_total", "Queries served by a fallback because the active estimate faulted, per shard and mode.")
	for _, sh := range snap.Shards {
		r := sh.Resilience
		sample("latest_fallbacks_total", shardLabel(sh.Index)+`,mode="runner_up"`, float64(r.FallbackRunnerUp))
		sample("latest_fallbacks_total", shardLabel(sh.Index)+`,mode="oracle"`, float64(r.FallbackOracle))
		sample("latest_fallbacks_total", shardLabel(sh.Index)+`,mode="zero"`, float64(r.FallbackZero))
	}

	promHistogram(&b, "latest_feed_latency_seconds",
		"Sampled single-object ingest latency.", snap.Shards,
		func(sh ShardSample) HistSnapshot { return sh.Feed })
	promHistogram(&b, "latest_batch_latency_seconds",
		"Per-batch ingest latency.", snap.Shards,
		func(sh ShardSample) HistSnapshot { return sh.Batch })
	promHistogram(&b, "latest_query_latency_seconds",
		"Full estimate+execute+observe cycle latency.", snap.Shards,
		func(sh ShardSample) HistSnapshot { return sh.Query })
	promHistogram(&b, "latest_estimate_latency_seconds",
		"Active estimator's approximate-answer latency.", snap.Shards,
		func(sh ShardSample) HistSnapshot { return sh.Estimate })

	if snap.Server != nil {
		writeServerProm(&b, snap.Server)
	}
	if snap.Durable != nil {
		writeDurableProm(&b, snap.Durable)
	}
	if snap.Cluster != nil {
		writeClusterProm(&b, snap.Cluster)
	}

	w.Write([]byte(b.String()))
}

// promHistogram renders one histogram family with per-shard label sets.
// Buckets are cumulative as the exposition format requires; empty trailing
// buckets are folded into +Inf to keep scrapes small.
func promHistogram(b *strings.Builder, name, help string, shards []ShardSample, get func(ShardSample) HistSnapshot) {
	b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " histogram\n")
	for _, sh := range shards {
		promHistogramOne(b, name, `shard="`+strconv.Itoa(sh.Index)+`"`, get(sh))
	}
}

// promHistogramOne renders one histogram series (no HELP/TYPE preamble —
// the caller owns the family header). An empty label renders an unlabeled
// series.
func promHistogramOne(b *strings.Builder, name, label string, h HistSnapshot) {
	prefix := label // bucket-line label prefix, "le" appended after it
	if label != "" {
		prefix += ","
	}
	hi := -1
	for i, n := range h.Buckets {
		if n > 0 {
			hi = i
		}
	}
	var cum uint64
	for i := 0; i <= hi && i < NumBuckets-1; i++ {
		cum += h.Buckets[i]
		le := strconv.FormatFloat(BucketBound(i).Seconds(), 'g', -1, 64)
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, prefix, le, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, prefix, h.Count)
	suffix := ""
	if label != "" {
		suffix = "{" + label + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix,
		strconv.FormatFloat(h.Sum.Seconds(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, h.Count)
}
