package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func testSnapshot() Snapshot {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	hs := h.Snapshot()
	return Snapshot{
		Engine: "sharded", Phase: "incremental", Active: "RSH,H4096",
		Switches: 3, AccuracyAvg: 0.91, MemoryBytes: 4096, WindowSize: 1234,
		Shards: []ShardSample{
			{Index: 0, Active: "RSH", Phase: "incremental", Feeds: 100, Batches: 4,
				Queries: 50, Occupancy: 70, Switches: 2, AccuracyAvg: 0.9,
				PrefillsAsync: 2, Feed: hs, Batch: hs, Query: hs, Estimate: hs},
			{Index: 1, Active: "H4096", Phase: "incremental", Feeds: 60,
				Queries: 30, Occupancy: 40, Switches: 1, AccuracyAvg: 0.92,
				PrefillsInline: 1, Query: hs},
		},
		Decisions: []Decision{
			{Shard: 0, From: "RSH", To: "H4096", Reason: "tau-breach",
				Recommended: "H4096", Confidence: 0.8, WallTime: 42},
		},
		QError: []QErrorSample{{Estimator: "RSH", QError: 1.4, Samples: 50}},
	}
}

func TestServerEndpoints(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testSnapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE latest_feeds_total counter",
		`latest_feeds_total{shard="0"} 100`,
		`latest_queries_total{shard="1"} 30`,
		"# TYPE latest_query_latency_seconds histogram",
		`latest_query_latency_seconds_count{shard="0"} 100`,
		`le="+Inf"`,
		`latest_active_estimator{shard="0",estimator="RSH"} 1`,
		`latest_qerror{estimator="RSH"} 1.4`,
		`latest_prefills_total{shard="0",mode="async"} 2`,
		"# TYPE latest_window_occupancy gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Cumulative bucket counts must be non-decreasing and end at count.
	if !strings.Contains(body, "latest_query_latency_seconds_bucket") {
		t.Errorf("no bucket lines in /metrics")
	}

	code, body = get("/statusz")
	if code != 200 {
		t.Fatalf("/statusz status %d", code)
	}
	var got statuszBody
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if got.Engine != "sharded" || len(got.Shards) != 2 || len(got.Decisions) != 1 {
		t.Errorf("statusz body = engine %q, %d shards, %d decisions",
			got.Engine, len(got.Shards), len(got.Decisions))
	}
	if got.Decisions[0].Reason != "tau-breach" {
		t.Errorf("decision reason = %q", got.Decisions[0].Reason)
	}
	if got.ShardsView[0].QueryP.Count != 100 || got.ShardsView[0].QueryP.P95 == "" {
		t.Errorf("statusz percentiles = %+v", got.ShardsView[0].QueryP)
	}

	if code, _ := get("/debug/vars"); code != 200 {
		t.Errorf("/debug/vars status %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}

	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Errorf("second close: %v", err)
	}
}

func TestWritePromCumulativeBuckets(t *testing.T) {
	var b strings.Builder
	WriteProm(&b, testSnapshot())
	var last uint64
	var sawBucket bool
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, `latest_query_latency_seconds_bucket{shard="0"`) {
			continue
		}
		sawBucket = true
		var v uint64
		if _, err := fmtSscan(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("cumulative buckets decreased: %q after %d", line, last)
		}
		last = v
	}
	if !sawBucket {
		t.Fatal("no bucket lines rendered")
	}
	if last != 100 {
		t.Errorf("final cumulative bucket = %d, want 100", last)
	}
}

// fmtSscan pulls the trailing integer off a metrics line.
func fmtSscan(line string, v *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	n, err := parseUint(line[i+1:])
	*v = n
	return 1, err
}

func parseUint(s string) (uint64, error) {
	var n uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, io.ErrUnexpectedEOF
		}
		n = n*10 + uint64(c-'0')
	}
	return n, nil
}
