package telemetry

import (
	"strconv"
	"strings"
)

// serving.go holds the serving-layer slice of a telemetry Snapshot: the
// connection, byte and request counters plus per-operation latency
// histograms that internal/server publishes through the same /metrics and
// /statusz endpoints as the engine gauges. The types live here (below the
// server package in the dependency order) so the exposition renderer does
// not need to import the serving layer to describe it.

// ServerOp is one request type's serving statistics.
type ServerOp struct {
	// Op names the operation ("feed", "estimate", "query", "ping").
	Op string `json:"op"`
	// Requests counts requests answered successfully.
	Requests uint64 `json:"requests"`
	// Latency is the server-side request latency distribution, measured
	// from frame decode to response enqueue.
	Latency HistSnapshot `json:"latency"`
}

// ServerErrors counts typed request rejections by wire error code.
type ServerErrors struct {
	Malformed    uint64 `json:"malformed"`
	TooLarge     uint64 `json:"too_large"`
	VersionSkew  uint64 `json:"version_skew"`
	UnknownType  uint64 `json:"unknown_type"`
	Backpressure uint64 `json:"backpressure"`
	Draining     uint64 `json:"draining"`
	Deadline     uint64 `json:"deadline_exceeded"`
	Internal     uint64 `json:"internal"`
	// NotOwner counts a clustered node's refusals of requests whose
	// objects or query footprint it does not own under its partition map
	// (the typed TErrNotOwner frame, not a wire.Code).
	NotOwner uint64 `json:"not_owner"`
}

// Total sums all rejection counters.
func (e ServerErrors) Total() uint64 {
	return e.Malformed + e.TooLarge + e.VersionSkew + e.UnknownType +
		e.Backpressure + e.Draining + e.Deadline + e.Internal + e.NotOwner
}

// ServerSample is the serving layer's slice of a Snapshot.
type ServerSample struct {
	// Addr is the bound wire-protocol listen address.
	Addr string `json:"addr"`
	// Draining is true once graceful shutdown has begun.
	Draining bool `json:"draining"`

	ConnsActive   int64  `json:"conns_active"`
	ConnsAccepted uint64 `json:"conns_accepted"`
	// ConnsRejected counts connections refused at the limit.
	ConnsRejected uint64 `json:"conns_rejected"`

	BytesIn   uint64 `json:"bytes_in"`
	BytesOut  uint64 `json:"bytes_out"`
	FramesIn  uint64 `json:"frames_in"`
	FramesOut uint64 `json:"frames_out"`

	// InFlight is the number of requests currently being served across
	// all connections.
	InFlight int64 `json:"in_flight"`
	// FeedObjects counts stream objects ingested through the wire.
	FeedObjects uint64 `json:"feed_objects"`
	// CoalescedFeeds counts pipelined feed frames that were merged into a
	// preceding frame's engine batch instead of paying their own engine
	// call.
	CoalescedFeeds uint64 `json:"coalesced_feeds"`

	Ops    []ServerOp   `json:"ops"`
	Errors ServerErrors `json:"errors"`

	// ConnDuration is the lifetime distribution of closed connections.
	ConnDuration HistSnapshot `json:"conn_duration"`

	// TracesSeen counts trace-flagged requests observed; TracesSampled
	// those retained in the /debug/requests ring.
	TracesSeen    uint64 `json:"traces_seen"`
	TracesSampled uint64 `json:"traces_sampled"`
}

// writeServerProm renders the latest_server_* metric families.
func writeServerProm(b *strings.Builder, s *ServerSample) {
	counter := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " counter\n")
	}
	gauge := func(name, help string) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " gauge\n")
	}
	sample := func(name, labels string, v float64) {
		b.WriteString(name)
		if labels != "" {
			b.WriteString("{" + labels + "}")
		}
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteByte('\n')
	}
	boolGauge := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}

	gauge("latest_server_draining", "1 while the server is draining for shutdown.")
	sample("latest_server_draining", "", boolGauge(s.Draining))
	gauge("latest_server_connections", "Currently open wire-protocol connections.")
	sample("latest_server_connections", "", float64(s.ConnsActive))
	counter("latest_server_connections_total", "Lifetime connection outcomes.")
	sample("latest_server_connections_total", `outcome="accepted"`, float64(s.ConnsAccepted))
	sample("latest_server_connections_total", `outcome="rejected"`, float64(s.ConnsRejected))
	counter("latest_server_bytes_total", "Wire bytes by direction.")
	sample("latest_server_bytes_total", `dir="in"`, float64(s.BytesIn))
	sample("latest_server_bytes_total", `dir="out"`, float64(s.BytesOut))
	counter("latest_server_frames_total", "Wire frames by direction.")
	sample("latest_server_frames_total", `dir="in"`, float64(s.FramesIn))
	sample("latest_server_frames_total", `dir="out"`, float64(s.FramesOut))
	gauge("latest_server_inflight", "Requests currently being served.")
	sample("latest_server_inflight", "", float64(s.InFlight))
	counter("latest_server_feed_objects_total", "Stream objects ingested over the wire.")
	sample("latest_server_feed_objects_total", "", float64(s.FeedObjects))
	counter("latest_server_coalesced_feeds_total", "Pipelined feed frames merged into one engine batch.")
	sample("latest_server_coalesced_feeds_total", "", float64(s.CoalescedFeeds))

	counter("latest_server_requests_total", "Successfully answered requests by operation.")
	for _, op := range s.Ops {
		sample("latest_server_requests_total", `op="`+op.Op+`"`, float64(op.Requests))
	}
	counter("latest_server_request_errors_total", "Typed request rejections by wire error code.")
	for _, e := range []struct {
		code string
		n    uint64
	}{
		{"malformed", s.Errors.Malformed},
		{"too_large", s.Errors.TooLarge},
		{"version_skew", s.Errors.VersionSkew},
		{"unknown_type", s.Errors.UnknownType},
		{"backpressure", s.Errors.Backpressure},
		{"draining", s.Errors.Draining},
		{"deadline_exceeded", s.Errors.Deadline},
		{"internal", s.Errors.Internal},
		{"not_owner", s.Errors.NotOwner},
	} {
		sample("latest_server_request_errors_total", `code="`+e.code+`"`, float64(e.n))
	}

	b.WriteString("# HELP latest_server_request_latency_seconds Server-side request latency by operation.\n" +
		"# TYPE latest_server_request_latency_seconds histogram\n")
	for _, op := range s.Ops {
		promHistogramOne(b, "latest_server_request_latency_seconds", `op="`+op.Op+`"`, op.Latency)
	}

	b.WriteString("# HELP latest_server_conn_duration_seconds Lifetime of closed wire connections.\n" +
		"# TYPE latest_server_conn_duration_seconds histogram\n")
	promHistogramOne(b, "latest_server_conn_duration_seconds", "", s.ConnDuration)

	counter("latest_server_traces_total", "Trace-flagged requests observed and retained for /debug/requests.")
	sample("latest_server_traces_total", `outcome="seen"`, float64(s.TracesSeen))
	sample("latest_server_traces_total", `outcome="sampled"`, float64(s.TracesSampled))
}
