package telemetry

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// drainGet performs a GET and fully consumes the body so the client's
// persistConn goroutines can be reaped by CloseIdleConnections.
func drainGet(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// TestServerShutdownGraceful: Shutdown stops the listener, completes, and
// further Close/Shutdown calls are no-ops.
func TestServerShutdownGraceful(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testSnapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	drainGet(t, "http://"+addr+"/metrics")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("scrape succeeded after shutdown")
	}
}

// TestServerShutdownNoGoroutineLeak: repeatedly starting and gracefully
// shutting down exposition servers returns the process to its baseline
// goroutine count — the regression test for the drain path latestd uses.
func TestServerShutdownNoGoroutineLeak(t *testing.T) {
	// Warm up the HTTP stack's lazy singletons so they don't read as leaks.
	srv, err := Serve("127.0.0.1:0", testSnapshot, nil)
	if err != nil {
		t.Fatal(err)
	}
	drainGet(t, "http://"+srv.Addr()+"/metrics")
	srv.Shutdown(context.Background())
	http.DefaultClient.CloseIdleConnections()

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		srv, err := Serve("127.0.0.1:0", testSnapshot, nil)
		if err != nil {
			t.Fatal(err)
		}
		drainGet(t, "http://"+srv.Addr()+"/statusz")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown %d: %v", i, err)
		}
		cancel()
	}
	// The default client's keep-alive goroutines linger until their idle
	// conns are dropped; close them and poll rather than sleep a fixed
	// interval.
	deadline := time.Now().Add(5 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeExtraRoutes: Route handlers mount on the exposition mux.
func TestServeExtraRoutes(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testSnapshot, nil, Route{
		Pattern: "/healthz",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprint(w, `{"status":"ok"}`)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestWritePromServerFamilies: a Snapshot carrying a ServerSample renders
// the latest_server_* families.
func TestWritePromServerFamilies(t *testing.T) {
	var h Histogram
	h.Record(3 * time.Millisecond)
	snap := testSnapshot()
	snap.Server = &ServerSample{
		Addr:          "127.0.0.1:7707",
		Draining:      true,
		ConnsActive:   2,
		ConnsAccepted: 9,
		ConnsRejected: 1,
		BytesIn:       4096,
		BytesOut:      2048,
		FramesIn:      64,
		FramesOut:     60,
		InFlight:      3,
		FeedObjects:   1000,
		Ops: []ServerOp{
			{Op: "feed", Requests: 40, Latency: h.Snapshot()},
			{Op: "query", Requests: 20, Latency: h.Snapshot()},
		},
		Errors: ServerErrors{Backpressure: 5, Malformed: 1},
	}
	var b strings.Builder
	WriteProm(&b, snap)
	out := b.String()
	for _, want := range []string{
		"latest_server_draining 1",
		"latest_server_connections 2",
		`latest_server_connections_total{outcome="accepted"} 9`,
		`latest_server_bytes_total{dir="in"} 4096`,
		`latest_server_frames_total{dir="out"} 60`,
		"latest_server_inflight 3",
		"latest_server_feed_objects_total 1000",
		`latest_server_requests_total{op="feed"} 40`,
		`latest_server_request_errors_total{code="backpressure"} 5`,
		`latest_server_request_latency_seconds_count{op="query"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in prom output", want)
		}
	}
	if snap.Server.Errors.Total() != 6 {
		t.Fatalf("errors total %d", snap.Server.Errors.Total())
	}
}
