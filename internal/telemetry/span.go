package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// span.go is the request-tracing core: trace IDs minted once per request,
// span timelines recorded stage by stage as the request crosses tiers, a
// bounded in-memory buffer of sampled traces, and per-latency-bucket
// exemplar trace IDs so an operator can jump from a histogram bucket to a
// concrete request that landed in it. Everything here is stdlib-only and
// allocation-free for unsampled requests (a nil *ActiveTrace is a valid
// no-op recorder), so the serving hot path can call it unconditionally.

// TraceID identifies one request across every tier it touches: the client
// mints it, the wire protocol carries it in a header extension, and the
// server threads it through dispatch, engine and estimator spans. Zero
// means "untraced".
type TraceID uint64

// String renders the ID as fixed-width hex, the form operators grep for.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the ID as a hex string; raw uint64s lose precision in
// JavaScript consumers.
func (id TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON accepts the hex-string form.
func (id *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		return err
	}
	*id = TraceID(v)
	return nil
}

// traceSeq seeds NewTraceID: a process-unique counter mixed through
// splitmix64 so concurrently minted IDs are unique and well-spread without
// coordination or crypto randomness.
var traceSeq atomic.Uint64

func init() {
	// Different processes start the sequence at different points so two
	// daemons (or a client and a server) never mint colliding IDs in the
	// same log window.
	traceSeq.Store(uint64(time.Now().UnixNano()))
}

// NewTraceID mints a process-unique trace ID: one atomic add and a few
// multiplies, never zero.
func NewTraceID() TraceID {
	// splitmix64 finalizer over the sequence value.
	z := traceSeq.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return TraceID(z)
}

// Span is one stage of a request's timeline, offset-relative to the trace
// start so the whole timeline lives in one clock domain.
type Span struct {
	// Name is the stage ("read", "queue", "engine", "estimator", "encode",
	// "write" on the server; "encode", "write", "wait", "decode" on the
	// client).
	Name string `json:"name"`
	// Detail annotates the stage (the estimator name for "estimator"
	// spans).
	Detail string `json:"detail,omitempty"`
	// StartNS is the span's start offset from the trace start. It can be
	// negative: the server's "read" span covers waiting for and decoding
	// the frame, which completes at the trace's clock zero.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's duration.
	DurNS int64 `json:"dur_ns"`
}

// Trace is one sampled request's complete record.
type Trace struct {
	ID TraceID `json:"id"`
	// Op is the request operation ("feed", "estimate", "query", "ping").
	Op string `json:"op"`
	// Error is the wire error code name when the request was refused or
	// failed ("" for success).
	Error string `json:"error,omitempty"`
	// StartUnixNS is the wall-clock trace start in nanoseconds since the
	// Unix epoch — the only absolute timestamp; spans are offsets from it.
	StartUnixNS int64 `json:"start_unix_ns"`
	// DurNS is the full request duration as seen by this tier.
	DurNS int64  `json:"dur_ns"`
	Spans []Span `json:"spans"`
}

// ActiveTrace records one in-flight request's spans. It is single-owner:
// exactly one goroutine appends at a time, with ownership handed off
// through channels (read loop → worker → write loop), which establishes the
// needed happens-before edges. A nil *ActiveTrace is a valid no-op
// recorder, so call sites never branch on sampling.
type ActiveTrace struct {
	buf   *TraceBuffer
	t     Trace
	start time.Time

	openName  string
	openStart time.Time
}

// ID returns the trace's ID (0 on a nil recorder).
func (at *ActiveTrace) ID() TraceID {
	if at == nil {
		return 0
	}
	return at.t.ID
}

// AddSpan records a stage that started at start and ends now.
func (at *ActiveTrace) AddSpan(name string, start time.Time) {
	if at == nil {
		return
	}
	at.t.Spans = append(at.t.Spans, Span{
		Name:    name,
		StartNS: start.Sub(at.start).Nanoseconds(),
		DurNS:   time.Since(start).Nanoseconds(),
	})
}

// AddSpanDur records a stage of known duration d that ends now — the form
// used when the duration was measured by someone else (the estimator
// guard's own timing).
func (at *ActiveTrace) AddSpanDur(name, detail string, d time.Duration) {
	if at == nil {
		return
	}
	start := time.Now().Add(-d)
	at.t.Spans = append(at.t.Spans, Span{
		Name:    name,
		Detail:  detail,
		StartNS: start.Sub(at.start).Nanoseconds(),
		DurNS:   d.Nanoseconds(),
	})
}

// BeginSpan opens a stage whose end is recorded by EndSpan — the handoff
// form used when a stage crosses goroutines (response enqueue → socket
// write completion). At most one span is open at a time.
func (at *ActiveTrace) BeginSpan(name string) {
	if at == nil {
		return
	}
	at.openName = name
	at.openStart = time.Now()
}

// EndSpan closes the stage BeginSpan opened. A no-op when none is open.
func (at *ActiveTrace) EndSpan() {
	if at == nil || at.openName == "" {
		return
	}
	at.AddSpan(at.openName, at.openStart)
	at.openName = ""
}

// SetError marks the trace failed with a wire error code name.
func (at *ActiveTrace) SetError(code string) {
	if at == nil {
		return
	}
	at.t.Error = code
}

// Finish seals the trace and publishes it to the buffer (recording the
// latency-bucket exemplar). Idempotent-enough: calling twice publishes
// twice, so owners finish exactly once.
func (at *ActiveTrace) Finish() {
	if at == nil {
		return
	}
	at.EndSpan()
	at.t.DurNS = time.Since(at.start).Nanoseconds()
	at.buf.push(at.t)
}

// Exemplar pairs a latency-histogram bucket with a concrete sampled trace
// that landed in it.
type Exemplar struct {
	// Op and LE identify the series and bucket (LE is the bucket's
	// exclusive upper bound in seconds, matching the Prometheus le label).
	Op string `json:"op"`
	LE string `json:"le"`
	// TraceID is the most recent sampled trace in the bucket; DurNS its
	// duration.
	TraceID TraceID `json:"trace_id"`
	DurNS   int64   `json:"dur_ns"`
}

// bucketExemplar is the per-bucket slot behind Exemplar.
type bucketExemplar struct {
	id    TraceID
	durNS int64
}

// TraceBuffer retains the last depth sampled traces and the most recent
// exemplar per (op, latency bucket). Sampling is deterministic 1-in-every
// on Start; the unsampled path costs one atomic add.
type TraceBuffer struct {
	depth int
	every uint64

	seq     atomic.Uint64 // Start calls, drives sampling
	sampled atomic.Uint64 // traces actually retained

	mu   sync.Mutex
	ring []Trace
	next int

	emu       sync.Mutex
	exemplars map[string]*[NumBuckets]bucketExemplar
}

// DefaultTraceBufferDepth is the retained-trace capacity when the caller
// does not size it.
const DefaultTraceBufferDepth = 128

// DefaultTraceSampleEvery is the default sampling stride: one traced
// request in this many is retained.
const DefaultTraceSampleEvery = 16

// NewTraceBuffer creates a buffer retaining the last depth sampled traces,
// sampling one traced request in every (depth <= 0 and every <= 0 take the
// defaults; every == 1 retains all).
func NewTraceBuffer(depth, every int) *TraceBuffer {
	if depth <= 0 {
		depth = DefaultTraceBufferDepth
	}
	if every <= 0 {
		every = DefaultTraceSampleEvery
	}
	return &TraceBuffer{
		depth:     depth,
		every:     uint64(every),
		ring:      make([]Trace, 0, depth),
		exemplars: make(map[string]*[NumBuckets]bucketExemplar),
	}
}

// Start begins recording op's request under id if the sampler selects it;
// otherwise (and on a nil buffer, or a zero id — an untraced request) it
// returns nil, which every ActiveTrace method accepts. Safe for concurrent
// use.
func (tb *TraceBuffer) Start(op string, id TraceID) *ActiveTrace {
	if tb == nil || id == 0 {
		return nil
	}
	if (tb.seq.Add(1)-1)%tb.every != 0 {
		return nil
	}
	now := time.Now()
	return &ActiveTrace{
		buf:   tb,
		start: now,
		t: Trace{
			ID:          id,
			Op:          op,
			StartUnixNS: now.UnixNano(),
			Spans:       make([]Span, 0, 8),
		},
	}
}

// Seen returns how many traced requests Start has observed (sampled or
// not).
func (tb *TraceBuffer) Seen() uint64 {
	if tb == nil {
		return 0
	}
	return tb.seq.Load()
}

// Sampled returns how many traces were retained.
func (tb *TraceBuffer) Sampled() uint64 {
	if tb == nil {
		return 0
	}
	return tb.sampled.Load()
}

func (tb *TraceBuffer) push(t Trace) {
	if tb == nil {
		return
	}
	tb.sampled.Add(1)
	tb.mu.Lock()
	if len(tb.ring) < cap(tb.ring) {
		tb.ring = append(tb.ring, t)
	} else {
		tb.ring[tb.next] = t
	}
	tb.next = (tb.next + 1) % cap(tb.ring)
	tb.mu.Unlock()

	bucket := bucketOf(time.Duration(t.DurNS))
	tb.emu.Lock()
	slot := tb.exemplars[t.Op]
	if slot == nil {
		slot = new([NumBuckets]bucketExemplar)
		tb.exemplars[t.Op] = slot
	}
	slot[bucket] = bucketExemplar{id: t.ID, durNS: t.DurNS}
	tb.emu.Unlock()
}

// Snapshot returns the retained traces oldest-first.
func (tb *TraceBuffer) Snapshot() []Trace {
	if tb == nil {
		return nil
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	out := make([]Trace, 0, len(tb.ring))
	if len(tb.ring) < cap(tb.ring) {
		return append(out, tb.ring...)
	}
	out = append(out, tb.ring[tb.next:]...)
	return append(out, tb.ring[:tb.next]...)
}

// Exemplars returns the most recent sampled trace per (op, latency bucket),
// ordered by op then bucket.
func (tb *TraceBuffer) Exemplars() []Exemplar {
	if tb == nil {
		return nil
	}
	tb.emu.Lock()
	defer tb.emu.Unlock()
	ops := make([]string, 0, len(tb.exemplars))
	for op := range tb.exemplars {
		ops = append(ops, op)
	}
	sortStrings(ops)
	var out []Exemplar
	for _, op := range ops {
		slot := tb.exemplars[op]
		for i := range slot {
			if slot[i].id == 0 {
				continue
			}
			le := "+Inf"
			if i < NumBuckets-1 {
				le = fmt.Sprintf("%g", BucketBound(i).Seconds())
			}
			out = append(out, Exemplar{Op: op, LE: le, TraceID: slot[i].id, DurNS: slot[i].durNS})
		}
	}
	return out
}

// sortStrings is a dependency-free insertion sort; exemplar op sets are
// tiny (a handful of operations).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TraceDump is the /debug/requests response body.
type TraceDump struct {
	// Depth and SampleEvery echo the buffer configuration.
	Depth       int `json:"depth"`
	SampleEvery int `json:"sample_every"`
	// Seen counts traced requests observed; Sampled those retained.
	Seen    uint64 `json:"seen"`
	Sampled uint64 `json:"sampled"`
	// Traces is the retained ring, oldest-first.
	Traces []Trace `json:"traces"`
	// Exemplars maps latency-histogram buckets to concrete trace IDs.
	Exemplars []Exemplar `json:"exemplars"`
}

// Dump builds the TraceDump view.
func (tb *TraceBuffer) Dump() TraceDump {
	d := TraceDump{}
	if tb == nil {
		return d
	}
	d.Depth = tb.depth
	d.SampleEvery = int(tb.every)
	d.Seen = tb.Seen()
	d.Sampled = tb.Sampled()
	d.Traces = tb.Snapshot()
	d.Exemplars = tb.Exemplars()
	return d
}

// Handler serves the buffer as JSON — the /debug/requests admin endpoint.
// An optional ?id=<hex> filter returns only the matching trace.
func (tb *TraceBuffer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		d := tb.Dump()
		if want := r.URL.Query().Get("id"); want != "" {
			filtered := d.Traces[:0:0]
			for _, t := range d.Traces {
				if t.ID.String() == want {
					filtered = append(filtered, t)
				}
			}
			d.Traces = filtered
			d.Exemplars = nil
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(d)
	})
}
