package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDUniqueNonZero(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace ID minted")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %v", id)
		}
		seen[id] = true
	}
}

func TestTraceIDJSONRoundTrip(t *testing.T) {
	id := TraceID(0xdeadbeef12345678)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeef12345678"` {
		t.Fatalf("marshal = %s", b)
	}
	var back TraceID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip %v != %v", back, id)
	}
}

func TestNilActiveTraceIsSafe(t *testing.T) {
	var at *ActiveTrace
	if at.ID() != 0 {
		t.Fatal("nil ID not zero")
	}
	at.AddSpan("x", time.Now())
	at.AddSpanDur("y", "d", time.Millisecond)
	at.BeginSpan("z")
	at.EndSpan()
	at.SetError("nope")
	at.Finish() // must not panic
}

func TestTraceBufferSamplingAndRing(t *testing.T) {
	tb := NewTraceBuffer(4, 2) // keep 4, sample every 2nd
	finished := 0
	for i := 0; i < 10; i++ {
		tr := tb.Start("estimate", NewTraceID())
		sampled := i%2 == 0 // first Start is selected, then every other
		if (tr != nil) != sampled {
			t.Fatalf("call %d: sampled=%v want %v", i, tr != nil, sampled)
		}
		if tr != nil {
			tr.AddSpan("engine", time.Now())
			tr.Finish()
			finished++
		}
	}
	if tb.Seen() != 10 {
		t.Fatalf("Seen = %d", tb.Seen())
	}
	if tb.Sampled() != uint64(finished) {
		t.Fatalf("Sampled = %d want %d", tb.Sampled(), finished)
	}
	traces := tb.Snapshot()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(traces))
	}
	// Oldest-first: later traces overwrote earlier ones.
	for i := 1; i < len(traces); i++ {
		if traces[i].StartUnixNS < traces[i-1].StartUnixNS {
			t.Fatal("ring not oldest-first")
		}
	}
}

func TestTraceBufferUntracedAndNil(t *testing.T) {
	tb := NewTraceBuffer(2, 1)
	if tr := tb.Start("feed", 0); tr != nil {
		t.Fatal("zero trace ID must not start a trace")
	}
	var nilBuf *TraceBuffer
	if tr := nilBuf.Start("feed", NewTraceID()); tr != nil {
		t.Fatal("nil buffer must not start a trace")
	}
	if nilBuf.Dump().Depth != 0 {
		t.Fatal("nil buffer dump not empty")
	}
}

func TestActiveTraceSpans(t *testing.T) {
	tb := NewTraceBuffer(8, 1)
	id := NewTraceID()
	tr := tb.Start("estimate", id)
	start := time.Now()
	time.Sleep(time.Millisecond)
	tr.AddSpan("engine", start)
	tr.AddSpanDur("estimator", "H4096", 500*time.Microsecond)
	tr.BeginSpan("write")
	time.Sleep(time.Millisecond)
	tr.SetError("deadline_exceeded")
	tr.Finish() // closes the open write span

	traces := tb.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("%d traces", len(traces))
	}
	tt := traces[0]
	if tt.ID != id || tt.Op != "estimate" || tt.Error != "deadline_exceeded" {
		t.Fatalf("trace = %+v", tt)
	}
	if len(tt.Spans) != 3 {
		t.Fatalf("%d spans, want 3", len(tt.Spans))
	}
	if tt.Spans[0].Name != "engine" || tt.Spans[0].DurNS < int64(time.Millisecond) {
		t.Fatalf("engine span = %+v", tt.Spans[0])
	}
	if tt.Spans[1].Detail != "H4096" {
		t.Fatalf("estimator span detail = %q", tt.Spans[1].Detail)
	}
	if tt.Spans[2].Name != "write" || tt.Spans[2].DurNS < int64(time.Millisecond) {
		t.Fatalf("write span = %+v", tt.Spans[2])
	}
	if tt.DurNS < tt.Spans[2].StartNS+tt.Spans[2].DurNS {
		t.Fatal("trace duration shorter than its last span")
	}
}

func TestExemplars(t *testing.T) {
	tb := NewTraceBuffer(8, 1)
	tr := tb.Start("query", NewTraceID())
	tr.Finish()
	ex := tb.Exemplars()
	if len(ex) != 1 {
		t.Fatalf("%d exemplars", len(ex))
	}
	if ex[0].Op != "query" || ex[0].TraceID == 0 || ex[0].LE == "" {
		t.Fatalf("exemplar = %+v", ex[0])
	}
	// A second trace in the same bucket replaces the exemplar.
	tr2 := tb.Start("query", NewTraceID())
	tr2.Finish()
	ex2 := tb.Exemplars()
	if len(ex2) == 1 && ex2[0].TraceID == ex[0].TraceID {
		t.Fatal("exemplar not replaced by newer trace")
	}
}

func TestTraceHandler(t *testing.T) {
	tb := NewTraceBuffer(8, 1)
	a := tb.Start("estimate", NewTraceID())
	aID := a.ID()
	a.Finish()
	b := tb.Start("feed", NewTraceID())
	b.Finish()

	rec := httptest.NewRecorder()
	tb.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	var dump TraceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, rec.Body.String())
	}
	if dump.Seen != 2 || dump.Sampled != 2 || len(dump.Traces) != 2 {
		t.Fatalf("dump = seen %d sampled %d traces %d", dump.Seen, dump.Sampled, len(dump.Traces))
	}
	if len(dump.Exemplars) == 0 {
		t.Fatal("no exemplars in dump")
	}

	// ?id= filters to the one matching trace.
	rec = httptest.NewRecorder()
	tb.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?id="+aID.String(), nil))
	var filtered TraceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Traces) != 1 || filtered.Traces[0].ID != aID {
		t.Fatalf("filtered = %+v", filtered.Traces)
	}
	if !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("content type = %q", rec.Header().Get("Content-Type"))
	}
}
