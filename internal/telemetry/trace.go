package telemetry

import (
	"sync"
	"time"
)

// DefaultTraceDepth is the switch-decision ring capacity when the caller
// does not size it. The /statusz contract promises at least the last 32
// decisions; 64 leaves headroom for multi-shard deployments whose shards
// switch independently.
const DefaultTraceDepth = 64

// QErrorSample is one estimator's rolling q-error at a point in time:
// the symmetric multiplicative error max(est/actual, actual/est) folded
// into an exponential moving average whenever ground truth is observed.
type QErrorSample struct {
	// Estimator names the fleet member.
	Estimator string `json:"estimator"`
	// QError is the rolling q-error (1 is perfect; only meaningful when
	// Samples > 0).
	QError float64 `json:"qerror"`
	// Samples counts the ground-truth observations folded in.
	Samples uint64 `json:"samples"`
}

// Decision is the audit record of one estimator switch: what the adaptor
// saw, what the model said, and what it did. It is the answer to the
// operator's "why did the serving estimator change at 14:32?".
type Decision struct {
	// Shard is the spatial shard whose module switched (0 for the
	// monolithic engines).
	Shard int `json:"shard"`
	// QueryIndex is the 0-based incremental-phase index of the trigger
	// query within its module.
	QueryIndex int `json:"query_index"`
	// Timestamp is the trigger query's virtual time.
	Timestamp int64 `json:"timestamp"`
	// WallTime is the wall-clock moment the switch was recorded,
	// nanoseconds since the Unix epoch.
	WallTime int64 `json:"wall_time"`
	// From and To name the displaced and adopted estimators.
	From string `json:"from"`
	To   string `json:"to"`
	// Reason is the trigger: "tau-breach" (sliding accuracy fell below τ),
	// "opportunity" (a strictly better estimator emerged while accuracy
	// was still fine) or "quarantine" (the active estimator's circuit
	// breaker tripped and a replacement was installed).
	Reason string `json:"reason"`
	// AccuracyAvg is the sliding accuracy average at decision time.
	AccuracyAvg float64 `json:"accuracy_avg"`
	// QueryType classifies the trigger query (spatial/keyword/hybrid).
	QueryType string `json:"query_type"`
	// Prefilled reports whether the adopted estimator had been warming
	// (vs a cold emergency switch).
	Prefilled bool `json:"prefilled"`
	// PrefillMode is how this deployment warms candidates: "async"
	// (background shard worker) or "inline" (on the query path).
	PrefillMode string `json:"prefill_mode"`
	// Features is the feature vector fed to the Hoeffding tree for the
	// consultation on the trigger query (nil when the tree had nothing
	// measured yet).
	Features []float64 `json:"features,omitempty"`
	// Recommended is the model's top recommendation at decision time with
	// its class probability; RunnerUp carries the second class, exposing
	// how close the call was (tie info).
	Recommended     string  `json:"recommended"`
	Confidence      float64 `json:"confidence"`
	RunnerUp        string  `json:"runner_up,omitempty"`
	RunnerUpConf    float64 `json:"runner_up_confidence,omitempty"`
	// QError is each estimator's rolling q-error at decision time — did
	// the recommendation actually win on the metric estimator papers judge
	// by?
	QError []QErrorSample `json:"qerror,omitempty"`
}

// DecisionTrace is a fixed-size ring buffer of switch decisions. Switches
// are rare (cooldown-gated, dozens per hour at most), so a small mutex —
// not a lock-free structure — is the honest implementation; Snapshot
// readers never block writers for more than a copy of the ring.
type DecisionTrace struct {
	mu    sync.Mutex
	ring  []Decision
	next  int
	total uint64
}

// NewDecisionTrace creates a trace keeping the last depth decisions
// (depth <= 0 takes DefaultTraceDepth).
func NewDecisionTrace(depth int) *DecisionTrace {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	return &DecisionTrace{ring: make([]Decision, 0, depth)}
}

// Record appends one decision, evicting the oldest when full. WallTime is
// stamped here if the caller left it zero.
func (t *DecisionTrace) Record(d Decision) {
	if d.WallTime == 0 {
		d.WallTime = time.Now().UnixNano()
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, d)
	} else {
		t.ring[t.next] = d
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Snapshot returns the retained decisions oldest-first.
func (t *DecisionTrace) Snapshot() []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Decision, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Restore replaces the trace contents with ds (oldest-first, as returned
// by Snapshot) and the lifetime total — the persistence layer's restore
// path. When ds exceeds the ring capacity only the newest entries are kept.
func (t *DecisionTrace) Restore(ds []Decision, total uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	depth := cap(t.ring)
	if len(ds) > depth {
		ds = ds[len(ds)-depth:]
	}
	t.ring = t.ring[:0]
	t.ring = append(t.ring, ds...)
	t.next = len(t.ring) % depth
	t.total = total
}

// Total returns the lifetime number of recorded decisions (including
// evicted ones).
func (t *DecisionTrace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Depth returns the ring capacity.
func (t *DecisionTrace) Depth() int { return cap(t.ring) }
