package telemetry

import (
	"sync"
	"testing"
)

func TestDecisionTraceRing(t *testing.T) {
	tr := NewDecisionTrace(4)
	if tr.Depth() != 4 {
		t.Fatalf("depth = %d", tr.Depth())
	}
	for i := 0; i < 6; i++ {
		tr.Record(Decision{QueryIndex: i, WallTime: int64(i) + 1})
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	// Oldest-first, keeping the last 4 of 6.
	for i, d := range got {
		if d.QueryIndex != i+2 {
			t.Errorf("slot %d = q%d, want q%d", i, d.QueryIndex, i+2)
		}
	}
	if tr.Total() != 6 {
		t.Errorf("total = %d, want 6", tr.Total())
	}
}

func TestDecisionTracePartial(t *testing.T) {
	tr := NewDecisionTrace(0) // default depth
	if tr.Depth() != DefaultTraceDepth {
		t.Fatalf("default depth = %d", tr.Depth())
	}
	if DefaultTraceDepth < 32 {
		t.Fatalf("default depth %d below the /statusz last-32 contract", DefaultTraceDepth)
	}
	tr.Record(Decision{From: "RSH", To: "H4096"})
	got := tr.Snapshot()
	if len(got) != 1 || got[0].To != "H4096" {
		t.Errorf("snapshot = %+v", got)
	}
	if got[0].WallTime == 0 {
		t.Errorf("wall time not stamped")
	}
}

// TestDecisionTraceConcurrent has many writers and a continuous snapshot
// reader. Run with -race.
func TestDecisionTraceConcurrent(t *testing.T) {
	tr := NewDecisionTrace(32)
	const workers, each = 8, 500
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if got := tr.Snapshot(); len(got) > 32 {
					t.Error("snapshot exceeds capacity")
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Record(Decision{Shard: w, QueryIndex: i})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if tr.Total() != workers*each {
		t.Errorf("total = %d, want %d", tr.Total(), workers*each)
	}
	if got := tr.Snapshot(); len(got) != 32 {
		t.Errorf("final snapshot len = %d, want 32", len(got))
	}
}
