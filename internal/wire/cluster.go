package wire

import "fmt"

// cluster.go is the multi-node extension of the frame format: the
// partition-map fetch exchange and the typed not-owner refusal that drives
// partition-map version negotiation.
//
// Payload layouts (after the frame header, all little-endian):
//
//	TMapFetch:    empty
//	TMapResult:   the encoded partition map verbatim (internal/cluster's
//	              CRC-framed format; wire treats it as an opaque blob)
//	TErrNotOwner: epoch u64, len u16, message bytes
//	TPong:        empty, or epoch u64 on cluster-configured nodes
//
// A node that receives a feed or range query it does not own under its
// current partition map answers TErrNotOwner carrying its map epoch. A
// router holding a stale map (older epoch) refetches with TMapFetch and
// retries; the exchange mirrors the retry-after negotiation of
// backpressure refusals, but the hint is "which map" rather than "when".

const (
	// TMapFetch requests the serving node's current partition map.
	TMapFetch Type = 0x05
	// TMapResult answers a TMapFetch with the encoded partition map.
	TMapResult Type = 0x45
	// TErrNotOwner refuses a feed or range query whose spatial footprint
	// is not owned by this node under its current partition map. The
	// payload carries the node's map epoch so a stale router knows to
	// refetch before retrying.
	TErrNotOwner Type = 0x7E
)

// NotOwnerError is a TErrNotOwner frame surfaced as a Go error: the
// serving node does not own the request's spatial footprint under its map.
type NotOwnerError struct {
	// Epoch is the refusing node's current partition-map epoch.
	Epoch uint64
	Msg   string
}

// Error implements error.
func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("server: not owner (map epoch %d): %s", e.Epoch, e.Msg)
}

// NotOwnerEpoch reports the refusing node's map epoch. Routing layers
// detect not-owner refusals through this method (via errors.As on an
// interface) so each layer can wrap the error in its own public type.
func (e *NotOwnerError) NotOwnerEpoch() uint64 { return e.Epoch }

// AppendMapFetch appends a TMapFetch frame.
func AppendMapFetch(buf []byte, id uint64) []byte { return appendFrame(buf, TMapFetch, id, nil) }

// AppendMapFetchTraced is AppendMapFetch carrying a trace ID (0 encodes an
// untraced frame, byte-identical to AppendMapFetch).
func AppendMapFetchTraced(buf []byte, id, traceID uint64) []byte {
	return appendFrameF(buf, TMapFetch, id, traceID, nil)
}

// AppendMapResult appends a TMapResult frame whose payload is the encoded
// partition map verbatim.
func AppendMapResult(buf []byte, id uint64, encoded []byte) []byte {
	return appendFrame(buf, TMapResult, id, func(b []byte) []byte { return append(b, encoded...) })
}

// DecodeMapResult returns the encoded partition map from a TMapResult
// payload. The bytes alias the payload; callers that retain them past the
// frame must copy. An empty payload is malformed — a node with no map
// answers TError, not an empty result.
func DecodeMapResult(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, errMalformed("empty map result")
	}
	return payload, nil
}

// AppendNotOwner appends a TErrNotOwner frame.
func AppendNotOwner(buf []byte, id uint64, epoch uint64, msg string) []byte {
	return appendFrame(buf, TErrNotOwner, id, func(b []byte) []byte {
		b = appendU64(b, epoch)
		if len(msg) > 0xFFFF {
			msg = msg[:0xFFFF]
		}
		b = appendU16(b, uint16(len(msg)))
		return append(b, msg...)
	})
}

// DecodeNotOwner decodes a TErrNotOwner payload.
func DecodeNotOwner(payload []byte) (*NotOwnerError, error) {
	c := &cursor{b: payload}
	epoch, err := c.u64()
	if err != nil {
		return nil, err
	}
	msg, err := c.str()
	if err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return &NotOwnerError{Epoch: epoch, Msg: msg}, nil
}

// AppendPongEpoch appends a TPong frame carrying the node's partition-map
// epoch. Non-clustered nodes answer the bare AppendPong instead; clients
// accept both (DecodePong).
func AppendPongEpoch(buf []byte, id uint64, epoch uint64) []byte {
	return appendFrame(buf, TPong, id, func(b []byte) []byte { return appendU64(b, epoch) })
}

// DecodePong decodes a TPong payload: hasEpoch is false for the empty
// pre-cluster payload, true when the node advertised its map epoch.
func DecodePong(payload []byte) (epoch uint64, hasEpoch bool, err error) {
	switch len(payload) {
	case 0:
		return 0, false, nil
	case 8:
		c := &cursor{b: payload}
		epoch, _ = c.u64()
		return epoch, true, nil
	default:
		return 0, false, errMalformed("pong payload %d bytes, want 0 or 8", len(payload))
	}
}
