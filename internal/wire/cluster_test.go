package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestMapFetchRoundTrip(t *testing.T) {
	frame := AppendMapFetch(nil, 9)
	h, payload := readOne(t, frame)
	if h.Type != TMapFetch || h.ID != 9 || len(payload) != 0 {
		t.Fatalf("map fetch decoded as %+v with %d payload bytes", h, len(payload))
	}
	if !TMapFetch.Request() {
		t.Fatal("TMapFetch must classify as a request")
	}

	traced := AppendMapFetchTraced(nil, 10, 0xfeed)
	h2, p2 := readOne(t, traced)
	tid, rest, err := SplitTrace(h2, p2)
	if err != nil || tid != 0xfeed || len(rest) != 0 {
		t.Fatalf("traced map fetch: tid=%x rest=%d err=%v", tid, len(rest), err)
	}
}

func TestMapResultRoundTrip(t *testing.T) {
	blob := []byte("LMAP\x01\x00 pretend map bytes")
	frame := AppendMapResult(nil, 9, blob)
	h, payload := readOne(t, frame)
	if h.Type != TMapResult {
		t.Fatalf("type %v, want map_result", h.Type)
	}
	got, err := DecodeMapResult(payload)
	if err != nil {
		t.Fatalf("DecodeMapResult: %v", err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("map blob mangled: %q", got)
	}
	if TMapResult.Request() {
		t.Fatal("TMapResult must classify as a response")
	}
	if _, err := DecodeMapResult(nil); err == nil {
		t.Fatal("empty map result must be rejected")
	}
}

func TestNotOwnerRoundTrip(t *testing.T) {
	frame := AppendNotOwner(nil, 3, 17, "cell 12 owned by node 2")
	h, payload := readOne(t, frame)
	if h.Type != TErrNotOwner {
		t.Fatalf("type %v, want err_not_owner", h.Type)
	}
	ne, err := DecodeNotOwner(payload)
	if err != nil {
		t.Fatalf("DecodeNotOwner: %v", err)
	}
	if ne.Epoch != 17 || ne.Msg != "cell 12 owned by node 2" {
		t.Fatalf("decoded %+v", ne)
	}
	if !strings.Contains(ne.Error(), "epoch 17") {
		t.Fatalf("Error() = %q, want the epoch in it", ne.Error())
	}
	if ne.NotOwnerEpoch() != 17 {
		t.Fatalf("NotOwnerEpoch() = %d", ne.NotOwnerEpoch())
	}
	// errors.As must find it through wrapping — the router's detection path.
	var got interface{ NotOwnerEpoch() uint64 }
	wrapped := errorsJoinLike(ne)
	if !errors.As(wrapped, &got) || got.NotOwnerEpoch() != 17 {
		t.Fatalf("errors.As failed through wrapping: %v", wrapped)
	}
}

// errorsJoinLike wraps e one level, as client code does with %w.
func errorsJoinLike(e error) error {
	return &wrappedErr{e}
}

type wrappedErr struct{ inner error }

func (w *wrappedErr) Error() string { return "request failed: " + w.inner.Error() }
func (w *wrappedErr) Unwrap() error { return w.inner }

func TestNotOwnerTruncatedPayloads(t *testing.T) {
	full := AppendNotOwner(nil, 3, 17, "short")
	payload := full[HeaderSize:]
	for n := 0; n < len(payload); n++ {
		if _, err := DecodeNotOwner(payload[:n]); err == nil {
			t.Errorf("DecodeNotOwner accepted %d-byte truncation", n)
		}
	}
}

func TestNotOwnerMsgTruncation(t *testing.T) {
	long := strings.Repeat("x", 0x10010)
	frame := AppendNotOwner(nil, 1, 2, long)
	ne, err := DecodeNotOwner(frame[HeaderSize:])
	if err != nil {
		t.Fatalf("DecodeNotOwner: %v", err)
	}
	if len(ne.Msg) != 0xFFFF {
		t.Fatalf("msg length %d, want capped at 65535", len(ne.Msg))
	}
}

func TestPongEpochRoundTrip(t *testing.T) {
	withEpoch := AppendPongEpoch(nil, 4, 99)
	h, payload := readOne(t, withEpoch)
	if h.Type != TPong {
		t.Fatalf("type %v, want pong", h.Type)
	}
	epoch, has, err := DecodePong(payload)
	if err != nil || !has || epoch != 99 {
		t.Fatalf("DecodePong = (%d, %v, %v), want (99, true, nil)", epoch, has, err)
	}

	plain := AppendPong(nil, 4)
	_, p2 := readOne(t, plain)
	epoch, has, err = DecodePong(p2)
	if err != nil || has || epoch != 0 {
		t.Fatalf("plain pong = (%d, %v, %v), want (0, false, nil)", epoch, has, err)
	}

	if _, _, err := DecodePong([]byte{1, 2, 3}); err == nil {
		t.Fatal("3-byte pong payload must be rejected")
	}
}
