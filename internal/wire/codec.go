package wire

import (
	"encoding/binary"
	"math"
	"time"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// Payload layouts (all little-endian, offsets after the frame header):
//
//	TFeedBatch:        count u32, then count× Object
//	Object:            id u64, x f64, y f64, ts i64, nkw u16, nkw× (len u16, bytes)
//	TEstimate:         deadline_ms u32, Query
//	TQueryBatch:       deadline_ms u32, count u32, then count× Query
//	Query:             flags u8 (bit0 = has range), [minx,miny,maxx,maxy f64],
//	                   ts i64, nkw u16, nkw× (len u16, bytes)
//	TPing:             empty
//	TAck:              accepted u32
//	TEstimateResult:   estimate f64
//	TQueryBatchResult: count u32, then count× (estimate f64, actual i64)
//	TPong:             empty
//	TError:            code u16, retry_after_ms u32, len u16, message bytes
//
// A deadline of 0 means "no deadline". Deadlines are relative millisecond
// budgets, not absolute wall-clock times, so the two sides need no clock
// agreement.

// appendFrame reserves a header, lets fill append the payload, then patches
// the header (length + CRC) in place.
func appendFrame(buf []byte, t Type, id uint64, fill func([]byte) []byte) []byte {
	start := len(buf)
	var hdr [HeaderSize]byte
	buf = append(buf, hdr[:]...)
	if fill != nil {
		buf = fill(buf)
	}
	PutHeader(buf[start:], Header{Type: t, ID: id, Length: uint32(len(buf) - start - HeaderSize)})
	return buf
}

func appendU16(buf []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(buf, v) }
func appendU32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }
func appendU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }
func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// cursor walks a payload with typed, bounds-checked reads.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) remain() int { return len(c.b) - c.off }

func (c *cursor) u16() (uint16, error) {
	if c.remain() < 2 {
		return 0, errMalformed("truncated payload at offset %d (want u16)", c.off)
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if c.remain() < 4 {
		return 0, errMalformed("truncated payload at offset %d (want u32)", c.off)
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if c.remain() < 8 {
		return 0, errMalformed("truncated payload at offset %d (want u64)", c.off)
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

func (c *cursor) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

func (c *cursor) str() (string, error) {
	n, err := c.u16()
	if err != nil {
		return "", err
	}
	if c.remain() < int(n) {
		return "", errMalformed("truncated string at offset %d (want %d bytes)", c.off, n)
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

// done rejects trailing garbage so a desynchronized encoder is caught at
// the first frame, not after the stream drifts.
func (c *cursor) done() error {
	if c.remain() != 0 {
		return errMalformed("%d trailing bytes after payload", c.remain())
	}
	return nil
}

// ---- objects ----

func appendObject(buf []byte, o *stream.Object) []byte {
	buf = appendU64(buf, o.ID)
	buf = appendF64(buf, o.Loc.X)
	buf = appendF64(buf, o.Loc.Y)
	buf = appendU64(buf, uint64(o.Timestamp))
	buf = appendU16(buf, uint16(len(o.Keywords)))
	for _, kw := range o.Keywords {
		buf = appendU16(buf, uint16(len(kw)))
		buf = append(buf, kw...)
	}
	return buf
}

// objectWireMin is the smallest possible encoded object (no keywords); it
// bounds the plausibility check on batch counts.
const objectWireMin = 8 + 8 + 8 + 8 + 2

func decodeObject(c *cursor, o *stream.Object) error {
	var err error
	if o.ID, err = c.u64(); err != nil {
		return err
	}
	if o.Loc.X, err = c.f64(); err != nil {
		return err
	}
	if o.Loc.Y, err = c.f64(); err != nil {
		return err
	}
	ts, err := c.u64()
	if err != nil {
		return err
	}
	o.Timestamp = int64(ts)
	nkw, err := c.u16()
	if err != nil {
		return err
	}
	if int(nkw)*2 > c.remain() {
		return errMalformed("object declares %d keywords, only %d bytes remain", nkw, c.remain())
	}
	// The keyword slice is always freshly allocated, never reused from a
	// previous decode: engines retain it after insert (reservoir samples
	// share the inserted object's keyword slice), so recycling the backing
	// array would mutate live estimator state.
	if nkw == 0 {
		o.Keywords = nil
	} else {
		o.Keywords = make([]string, nkw)
	}
	for i := range o.Keywords {
		if o.Keywords[i], err = c.str(); err != nil {
			return err
		}
	}
	return nil
}

// AppendFeedBatch appends a complete TFeedBatch frame to buf.
func AppendFeedBatch(buf []byte, id uint64, objs []stream.Object) []byte {
	return appendFrame(buf, TFeedBatch, id, func(b []byte) []byte {
		b = appendU32(b, uint32(len(objs)))
		for i := range objs {
			b = appendObject(b, &objs[i])
		}
		return b
	})
}

// DecodeFeedBatch decodes a TFeedBatch payload, reusing dst's backing
// array when it is large enough; each object's keyword slice is freshly
// allocated because engines retain it past the call. A zero-length batch
// is valid (an empty ingest is acknowledged like any other).
func DecodeFeedBatch(payload []byte, dst []stream.Object) ([]stream.Object, error) {
	c := &cursor{b: payload}
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if int64(n)*objectWireMin > int64(c.remain()) {
		return nil, errMalformed("batch declares %d objects, only %d bytes remain", n, c.remain())
	}
	if cap(dst) >= int(n) {
		dst = dst[:n]
	} else {
		dst = make([]stream.Object, n)
	}
	for i := range dst {
		if err := decodeObject(c, &dst[i]); err != nil {
			return nil, err
		}
	}
	return dst, c.done()
}

// ---- queries ----

const queryHasRange = 1 << 0

func appendQuery(buf []byte, q *stream.Query) []byte {
	var flags byte
	if q.HasRange {
		flags |= queryHasRange
	}
	buf = append(buf, flags)
	if q.HasRange {
		buf = appendF64(buf, q.Range.MinX)
		buf = appendF64(buf, q.Range.MinY)
		buf = appendF64(buf, q.Range.MaxX)
		buf = appendF64(buf, q.Range.MaxY)
	}
	buf = appendU64(buf, uint64(q.Timestamp))
	buf = appendU16(buf, uint16(len(q.Keywords)))
	for _, kw := range q.Keywords {
		buf = appendU16(buf, uint16(len(kw)))
		buf = append(buf, kw...)
	}
	return buf
}

// queryWireMin is the smallest possible encoded query (no range, no
// keywords).
const queryWireMin = 1 + 8 + 2

func decodeQuery(c *cursor, q *stream.Query) error {
	if c.remain() < 1 {
		return errMalformed("truncated query at offset %d", c.off)
	}
	flags := c.b[c.off]
	c.off++
	if flags&^queryHasRange != 0 {
		return errMalformed("unknown query flags 0x%02x", flags)
	}
	q.HasRange = flags&queryHasRange != 0
	q.Range = geo.Rect{}
	var err error
	if q.HasRange {
		if q.Range.MinX, err = c.f64(); err != nil {
			return err
		}
		if q.Range.MinY, err = c.f64(); err != nil {
			return err
		}
		if q.Range.MaxX, err = c.f64(); err != nil {
			return err
		}
		if q.Range.MaxY, err = c.f64(); err != nil {
			return err
		}
	}
	ts, err := c.u64()
	if err != nil {
		return err
	}
	q.Timestamp = int64(ts)
	nkw, err := c.u16()
	if err != nil {
		return err
	}
	if int(nkw)*2 > c.remain() {
		return errMalformed("query declares %d keywords, only %d bytes remain", nkw, c.remain())
	}
	if cap(q.Keywords) >= int(nkw) {
		q.Keywords = q.Keywords[:nkw]
	} else {
		q.Keywords = make([]string, nkw)
	}
	for i := range q.Keywords {
		if q.Keywords[i], err = c.str(); err != nil {
			return err
		}
	}
	return nil
}

// AppendEstimate appends a complete TEstimate frame. deadline is the
// request's relative latency budget (0 = none).
func AppendEstimate(buf []byte, id uint64, deadlineMS uint32, q *stream.Query) []byte {
	return appendFrame(buf, TEstimate, id, func(b []byte) []byte {
		b = appendU32(b, deadlineMS)
		return appendQuery(b, q)
	})
}

// DecodeEstimate decodes a TEstimate payload.
func DecodeEstimate(payload []byte) (deadlineMS uint32, q stream.Query, err error) {
	c := &cursor{b: payload}
	if deadlineMS, err = c.u32(); err != nil {
		return 0, q, err
	}
	if err = decodeQuery(c, &q); err != nil {
		return 0, q, err
	}
	return deadlineMS, q, c.done()
}

// AppendQueryBatch appends a complete TQueryBatch frame.
func AppendQueryBatch(buf []byte, id uint64, deadlineMS uint32, qs []stream.Query) []byte {
	return appendFrame(buf, TQueryBatch, id, func(b []byte) []byte {
		b = appendU32(b, deadlineMS)
		b = appendU32(b, uint32(len(qs)))
		for i := range qs {
			b = appendQuery(b, &qs[i])
		}
		return b
	})
}

// DecodeQueryBatch decodes a TQueryBatch payload into dst.
func DecodeQueryBatch(payload []byte, dst []stream.Query) (deadlineMS uint32, qs []stream.Query, err error) {
	c := &cursor{b: payload}
	if deadlineMS, err = c.u32(); err != nil {
		return 0, nil, err
	}
	n, err := c.u32()
	if err != nil {
		return 0, nil, err
	}
	if int64(n)*queryWireMin > int64(c.remain()) {
		return 0, nil, errMalformed("batch declares %d queries, only %d bytes remain", n, c.remain())
	}
	if cap(dst) >= int(n) {
		dst = dst[:n]
	} else {
		dst = make([]stream.Query, n)
	}
	for i := range dst {
		if err := decodeQuery(c, &dst[i]); err != nil {
			return 0, nil, err
		}
	}
	return deadlineMS, dst, c.done()
}

// ---- simple frames ----

// AppendPing appends a TPing frame.
func AppendPing(buf []byte, id uint64) []byte { return appendFrame(buf, TPing, id, nil) }

// AppendPong appends a TPong frame.
func AppendPong(buf []byte, id uint64) []byte { return appendFrame(buf, TPong, id, nil) }

// AppendAck appends a TAck frame acknowledging accepted objects.
func AppendAck(buf []byte, id uint64, accepted uint32) []byte {
	return appendFrame(buf, TAck, id, func(b []byte) []byte { return appendU32(b, accepted) })
}

// DecodeAck decodes a TAck payload.
func DecodeAck(payload []byte) (uint32, error) {
	c := &cursor{b: payload}
	n, err := c.u32()
	if err != nil {
		return 0, err
	}
	return n, c.done()
}

// AppendEstimateResult appends a TEstimateResult frame.
func AppendEstimateResult(buf []byte, id uint64, estimate float64) []byte {
	return appendFrame(buf, TEstimateResult, id, func(b []byte) []byte { return appendF64(b, estimate) })
}

// DecodeEstimateResult decodes a TEstimateResult payload.
func DecodeEstimateResult(payload []byte) (float64, error) {
	c := &cursor{b: payload}
	v, err := c.f64()
	if err != nil {
		return 0, err
	}
	return v, c.done()
}

// AppendQueryBatchResult appends a TQueryBatchResult frame. estimates and
// actuals must be the same length.
func AppendQueryBatchResult(buf []byte, id uint64, estimates []float64, actuals []int) []byte {
	return appendFrame(buf, TQueryBatchResult, id, func(b []byte) []byte {
		b = appendU32(b, uint32(len(estimates)))
		for i := range estimates {
			b = appendF64(b, estimates[i])
			b = appendU64(b, uint64(int64(actuals[i])))
		}
		return b
	})
}

// DecodeQueryBatchResult decodes a TQueryBatchResult payload, reusing the
// destination slices when large enough.
func DecodeQueryBatchResult(payload []byte, dstE []float64, dstA []int) ([]float64, []int, error) {
	c := &cursor{b: payload}
	n, err := c.u32()
	if err != nil {
		return nil, nil, err
	}
	if int64(n)*16 > int64(c.remain()) {
		return nil, nil, errMalformed("result declares %d entries, only %d bytes remain", n, c.remain())
	}
	if cap(dstE) >= int(n) {
		dstE = dstE[:n]
	} else {
		dstE = make([]float64, n)
	}
	if cap(dstA) >= int(n) {
		dstA = dstA[:n]
	} else {
		dstA = make([]int, n)
	}
	for i := 0; i < int(n); i++ {
		if dstE[i], err = c.f64(); err != nil {
			return nil, nil, err
		}
		a, err := c.u64()
		if err != nil {
			return nil, nil, err
		}
		dstA[i] = int(int64(a))
	}
	return dstE, dstA, c.done()
}

// AppendError appends a TError frame.
func AppendError(buf []byte, id uint64, code Code, retryAfterMS uint32, msg string) []byte {
	return appendFrame(buf, TError, id, func(b []byte) []byte {
		b = appendU16(b, uint16(code))
		b = appendU32(b, retryAfterMS)
		if len(msg) > math.MaxUint16 {
			msg = msg[:math.MaxUint16]
		}
		b = appendU16(b, uint16(len(msg)))
		return append(b, msg...)
	})
}

// DecodeError decodes a TError payload into a RemoteError.
func DecodeError(payload []byte) (*RemoteError, error) {
	c := &cursor{b: payload}
	code, err := c.u16()
	if err != nil {
		return nil, err
	}
	retryMS, err := c.u32()
	if err != nil {
		return nil, err
	}
	msg, err := c.str()
	if err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return &RemoteError{
		Code:       Code(code),
		RetryAfter: time.Duration(retryMS) * time.Millisecond,
		Msg:        msg,
	}, nil
}
