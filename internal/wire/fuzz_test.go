package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// FuzzDecodeFrame throws arbitrary bytes at the full frame path — header
// parse, payload decode for every request type — and asserts the
// invariants the serving layer depends on: no panics, every failure is a
// typed *ProtoError or a clean EOF class, and anything that decodes
// re-encodes to the identical bytes (so the codec cannot silently
// reinterpret a frame).
//
// The checked-in corpus under testdata/fuzz/FuzzDecodeFrame pins the six
// interesting shapes: truncated header, bad header CRC, oversize declared
// length, version skew, zero-length batch, and a valid frame followed by
// pipelined garbage.
func FuzzDecodeFrame(f *testing.F) {
	// A healthy frame of each request type, so mutation starts from
	// parseable inputs too.
	obj := stream.Object{ID: 1, Timestamp: 5, Keywords: []string{"fire"}}
	obj.Loc.X, obj.Loc.Y = -118.24, 34.05
	q := stream.HybridQ(geo.CenteredRect(obj.Loc, 1, 1), []string{"fire"}, 6)
	f.Add(AppendFeedBatch(nil, 1, []stream.Object{obj}))
	f.Add(AppendEstimate(nil, 2, 100, &q))
	f.Add(AppendQueryBatch(nil, 3, 0, []stream.Query{q}))
	f.Add(AppendPing(nil, 4))
	f.Add(AppendNotOwner(nil, 5, 7, "cell 12 owned by node 2"))
	// A not-owner frame whose payload is cut mid-epoch, so the decoder's
	// truncation path starts in the corpus too.
	short := AppendNotOwner(nil, 6, 9, "")
	short = short[:HeaderSize+4]
	PutHeader(short, Header{Type: TErrNotOwner, ID: 6, Length: 4})
	f.Add(short)
	f.Add(AppendMapFetch(nil, 7))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bufio.NewReader(bytes.NewReader(data)), 1<<16)
		for {
			h, payload, err := fr.Next()
			if err != nil {
				var pe *ProtoError
				if err == io.EOF || err == io.ErrUnexpectedEOF || errors.As(err, &pe) {
					return
				}
				t.Fatalf("untyped frame error: %T %v", err, err)
			}
			switch h.Type {
			case TFeedBatch:
				objs, err := DecodeFeedBatch(payload, nil)
				if err != nil {
					assertProto(t, err)
					return
				}
				if again := AppendFeedBatch(nil, h.ID, objs); !bytes.Equal(again[HeaderSize:], payload) {
					t.Fatal("feed batch re-encode differs")
				}
			case TEstimate:
				deadline, q, err := DecodeEstimate(payload)
				if err != nil {
					assertProto(t, err)
					return
				}
				if again := AppendEstimate(nil, h.ID, deadline, &q); !bytes.Equal(again[HeaderSize:], payload) {
					t.Fatal("estimate re-encode differs")
				}
			case TQueryBatch:
				deadline, qs, err := DecodeQueryBatch(payload, nil)
				if err != nil {
					assertProto(t, err)
					return
				}
				if again := AppendQueryBatch(nil, h.ID, deadline, qs); !bytes.Equal(again[HeaderSize:], payload) {
					t.Fatal("query batch re-encode differs")
				}
			case TError:
				if _, err := DecodeError(payload); err != nil {
					assertProto(t, err)
					return
				}
			case TErrNotOwner:
				no, err := DecodeNotOwner(payload)
				if err != nil {
					assertProto(t, err)
					return
				}
				if again := AppendNotOwner(nil, h.ID, no.Epoch, no.Msg); !bytes.Equal(again[HeaderSize:], payload) {
					t.Fatal("not-owner re-encode differs")
				}
			case TPong:
				if _, _, err := DecodePong(payload); err != nil {
					assertProto(t, err)
					return
				}
			default:
				// Unknown or response types: the server answers with
				// CodeUnknownType; nothing to decode here.
			}
		}
	})
}

func assertProto(t *testing.T, err error) {
	t.Helper()
	var pe *ProtoError
	if !errors.As(err, &pe) {
		t.Fatalf("decode failure is not a *ProtoError: %T %v", err, err)
	}
}
