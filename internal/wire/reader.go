package wire

import (
	"bufio"
	"io"
)

// FrameReader reads frames off a buffered stream, reusing one payload
// buffer across reads. Not safe for concurrent use; each connection owns
// one.
type FrameReader struct {
	r          *bufio.Reader
	maxPayload int
	hdr        [HeaderSize]byte
	payload    []byte
}

// NewFrameReader wraps r. maxPayload bounds accepted payload lengths
// (≤0 = DefaultMaxPayload).
func NewFrameReader(r *bufio.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &FrameReader{r: r, maxPayload: maxPayload}
}

// Buffered reports how many undelivered bytes sit in the underlying
// buffer — the serving layer uses it to decide whether more pipelined
// frames are already waiting.
func (fr *FrameReader) Buffered() int { return fr.r.Buffered() }

// PeekHeader parses the next frame's header without consuming it, when an
// entire header is already buffered. ok is false if fewer than HeaderSize
// bytes are waiting or the buffered header is malformed — either way the
// caller should fall back to Next, which will block or surface the typed
// error. The serving layer uses this to coalesce pipelined feed frames:
// peek, and only consume when the follow-on frame is another feed that is
// fully buffered.
func (fr *FrameReader) PeekHeader() (Header, bool) {
	if fr.r.Buffered() < HeaderSize {
		return Header{}, false
	}
	buf, err := fr.r.Peek(HeaderSize)
	if err != nil {
		return Header{}, false
	}
	h, err := ParseHeader(buf, fr.maxPayload)
	if err != nil {
		return Header{}, false
	}
	return h, true
}

// Next reads one frame. The returned payload aliases the reader's internal
// buffer and is valid only until the next call. io.EOF is returned clean
// only at a frame boundary; a partial frame yields io.ErrUnexpectedEOF.
// Malformed headers yield typed *ProtoError values; after one, the stream
// is desynchronized and the connection should be dropped after reporting.
func (fr *FrameReader) Next() (Header, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return Header{}, nil, io.EOF
		}
		return Header{}, nil, io.ErrUnexpectedEOF
	}
	h, err := ParseHeader(fr.hdr[:], fr.maxPayload)
	if err != nil {
		return Header{}, nil, err
	}
	if int(h.Length) > cap(fr.payload) {
		fr.payload = make([]byte, h.Length)
	}
	fr.payload = fr.payload[:h.Length]
	if _, err := io.ReadFull(fr.r, fr.payload); err != nil {
		return Header{}, nil, io.ErrUnexpectedEOF
	}
	return h, fr.payload, nil
}
