package wire

import (
	"encoding/binary"

	"github.com/spatiotext/latest/internal/stream"
)

// trace.go is the tracing extension of the frame format. The 24-byte
// header's flags field was reserved-must-be-zero through protocol version
// 1's first deployment; tracing claims its lowest bit without a version
// bump. When FlagTrace is set on a REQUEST frame, the payload begins with
// an 8-byte little-endian trace ID and the type-specific payload follows
// it; the declared Length covers both. Responses never carry the flag —
// the client correlates responses to requests (and therefore to trace IDs)
// by the echoed request id, so echoing the trace would spend eight bytes
// per response on information the receiver already has.
//
// Decoders reject any unknown flag bit with CodeMalformed, exactly as the
// reserved-must-be-zero rule did, so an old server confronted with a
// traced frame refuses it loudly rather than misparsing the payload, and a
// future flag bit gets the same safety.

// FlagTrace marks a request whose payload is prefixed with an 8-byte trace
// ID.
const FlagTrace uint16 = 1 << 0

// KnownFlags is the set of flag bits this build understands; all others
// are rejected as malformed.
const KnownFlags uint16 = FlagTrace

// traceWireSize is the size of the trace-ID payload prefix.
const traceWireSize = 8

// SplitTrace validates h.Flags and splits the trace-ID prefix from a
// request payload: it returns the trace ID (0 when untraced) and the
// type-specific payload that the Decode* functions consume. Unknown flag
// bits and a traced payload too short for its prefix are CodeMalformed.
func SplitTrace(h Header, payload []byte) (traceID uint64, rest []byte, err error) {
	if h.Flags&^KnownFlags != 0 {
		return 0, nil, errMalformed("unknown header flags 0x%04x", h.Flags&^KnownFlags)
	}
	if h.Flags&FlagTrace == 0 {
		return 0, payload, nil
	}
	if len(payload) < traceWireSize {
		return 0, nil, errMalformed("traced frame payload %d bytes, want >= %d", len(payload), traceWireSize)
	}
	return binary.LittleEndian.Uint64(payload), payload[traceWireSize:], nil
}

// appendFrameF is appendFrame with explicit header flags; a non-zero
// traceID implies FlagTrace and writes the payload prefix.
func appendFrameF(buf []byte, t Type, id, traceID uint64, fill func([]byte) []byte) []byte {
	start := len(buf)
	var hdr [HeaderSize]byte
	buf = append(buf, hdr[:]...)
	var flags uint16
	if traceID != 0 {
		flags |= FlagTrace
		buf = appendU64(buf, traceID)
	}
	if fill != nil {
		buf = fill(buf)
	}
	PutHeader(buf[start:], Header{Type: t, Flags: flags, ID: id,
		Length: uint32(len(buf) - start - HeaderSize)})
	return buf
}

// AppendFeedBatchTraced is AppendFeedBatch carrying a trace ID (0 encodes
// an untraced frame, byte-identical to AppendFeedBatch).
func AppendFeedBatchTraced(buf []byte, id, traceID uint64, objs []stream.Object) []byte {
	return appendFrameF(buf, TFeedBatch, id, traceID, func(b []byte) []byte {
		b = appendU32(b, uint32(len(objs)))
		for i := range objs {
			b = appendObject(b, &objs[i])
		}
		return b
	})
}

// AppendEstimateTraced is AppendEstimate carrying a trace ID.
func AppendEstimateTraced(buf []byte, id, traceID uint64, deadlineMS uint32, q *stream.Query) []byte {
	return appendFrameF(buf, TEstimate, id, traceID, func(b []byte) []byte {
		b = appendU32(b, deadlineMS)
		return appendQuery(b, q)
	})
}

// AppendQueryBatchTraced is AppendQueryBatch carrying a trace ID.
func AppendQueryBatchTraced(buf []byte, id, traceID uint64, deadlineMS uint32, qs []stream.Query) []byte {
	return appendFrameF(buf, TQueryBatch, id, traceID, func(b []byte) []byte {
		b = appendU32(b, deadlineMS)
		b = appendU32(b, uint32(len(qs)))
		for i := range qs {
			b = appendQuery(b, &qs[i])
		}
		return b
	})
}

// AppendPingTraced is AppendPing carrying a trace ID.
func AppendPingTraced(buf []byte, id, traceID uint64) []byte {
	return appendFrameF(buf, TPing, id, traceID, nil)
}
