package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/spatiotext/latest/internal/stream"
)

// TestTracedBuildersRoundTrip: every Append*Traced builder sets FlagTrace,
// SplitTrace recovers the exact ID, and the remaining payload decodes to the
// original request.
func TestTracedBuildersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := []stream.Object{randObject(rng), randObject(rng)}
	q := randQuery(rng)
	qs := []stream.Query{randQuery(rng), randQuery(rng), randQuery(rng)}

	cases := []struct {
		name  string
		typ   Type
		build func(id, traceID uint64) []byte
	}{
		{"ping", TPing, func(id, tr uint64) []byte { return AppendPingTraced(nil, id, tr) }},
		{"feed", TFeedBatch, func(id, tr uint64) []byte { return AppendFeedBatchTraced(nil, id, tr, objs) }},
		{"estimate", TEstimate, func(id, tr uint64) []byte { return AppendEstimateTraced(nil, id, tr, 250, &q) }},
		{"query", TQueryBatch, func(id, tr uint64) []byte { return AppendQueryBatchTraced(nil, id, tr, 250, qs) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const id, traceID uint64 = 42, 0xfeedfacecafebeef
			frame := tc.build(id, traceID)
			h, payload := readOne(t, frame)
			if h.Type != tc.typ || h.ID != id || h.Flags != FlagTrace {
				t.Fatalf("header %+v", h)
			}
			gotTrace, rest, err := SplitTrace(h, payload)
			if err != nil {
				t.Fatalf("SplitTrace: %v", err)
			}
			if gotTrace != traceID {
				t.Fatalf("trace ID %#x != %#x", gotTrace, traceID)
			}
			switch tc.typ {
			case TFeedBatch:
				got, err := DecodeFeedBatch(rest, nil)
				if err != nil || len(got) != len(objs) {
					t.Fatalf("decode feed: %v (%d objs)", err, len(got))
				}
			case TEstimate:
				dl, gq, err := DecodeEstimate(rest)
				if err != nil || dl != 250 {
					t.Fatalf("decode estimate: %v dl=%d", err, dl)
				}
				if gq.Timestamp != q.Timestamp {
					t.Fatalf("query %+v != %+v", gq, q)
				}
			case TQueryBatch:
				dl, gqs, err := DecodeQueryBatch(rest, nil)
				if err != nil || dl != 250 || len(gqs) != len(qs) {
					t.Fatalf("decode query batch: %v dl=%d n=%d", err, dl, len(gqs))
				}
			case TPing:
				if len(rest) != 0 {
					t.Fatalf("ping payload %d bytes after trace", len(rest))
				}
			}
		})
	}
}

// TestTracedZeroIDIsUntraced: trace ID 0 encodes the plain frame, byte for
// byte — existing captures, goldens and old servers see no difference.
func TestTracedZeroIDIsUntraced(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	objs := []stream.Object{randObject(rng)}
	q := randQuery(rng)
	qs := []stream.Query{randQuery(rng)}

	pairs := []struct {
		name   string
		traced []byte
		plain  []byte
	}{
		{"ping", AppendPingTraced(nil, 9, 0), AppendPing(nil, 9)},
		{"feed", AppendFeedBatchTraced(nil, 9, 0, objs), AppendFeedBatch(nil, 9, objs)},
		{"estimate", AppendEstimateTraced(nil, 9, 0, 100, &q), AppendEstimate(nil, 9, 100, &q)},
		{"query", AppendQueryBatchTraced(nil, 9, 0, 100, qs), AppendQueryBatch(nil, 9, 100, qs)},
	}
	for _, p := range pairs {
		if !bytes.Equal(p.traced, p.plain) {
			t.Errorf("%s: traceID 0 frame differs from untraced builder", p.name)
		}
	}
}

// TestSplitTraceUntracedPassThrough: a flagless frame passes its payload
// through untouched with trace ID 0.
func TestSplitTraceUntracedPassThrough(t *testing.T) {
	payload := []byte{1, 2, 3}
	id, rest, err := SplitTrace(Header{Type: TEstimate}, payload)
	if err != nil || id != 0 {
		t.Fatalf("SplitTrace = %d, %v", id, err)
	}
	if !reflect.DeepEqual(rest, payload) {
		t.Fatalf("payload altered: %v", rest)
	}
}

// TestSplitTraceRejections: unknown flag bits and short traced payloads are
// malformed — the reserved-must-be-zero contract with old peers.
func TestSplitTraceRejections(t *testing.T) {
	if _, _, err := SplitTrace(Header{Flags: 1 << 5}, nil); protoCode(t, err) != CodeMalformed {
		t.Fatalf("unknown flag: %v", err)
	}
	if _, _, err := SplitTrace(Header{Flags: FlagTrace | 1<<9}, make([]byte, 16)); protoCode(t, err) != CodeMalformed {
		t.Fatalf("mixed unknown flag: %v", err)
	}
	if _, _, err := SplitTrace(Header{Flags: FlagTrace}, make([]byte, 7)); protoCode(t, err) != CodeMalformed {
		t.Fatalf("short traced payload: %v", err)
	}
}

// TestFrameReaderRejectsUnknownFlags: the reader itself delivers frames with
// any flags (validation is SplitTrace's job at dispatch), but PutHeader must
// round-trip the flag bits for that to be safe.
func TestHeaderFlagsRoundTrip(t *testing.T) {
	frame := AppendPingTraced(nil, 3, 0xabc)
	h, _ := readOne(t, frame)
	if h.Flags != FlagTrace {
		t.Fatalf("flags = %#x", h.Flags)
	}
}
