// Package wire is the binary protocol latestd speaks on its hot path: a
// length-prefixed little-endian frame format carrying feed batches,
// estimation queries and their results over a plain TCP stream.
//
// Every frame is a fixed 24-byte header followed by a type-specific
// payload:
//
//	offset  size  field
//	0       4     magic "LTST"
//	4       1     protocol version (currently 1)
//	5       1     frame type
//	6       2     flags (bit 0 = FlagTrace: payload starts with an 8-byte
//	              trace ID; all other bits reserved, must be zero)
//	8       8     request id (echoed verbatim in the response)
//	16      4     payload length in bytes
//	20      4     IEEE CRC32 of bytes [0,20)
//
// All integers are little-endian; floats are IEEE-754 bits little-endian.
// The CRC covers only the header: it exists to reject desynchronized or
// corrupted framing cheaply before the length field is trusted, not to
// checksum bulk payload bytes (TCP already does that; a reproducible
// corruption there is caught by the engine's input validation instead).
//
// The codec never allocates on the encode path beyond growing the caller's
// buffer — callers are expected to reuse buffers across frames, and
// GetBuf/PutBuf provide a pooled source. Decoding reuses caller-provided
// object/query slices the same way, with one deliberate exception: each
// decoded object's keyword slice is freshly allocated (engines retain it
// after insert, so it must never alias a recycled buffer). Strings are
// per-decode allocations regardless.
//
// Decode errors are all typed *ProtoError values carrying the error code a
// server should echo back in a TError frame, so the serving layer can turn
// any malformed input into a typed rejection without interpreting reasons.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"
)

// Version is the protocol version this package encodes. Decoders reject
// frames with a different version byte with CodeVersionSkew — the protocol
// has no negotiation; both sides must run the same major version.
const Version = 1

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 24

// DefaultMaxPayload bounds the payload length a reader accepts before
// allocating. Frames declaring more are rejected with CodeTooLarge; the
// bound exists so a corrupt or hostile length field cannot drive a
// multi-gigabyte allocation.
const DefaultMaxPayload = 8 << 20 // 8 MiB

// magic is the first four bytes of every frame: "LTST".
var magic = [4]byte{'L', 'T', 'S', 'T'}

// Type identifies a frame's meaning. Requests occupy 0x01..0x3F, responses
// 0x41..0x7E, and TError 0x7F answers any request.
type Type uint8

const (
	// TFeedBatch carries a batch of stream objects to ingest.
	TFeedBatch Type = 0x01
	// TEstimate carries one query to answer approximately (the server
	// closes the feedback loop with its own exact window answer).
	TEstimate Type = 0x02
	// TQueryBatch carries a batch of queries for full
	// estimate+execute+observe cycles.
	TQueryBatch Type = 0x03
	// TPing is a liveness/no-op request.
	TPing Type = 0x04
	// TMapFetch and its TMapResult/TErrNotOwner companions are the cluster
	// extension, defined in cluster.go (TMapFetch = 0x05).

	// TAck acknowledges a TFeedBatch with the accepted object count.
	TAck Type = 0x41
	// TEstimateResult answers a TEstimate with one float64.
	TEstimateResult Type = 0x42
	// TQueryBatchResult answers a TQueryBatch with parallel
	// estimate/actual arrays.
	TQueryBatchResult Type = 0x43
	// TPong answers a TPing.
	TPong Type = 0x44

	// TError answers any request with a typed error: a code, an optional
	// retry-after hint, and a human-readable message.
	TError Type = 0x7F
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TFeedBatch:
		return "feed_batch"
	case TEstimate:
		return "estimate"
	case TQueryBatch:
		return "query_batch"
	case TPing:
		return "ping"
	case TMapFetch:
		return "map_fetch"
	case TMapResult:
		return "map_result"
	case TErrNotOwner:
		return "err_not_owner"
	case TAck:
		return "ack"
	case TEstimateResult:
		return "estimate_result"
	case TQueryBatchResult:
		return "query_batch_result"
	case TPong:
		return "pong"
	case TError:
		return "error"
	default:
		return fmt.Sprintf("Type(0x%02x)", uint8(t))
	}
}

// request reports whether t is a request type a server should accept.
func (t Type) Request() bool { return t >= TFeedBatch && t <= TMapFetch }

// Code classifies protocol-level failures. Codes travel in TError frames
// and in *ProtoError decode errors.
type Code uint16

const (
	// CodeMalformed: the frame or payload failed to parse.
	CodeMalformed Code = 1
	// CodeTooLarge: the declared payload length exceeds the reader's cap.
	CodeTooLarge Code = 2
	// CodeVersionSkew: the version byte does not match Version.
	CodeVersionSkew Code = 3
	// CodeUnknownType: the frame type is not a request the server knows.
	CodeUnknownType Code = 4
	// CodeBackpressure: the connection's in-flight window is full; retry
	// after the hinted delay.
	CodeBackpressure Code = 5
	// CodeDraining: the server is shutting down gracefully; retry against
	// another instance (or the same one after the hinted delay).
	CodeDraining Code = 6
	// CodeDeadlineExceeded: the request's deadline budget elapsed before
	// the engine answered.
	CodeDeadlineExceeded Code = 7
	// CodeInternal: the engine failed in a way the guard layer contained.
	CodeInternal Code = 8
)

// String implements fmt.Stringer.
func (c Code) String() string {
	switch c {
	case CodeMalformed:
		return "malformed"
	case CodeTooLarge:
		return "too_large"
	case CodeVersionSkew:
		return "version_skew"
	case CodeUnknownType:
		return "unknown_type"
	case CodeBackpressure:
		return "backpressure"
	case CodeDraining:
		return "draining"
	case CodeDeadlineExceeded:
		return "deadline_exceeded"
	case CodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("Code(%d)", uint16(c))
	}
}

// Retryable reports whether a request failing with this code can be safely
// reissued later: the server refused it before any engine state changed.
func (c Code) Retryable() bool { return c == CodeBackpressure || c == CodeDraining }

// ProtoError is a typed protocol violation detected while decoding. The
// Code is what a server echoes back in a TError frame.
type ProtoError struct {
	Code   Code
	Reason string
}

// Error implements error.
func (e *ProtoError) Error() string { return "wire: " + e.Code.String() + ": " + e.Reason }

func errMalformed(format string, args ...any) error {
	return &ProtoError{Code: CodeMalformed, Reason: fmt.Sprintf(format, args...)}
}

// Header is a decoded frame header.
type Header struct {
	Type   Type
	Flags  uint16
	ID     uint64
	Length uint32
}

// castagnoli vs IEEE: IEEE is universally available in hash/crc32 without a
// table build at each call; the header is 20 bytes so either is free.
var crcTable = crc32.IEEETable

// PutHeader encodes h into buf, which must be at least HeaderSize long.
func PutHeader(buf []byte, h Header) {
	_ = buf[HeaderSize-1]
	copy(buf[0:4], magic[:])
	buf[4] = Version
	buf[5] = byte(h.Type)
	binary.LittleEndian.PutUint16(buf[6:8], h.Flags)
	binary.LittleEndian.PutUint64(buf[8:16], h.ID)
	binary.LittleEndian.PutUint32(buf[16:20], h.Length)
	binary.LittleEndian.PutUint32(buf[20:24], crc32.Checksum(buf[0:20], crcTable))
}

// ParseHeader decodes and verifies a frame header. maxPayload bounds the
// declared payload length (≤0 means DefaultMaxPayload). Errors are typed
// *ProtoError values.
func ParseHeader(buf []byte, maxPayload int) (Header, error) {
	if len(buf) < HeaderSize {
		return Header{}, errMalformed("truncated header: %d bytes", len(buf))
	}
	if [4]byte(buf[0:4]) != magic {
		return Header{}, errMalformed("bad magic %q", buf[0:4])
	}
	if got := binary.LittleEndian.Uint32(buf[20:24]); got != crc32.Checksum(buf[0:20], crcTable) {
		return Header{}, errMalformed("header CRC mismatch")
	}
	// CRC passes, so the header bytes are what the peer sent — version and
	// length complaints are now meaningful.
	if buf[4] != Version {
		return Header{}, &ProtoError{Code: CodeVersionSkew,
			Reason: fmt.Sprintf("peer speaks version %d, this side %d", buf[4], Version)}
	}
	h := Header{
		Type:   Type(buf[5]),
		Flags:  binary.LittleEndian.Uint16(buf[6:8]),
		ID:     binary.LittleEndian.Uint64(buf[8:16]),
		Length: binary.LittleEndian.Uint32(buf[16:20]),
	}
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if h.Length > uint32(maxPayload) {
		return Header{}, &ProtoError{Code: CodeTooLarge,
			Reason: fmt.Sprintf("payload %d exceeds cap %d", h.Length, maxPayload)}
	}
	return h, nil
}

// bufPool recycles encode buffers across frames and connections.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf returns a pooled, length-zero byte slice for frame encoding.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a buffer to the pool. The caller must not touch the slice
// afterwards. Oversized buffers (greater than 1 MiB) are dropped so one
// huge batch does not pin its allocation forever.
func PutBuf(b *[]byte) {
	if cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// RemoteError is a TError frame surfaced as a Go error on the client side.
type RemoteError struct {
	Code       Code
	RetryAfter time.Duration
	Msg        string
}

// Error implements error.
func (e *RemoteError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("server: %s (retry after %s): %s", e.Code, e.RetryAfter, e.Msg)
	}
	return fmt.Sprintf("server: %s: %s", e.Code, e.Msg)
}

// Temporary reports whether the request may be retried.
func (e *RemoteError) Temporary() bool { return e.Code.Retryable() }
