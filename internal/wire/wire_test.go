package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

func randKeywords(rng *rand.Rand) []string {
	n := rng.Intn(4)
	if n == 0 {
		return nil
	}
	kws := make([]string, n)
	for i := range kws {
		b := make([]byte, rng.Intn(12))
		rng.Read(b)
		kws[i] = string(b)
	}
	return kws
}

func randObject(rng *rand.Rand) stream.Object {
	return stream.Object{
		ID:        rng.Uint64(),
		Loc:       geo.Pt(rng.NormFloat64()*100, rng.NormFloat64()*100),
		Keywords:  randKeywords(rng),
		Timestamp: rng.Int63(),
	}
}

func randQuery(rng *rand.Rand) stream.Query {
	q := stream.Query{Timestamp: rng.Int63(), Keywords: randKeywords(rng)}
	if rng.Intn(2) == 0 {
		q.HasRange = true
		q.Range = geo.Rect{
			MinX: rng.NormFloat64(), MinY: rng.NormFloat64(),
			MaxX: rng.NormFloat64(), MaxY: rng.NormFloat64(),
		}
	}
	return q
}

// readOne parses a single encoded frame through the FrameReader.
func readOne(t *testing.T, frame []byte) (Header, []byte) {
	t.Helper()
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(frame)), 0)
	h, payload, err := fr.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	out := append([]byte(nil), payload...)
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want EOF after single frame, got %v", err)
	}
	return h, out
}

// TestFeedBatchRoundTrip: encode→decode→re-encode is bitwise identical and
// the decoded objects equal the originals, across many random batches.
func TestFeedBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		objs := make([]stream.Object, rng.Intn(8))
		for i := range objs {
			objs[i] = randObject(rng)
		}
		frame := AppendFeedBatch(nil, uint64(trial), objs)
		h, payload := readOne(t, frame)
		if h.Type != TFeedBatch || h.ID != uint64(trial) {
			t.Fatalf("header %+v", h)
		}
		got, err := DecodeFeedBatch(payload, nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(objs) {
			t.Fatalf("count %d != %d", len(got), len(objs))
		}
		for i := range objs {
			// nil and empty keyword slices encode identically; normalize.
			a, b := objs[i], got[i]
			if len(a.Keywords) == 0 {
				a.Keywords = nil
			}
			if len(b.Keywords) == 0 {
				b.Keywords = nil
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("object %d: %+v != %+v", i, b, a)
			}
		}
		if again := AppendFeedBatch(nil, uint64(trial), got); !bytes.Equal(again, frame) {
			t.Fatalf("re-encode differs at trial %d", trial)
		}
	}
}

// TestQueryBatchRoundTrip covers TQueryBatch the same way, including NaN
// coordinates (the wire passes them through; the engine's validation is
// the layer that rejects them).
func TestQueryBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		qs := make([]stream.Query, 1+rng.Intn(6))
		for i := range qs {
			qs[i] = randQuery(rng)
		}
		if trial == 0 {
			qs[0].HasRange = true
			qs[0].Range.MinX = math.NaN()
		}
		deadline := rng.Uint32()
		frame := AppendQueryBatch(nil, uint64(trial), deadline, qs)
		h, payload := readOne(t, frame)
		if h.Type != TQueryBatch {
			t.Fatalf("type %v", h.Type)
		}
		gotDeadline, got, err := DecodeQueryBatch(payload, nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if gotDeadline != deadline {
			t.Fatalf("deadline %d != %d", gotDeadline, deadline)
		}
		if again := AppendQueryBatch(nil, uint64(trial), gotDeadline, got); !bytes.Equal(again, frame) {
			t.Fatalf("re-encode differs at trial %d", trial)
		}
	}
}

func TestEstimateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		q := randQuery(rng)
		frame := AppendEstimate(nil, 7, 1234, &q)
		_, payload := readOne(t, frame)
		deadline, got, err := DecodeEstimate(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if deadline != 1234 {
			t.Fatalf("deadline %d", deadline)
		}
		if again := AppendEstimate(nil, 7, deadline, &got); !bytes.Equal(again, frame) {
			t.Fatalf("re-encode differs")
		}
	}
}

func TestResultFramesRoundTrip(t *testing.T) {
	// Ack.
	h, p := readOne(t, AppendAck(nil, 9, 42))
	if h.Type != TAck {
		t.Fatalf("type %v", h.Type)
	}
	if n, err := DecodeAck(p); err != nil || n != 42 {
		t.Fatalf("ack %d %v", n, err)
	}
	// EstimateResult, including a negative and an infinite value.
	for _, v := range []float64{0, -1.5, 12345.75, math.Inf(1)} {
		_, p := readOne(t, AppendEstimateResult(nil, 1, v))
		got, err := DecodeEstimateResult(p)
		if err != nil || !(got == v || (math.IsInf(v, 1) && math.IsInf(got, 1))) {
			t.Fatalf("estimate result %v %v", got, err)
		}
	}
	// QueryBatchResult.
	ests := []float64{1.5, 0, 9e9}
	acts := []int{2, 0, -1}
	frame := AppendQueryBatchResult(nil, 3, ests, acts)
	_, p = readOne(t, frame)
	gotE, gotA, err := DecodeQueryBatchResult(p, nil, nil)
	if err != nil || !reflect.DeepEqual(gotE, ests) || !reflect.DeepEqual(gotA, acts) {
		t.Fatalf("query batch result %v %v %v", gotE, gotA, err)
	}
	if again := AppendQueryBatchResult(nil, 3, gotE, gotA); !bytes.Equal(again, frame) {
		t.Fatalf("re-encode differs")
	}
	// Error.
	frame = AppendError(nil, 5, CodeBackpressure, 250, "window full")
	_, p = readOne(t, frame)
	re, err := DecodeError(p)
	if err != nil {
		t.Fatalf("decode error frame: %v", err)
	}
	if re.Code != CodeBackpressure || re.RetryAfter != 250*time.Millisecond || re.Msg != "window full" {
		t.Fatalf("remote error %+v", re)
	}
	if !re.Temporary() {
		t.Fatal("backpressure should be temporary")
	}
	// Ping/pong are empty-payload frames.
	h, p = readOne(t, AppendPing(nil, 11))
	if h.Type != TPing || len(p) != 0 {
		t.Fatalf("ping %v %d", h.Type, len(p))
	}
	h, p = readOne(t, AppendPong(nil, 11))
	if h.Type != TPong || len(p) != 0 {
		t.Fatalf("pong %v %d", h.Type, len(p))
	}
}

// TestPipelinedFrames reads several frames back-to-back off one stream.
func TestPipelinedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var buf []byte
	objs := []stream.Object{randObject(rng)}
	q := randQuery(rng)
	buf = AppendFeedBatch(buf, 1, objs)
	buf = AppendFeedBatch(buf, 2, objs)
	buf = AppendQueryBatch(buf, 3, 0, []stream.Query{q})
	buf = AppendPing(buf, 4)
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(buf)), 0)
	wantTypes := []Type{TFeedBatch, TFeedBatch, TQueryBatch, TPing}
	for i, want := range wantTypes {
		h, _, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if h.Type != want || h.ID != uint64(i+1) {
			t.Fatalf("frame %d: %+v", i, h)
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func protoCode(t *testing.T, err error) Code {
	t.Helper()
	var pe *ProtoError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ProtoError, got %T: %v", err, err)
	}
	return pe.Code
}

func TestHeaderRejections(t *testing.T) {
	good := AppendPing(nil, 1)

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ParseHeader(bad, 0); protoCode(t, err) != CodeMalformed {
		t.Fatalf("bad magic: %v", err)
	}

	// Bad CRC (flip a header byte after the CRC was computed).
	bad = append([]byte(nil), good...)
	bad[9] ^= 0xFF
	if _, err := ParseHeader(bad, 0); protoCode(t, err) != CodeMalformed {
		t.Fatalf("bad CRC: %v", err)
	}

	// Version skew (re-CRC so the version check is reached).
	bad = append([]byte(nil), good...)
	bad[4] = Version + 1
	reCRC(bad)
	if _, err := ParseHeader(bad, 0); protoCode(t, err) != CodeVersionSkew {
		t.Fatalf("version skew: %v", err)
	}

	// Oversize declared length.
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[16:20], 1<<30)
	reCRC(bad)
	if _, err := ParseHeader(bad, 1024); protoCode(t, err) != CodeTooLarge {
		t.Fatalf("oversize: %v", err)
	}

	// Truncated header.
	if _, err := ParseHeader(good[:HeaderSize-1], 0); protoCode(t, err) != CodeMalformed {
		t.Fatal("truncated header accepted")
	}
}

func TestPayloadRejections(t *testing.T) {
	// Batch count larger than the payload could possibly hold.
	var p []byte
	p = binary.LittleEndian.AppendUint32(p, 1<<31)
	if _, err := DecodeFeedBatch(p, nil); protoCode(t, err) != CodeMalformed {
		t.Fatalf("absurd count: %v", err)
	}
	// Trailing garbage after a valid payload.
	frame := AppendAck(nil, 1, 7)
	payload := append(frame[HeaderSize:len(frame):len(frame)], 0xEE)
	if _, err := DecodeAck(payload); protoCode(t, err) != CodeMalformed {
		t.Fatal("trailing garbage accepted")
	}
	// Unknown query flags.
	qp := []byte{0, 0, 0, 0 /* deadline */, 0x80 /* flags */}
	if _, _, err := DecodeEstimate(qp); protoCode(t, err) != CodeMalformed {
		t.Fatal("unknown flags accepted")
	}
	// Truncated keyword.
	q := stream.Query{Keywords: []string{"fire"}, Timestamp: 1}
	frame = AppendEstimate(nil, 1, 0, &q)
	if _, _, err := DecodeEstimate(frame[HeaderSize : len(frame)-2]); protoCode(t, err) != CodeMalformed {
		t.Fatal("truncated keyword accepted")
	}
}

// TestFrameReaderPartialFrame: a stream that ends mid-frame yields
// io.ErrUnexpectedEOF, not a hang or a clean EOF.
func TestFrameReaderPartialFrame(t *testing.T) {
	frame := AppendAck(nil, 1, 7)
	for _, cut := range []int{1, HeaderSize - 1, HeaderSize, len(frame) - 1} {
		fr := NewFrameReader(bufio.NewReader(bytes.NewReader(frame[:cut])), 0)
		if _, _, err := fr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut=%d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

// TestZeroLengthBatch: an empty feed batch is a valid frame.
func TestZeroLengthBatch(t *testing.T) {
	frame := AppendFeedBatch(nil, 1, nil)
	_, payload := readOne(t, frame)
	objs, err := DecodeFeedBatch(payload, nil)
	if err != nil || len(objs) != 0 {
		t.Fatalf("empty batch: %v %d", err, len(objs))
	}
}

// TestBufPool: pooled buffers come back empty and usable.
func TestBufPool(t *testing.T) {
	b := GetBuf()
	*b = AppendPing(*b, 1)
	PutBuf(b)
	b2 := GetBuf()
	if len(*b2) != 0 {
		t.Fatalf("pooled buffer not reset: len %d", len(*b2))
	}
	PutBuf(b2)
}

// reCRC recomputes a frame header's CRC after a deliberate mutation, so
// the parser gets past the integrity check to the semantic one under test.
func reCRC(frame []byte) {
	binary.LittleEndian.PutUint32(frame[20:24], crc32.ChecksumIEEE(frame[:20]))
}

// TestStringsAndClassifiers pins the human-readable names and the
// request/retryable classifications — these strings feed metric labels
// and log lines, so a rename is a breaking change.
func TestStringsAndClassifiers(t *testing.T) {
	typeNames := map[Type]string{
		TFeedBatch: "feed_batch", TEstimate: "estimate", TQueryBatch: "query_batch",
		TPing: "ping", TAck: "ack", TEstimateResult: "estimate_result",
		TQueryBatchResult: "query_batch_result", TPong: "pong", TError: "error",
		Type(0x30): "Type(0x30)",
	}
	for ty, want := range typeNames {
		if got := ty.String(); got != want {
			t.Errorf("Type %d String = %q, want %q", ty, got, want)
		}
	}
	for _, ty := range []Type{TFeedBatch, TEstimate, TQueryBatch, TPing} {
		if !ty.Request() {
			t.Errorf("%s must be a request", ty)
		}
	}
	for _, ty := range []Type{TAck, TPong, TError, Type(0)} {
		if ty.Request() {
			t.Errorf("%s must not be a request", ty)
		}
	}
	codeNames := map[Code]string{
		CodeMalformed: "malformed", CodeTooLarge: "too_large",
		CodeVersionSkew: "version_skew", CodeUnknownType: "unknown_type",
		CodeBackpressure: "backpressure", CodeDraining: "draining",
		CodeDeadlineExceeded: "deadline_exceeded", CodeInternal: "internal",
		Code(99): "Code(99)",
	}
	for c, want := range codeNames {
		if got := c.String(); got != want {
			t.Errorf("Code %d String = %q, want %q", c, got, want)
		}
		wantRetry := c == CodeBackpressure || c == CodeDraining
		if c.Retryable() != wantRetry {
			t.Errorf("Code %s Retryable = %v", c, !wantRetry)
		}
	}
}

func TestErrorStrings(t *testing.T) {
	pe := &ProtoError{Code: CodeMalformed, Reason: "bad count"}
	if got := pe.Error(); got != "wire: malformed: bad count" {
		t.Errorf("ProtoError = %q", got)
	}
	re := &RemoteError{Code: CodeBackpressure, RetryAfter: 50 * time.Millisecond, Msg: "full"}
	if got := re.Error(); got != "server: backpressure (retry after 50ms): full" {
		t.Errorf("RemoteError with hint = %q", got)
	}
	re2 := &RemoteError{Code: CodeInternal, Msg: "boom"}
	if got := re2.Error(); got != "server: internal: boom" {
		t.Errorf("RemoteError = %q", got)
	}
	if re2.Temporary() || !re.Temporary() {
		t.Error("Temporary misclassified")
	}
}

// TestPeekHeader: peeking parses a fully-buffered header without
// consuming it, declines short or malformed buffers, and leaves Next
// able to deliver the same frame.
func TestPeekHeader(t *testing.T) {
	frame := AppendPing(nil, 77)
	second := AppendPong(nil, 78)

	br := bufio.NewReader(bytes.NewReader(append(append([]byte{}, frame...), second...)))
	fr := NewFrameReader(br, 0)
	// Nothing buffered yet: bufio hasn't read from the source.
	if _, ok := fr.PeekHeader(); ok {
		t.Fatal("peek succeeded with empty buffer")
	}
	// Prime the buffer, then peek must see the ping without consuming.
	if _, err := br.Peek(1); err != nil {
		t.Fatal(err)
	}
	h, ok := fr.PeekHeader()
	if !ok || h.Type != TPing || h.ID != 77 {
		t.Fatalf("peek = %+v, %v", h, ok)
	}
	if got := fr.Buffered(); got < HeaderSize {
		t.Fatalf("Buffered = %d after peek", got)
	}
	h, _, err := fr.Next()
	if err != nil || h.Type != TPing || h.ID != 77 {
		t.Fatalf("Next after peek = %+v, %v", h, err)
	}
	h, ok = fr.PeekHeader()
	if !ok || h.Type != TPong || h.ID != 78 {
		t.Fatalf("second peek = %+v, %v", h, ok)
	}

	// A corrupted buffered header declines the peek but surfaces the
	// typed error from Next.
	bad := append([]byte{}, frame...)
	bad[0] = 'X' // break the magic
	br = bufio.NewReader(bytes.NewReader(bad))
	fr = NewFrameReader(br, 0)
	br.Peek(1)
	if _, ok := fr.PeekHeader(); ok {
		t.Fatal("peek accepted corrupt header")
	}
	var pe *ProtoError
	if _, _, err := fr.Next(); !errors.As(err, &pe) {
		t.Fatalf("Next on corrupt header = %v", err)
	}
}
