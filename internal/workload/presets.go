package workload

import "fmt"

// Preset workloads, named as in the paper (§VI-A). The phase schedules of
// the "changing" workloads (TwQW1, TwQW6) are engineered to reproduce the
// published switch narratives: spatial-dominated segments reward H4096,
// keyword-dominated segments reward RSL, hybrid segments reward RSH.
var presets = map[string]Spec{
	// TwQW1: one-third of each type overall, with query types heavily
	// changing over time (Fig. 3: switches near t18, t31, t53, t75).
	"TwQW1": {
		Name: "TwQW1", Dataset: "Twitter",
		Phases: []Phase{
			{Until: 0.18, Mix: Mix{Spatial: 0.20, Keyword: 0.20, Hybrid: 0.60}},
			{Until: 0.31, Mix: Mix{Spatial: 0.95, Keyword: 0.00, Hybrid: 0.05}},
			{Until: 0.53, Mix: Mix{Spatial: 0.15, Keyword: 0.25, Hybrid: 0.60}},
			{Until: 0.75, Mix: Mix{Spatial: 0.00, Keyword: 0.90, Hybrid: 0.10}},
			{Until: 1.00, Mix: Mix{Spatial: 0.20, Keyword: 0.20, Hybrid: 0.60}},
		},
		RangeSide: 0.04, RangeJitter: 0.4, KwMin: 1, KwMax: 3,
	},
	// TwQW2: 100% pure spatial.
	"TwQW2": {
		Name: "TwQW2", Dataset: "Twitter",
		Phases:    []Phase{{Until: 1, Mix: Mix{Spatial: 1}}},
		RangeSide: 0.04, RangeJitter: 0.4, KwMin: 1, KwMax: 1,
	},
	// TwQW3: 50% pure spatial, 50% spatial-keyword throughout (Table II,
	// Figs. 6-7).
	"TwQW3": {
		Name: "TwQW3", Dataset: "Twitter",
		Phases:    []Phase{{Until: 1, Mix: Mix{Spatial: 0.5, Hybrid: 0.5}}},
		RangeSide: 0.04, RangeJitter: 0.4, KwMin: 1, KwMax: 2,
	},
	// TwQW4: 100% single-keyword queries.
	"TwQW4": {
		Name: "TwQW4", Dataset: "Twitter",
		Phases: []Phase{{Until: 1, Mix: Mix{Keyword: 1}}},
		// RangeSide is still used when sweeps convert this workload; keep a
		// sane default.
		RangeSide: 0.04, KwMin: 1, KwMax: 1,
	},
	// TwQW5: 100% multi-keyword queries (Fig. 11 sweeps the count 1-5).
	"TwQW5": {
		Name: "TwQW5", Dataset: "Twitter",
		Phases:    []Phase{{Until: 1, Mix: Mix{Keyword: 1}}},
		RangeSide: 0.04, KwMin: 2, KwMax: 5,
	},
	// TwQW6: thirds with a different phase order than TwQW1 (Fig. 4:
	// switches near t18 and t39).
	"TwQW6": {
		Name: "TwQW6", Dataset: "Twitter",
		Phases: []Phase{
			{Until: 0.18, Mix: Mix{Spatial: 0.10, Keyword: 0.30, Hybrid: 0.60}},
			{Until: 0.39, Mix: Mix{Spatial: 0.90, Keyword: 0.00, Hybrid: 0.10}},
			{Until: 1.00, Mix: Mix{Spatial: 0.10, Keyword: 0.45, Hybrid: 0.45}},
		},
		RangeSide: 0.04, RangeJitter: 0.4, KwMin: 1, KwMax: 3,
	},

	// EbRQW1: the real UCR-Star request log — 100% spatial with
	// heavy-tailed range sizes (dataset-search requests span counties to
	// multi-state extents) and session locality (Figs. 5, 8).
	"EbRQW1": {
		Name: "EbRQW1", Dataset: "eBird",
		Phases:    []Phase{{Until: 1, Mix: Mix{Spatial: 1}}},
		RangeSide: 0.1, RangeJitter: 1.0, KwMin: 1, KwMax: 1,
		SessionLocality: 0.5,
	},
	// EbRQW2-6: the remaining eBird mixes (described but not plotted in the
	// paper; provided for completeness).
	"EbRQW2": {
		Name: "EbRQW2", Dataset: "eBird",
		Phases:    []Phase{{Until: 1, Mix: Mix{Spatial: 0.5, Hybrid: 0.5}}},
		RangeSide: 0.06, RangeJitter: 0.8, KwMin: 1, KwMax: 2,
	},
	"EbRQW3": {
		Name: "EbRQW3", Dataset: "eBird",
		Phases:    []Phase{{Until: 1, Mix: Mix{Spatial: 1.0 / 3, Keyword: 1.0 / 3, Hybrid: 1.0 / 3}}},
		RangeSide: 0.06, RangeJitter: 0.8, KwMin: 1, KwMax: 2,
	},
	"EbRQW4": {
		Name: "EbRQW4", Dataset: "eBird",
		Phases:    []Phase{{Until: 1, Mix: Mix{Keyword: 1}}},
		RangeSide: 0.06, KwMin: 1, KwMax: 1,
	},
	"EbRQW5": {
		Name: "EbRQW5", Dataset: "eBird",
		Phases:    []Phase{{Until: 1, Mix: Mix{Hybrid: 1}}},
		RangeSide: 0.06, RangeJitter: 0.8, KwMin: 1, KwMax: 2,
	},
	"EbRQW6": {
		Name: "EbRQW6", Dataset: "eBird",
		Phases: []Phase{
			{Until: 0.5, Mix: Mix{Spatial: 0.9, Hybrid: 0.1}},
			{Until: 1.0, Mix: Mix{Keyword: 0.6, Hybrid: 0.4}},
		},
		RangeSide: 0.06, RangeJitter: 0.8, KwMin: 1, KwMax: 2,
	},

	// CiQW1: 100K single-keyword queries on CheckIn (Fig. 12).
	"CiQW1": {
		Name: "CiQW1", Dataset: "CheckIn",
		Phases:    []Phase{{Until: 1, Mix: Mix{Keyword: 1}}},
		RangeSide: 0.03, KwMin: 1, KwMax: 1,
	},
	// CiQW2-3: the remaining CheckIn mixes.
	"CiQW2": {
		Name: "CiQW2", Dataset: "CheckIn",
		Phases:    []Phase{{Until: 1, Mix: Mix{Spatial: 1.0 / 3, Keyword: 1.0 / 3, Hybrid: 1.0 / 3}}},
		RangeSide: 0.03, RangeJitter: 0.4, KwMin: 1, KwMax: 2,
	},
	"CiQW3": {
		Name: "CiQW3", Dataset: "CheckIn",
		Phases:    []Phase{{Until: 1, Mix: Mix{Spatial: 0.5, Hybrid: 0.5}}},
		RangeSide: 0.03, RangeJitter: 0.4, KwMin: 1, KwMax: 2,
	},
}

// ByName returns the named preset spec. Unknown names panic: workload names
// are experiment identifiers, not user input.
func ByName(name string) Spec {
	s, ok := presets[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown workload %q", name))
	}
	return s
}

// Names returns every preset workload name (unordered).
func Names() []string {
	out := make([]string, 0, len(presets))
	for n := range presets {
		out = append(out, n)
	}
	return out
}
