// Package workload generates the paper's query workloads (§VI-A): mixes of
// pure-spatial, pure-keyword and hybrid RC-DVQ queries whose composition
// changes over the stream lifetime according to a phase schedule. Query
// focal points and keywords come from the dataset generator (search traffic
// follows data density — the Bing-locations substitution), so workloads are
// reproducible given the dataset seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/stream"
)

// Source supplies the dataset-dependent ingredients of query generation:
// the spatial domain, focal points that track the data distribution (the
// Bing-locations substitution) and keywords correlated with the stream's
// vocabulary. datagen.Generator implements it for the synthetic datasets;
// replayed real streams implement it from a sample of their own objects.
type Source interface {
	World() geo.Rect
	SampleQueryPoint() geo.Point
	SampleQueryKeyword() string
	QueryRand() *rand.Rand
}

// Mix is the probability of each query type; the three fields must sum to 1
// (within rounding).
type Mix struct {
	Spatial float64
	Keyword float64
	Hybrid  float64
}

func (m Mix) sum() float64 { return m.Spatial + m.Keyword + m.Hybrid }

// Phase is one segment of a workload: the mix in force until the given
// fraction of the workload has been issued.
type Phase struct {
	// Until is the exclusive end of the phase as a fraction of the total
	// query count, in (0, 1]. Phases must be ordered and end at 1.
	Until float64
	Mix   Mix
}

// Spec declares a named workload.
type Spec struct {
	Name    string
	Dataset string // which dataset's figures use this workload
	Phases  []Phase
	// RangeSide is the mean side of spatial ranges as a fraction of the
	// world's shorter side. The spatial-impact experiments sweep it.
	RangeSide float64
	// RangeJitter is the σ of the log-normal multiplier applied to
	// RangeSide (0 = fixed size).
	RangeJitter float64
	// KwMin/KwMax bound the query keyword count.
	KwMin, KwMax int
	// SessionLocality is the probability a spatial query re-centers near
	// the previous query instead of a fresh focal point — the temporal
	// locality of the real UCR-Star request log.
	SessionLocality float64
}

// validate panics on malformed specs; specs are code, not data.
func (s *Spec) validate() {
	if len(s.Phases) == 0 {
		panic(fmt.Sprintf("workload %s: no phases", s.Name))
	}
	prev := 0.0
	for i, p := range s.Phases {
		if p.Until <= prev {
			panic(fmt.Sprintf("workload %s: phase %d not increasing", s.Name, i))
		}
		if math.Abs(p.Mix.sum()-1) > 1e-9 {
			panic(fmt.Sprintf("workload %s: phase %d mix sums to %v", s.Name, i, p.Mix.sum()))
		}
		prev = p.Until
	}
	if math.Abs(prev-1) > 1e-9 {
		panic(fmt.Sprintf("workload %s: phases end at %v, want 1", s.Name, prev))
	}
	if s.RangeSide <= 0 || s.RangeSide > 1 {
		panic(fmt.Sprintf("workload %s: RangeSide %v", s.Name, s.RangeSide))
	}
	if s.KwMin < 1 || s.KwMax < s.KwMin {
		panic(fmt.Sprintf("workload %s: keyword bounds %d..%d", s.Name, s.KwMin, s.KwMax))
	}
}

// MixAt returns the mix in force at progress ∈ [0,1].
func (s *Spec) MixAt(progress float64) Mix {
	for _, p := range s.Phases {
		if progress < p.Until {
			return p.Mix
		}
	}
	return s.Phases[len(s.Phases)-1].Mix
}

// WithRangeSide returns a copy of the spec with a fixed range side (used by
// the spatial-impact sweeps).
func (s Spec) WithRangeSide(side float64) Spec {
	s.RangeSide = side
	s.RangeJitter = 0
	return s
}

// WithKeywordCount returns a copy with an exact query keyword count (used
// by the keyword-impact sweep).
func (s Spec) WithKeywordCount(k int) Spec {
	s.KwMin, s.KwMax = k, k
	return s
}

// Generator issues the workload's queries in order.
type Generator struct {
	spec  Spec
	src   Source
	total int
	i     int

	lastFocus geo.Point
	hasLast   bool
}

// NewGenerator binds a spec to a dataset source for a total query budget.
func NewGenerator(spec Spec, src Source, total int) *Generator {
	spec.validate()
	if total <= 0 {
		panic(fmt.Sprintf("workload %s: total %d", spec.Name, total))
	}
	return &Generator{spec: spec, src: src, total: total}
}

// Spec returns the bound spec.
func (g *Generator) Spec() Spec { return g.spec }

// Remaining returns how many queries are left.
func (g *Generator) Remaining() int { return g.total - g.i }

// Progress returns the fraction of the workload issued so far.
func (g *Generator) Progress() float64 { return float64(g.i) / float64(g.total) }

// Next issues the next query, timestamped ts. It panics when the budget is
// exhausted; callers drive the loop off Remaining.
func (g *Generator) Next(ts int64) stream.Query {
	if g.i >= g.total {
		panic(fmt.Sprintf("workload %s: budget of %d queries exhausted", g.spec.Name, g.total))
	}
	mix := g.spec.MixAt(g.Progress())
	g.i++
	rng := g.src.QueryRand()
	r := rng.Float64() * mix.sum()
	switch {
	case r < mix.Spatial:
		return stream.SpatialQ(g.makeRange(), ts)
	case r < mix.Spatial+mix.Keyword:
		return stream.KeywordQ(g.makeKeywords(), ts)
	default:
		return stream.HybridQ(g.makeRange(), g.makeKeywords(), ts)
	}
}

// makeRange builds a spatial range around a focal point.
func (g *Generator) makeRange() geo.Rect {
	rng := g.src.QueryRand()
	world := g.src.World()
	var focus geo.Point
	if g.hasLast && rng.Float64() < g.spec.SessionLocality {
		// Stay near the previous query (session locality): jitter by one
		// range side.
		side := g.spec.RangeSide * math.Min(world.Width(), world.Height())
		focus = world.Clamp(geo.Pt(
			g.lastFocus.X+rng.NormFloat64()*side,
			g.lastFocus.Y+rng.NormFloat64()*side,
		))
	} else {
		focus = g.src.SampleQueryPoint()
	}
	g.lastFocus, g.hasLast = focus, true

	side := g.spec.RangeSide
	if g.spec.RangeJitter > 0 {
		side *= math.Exp(rng.NormFloat64() * g.spec.RangeJitter)
	}
	w := side * world.Width()
	h := side * world.Height()
	return geo.CenteredRect(focus, w, h)
}

// makeKeywords draws the query keyword set.
func (g *Generator) makeKeywords() []string {
	rng := g.src.QueryRand()
	n := g.spec.KwMin
	if g.spec.KwMax > g.spec.KwMin {
		n += rng.Intn(g.spec.KwMax - g.spec.KwMin + 1)
	}
	kws := make([]string, 0, n)
	for len(kws) < n {
		kw := g.src.SampleQueryKeyword()
		dup := false
		for _, k := range kws {
			if k == kw {
				dup = true
				break
			}
		}
		if !dup {
			kws = append(kws, kw)
		}
	}
	return kws
}
