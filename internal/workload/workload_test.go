package workload

import (
	"math"
	"testing"

	"github.com/spatiotext/latest/internal/datagen"
	"github.com/spatiotext/latest/internal/stream"
)

func src() *datagen.Generator { return datagen.Twitter(1, 2) }

func TestAllPresetsValid(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			spec := ByName(name)
			if spec.Name != name {
				t.Errorf("Name = %q", spec.Name)
			}
			g := NewGenerator(spec, datagen.ByName(spec.Dataset, 1, 2), 1000)
			for g.Remaining() > 0 {
				q := g.Next(1000)
				if !q.Valid() {
					t.Fatalf("invalid query: %v", q)
				}
			}
		})
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown workload should panic")
		}
	}()
	ByName("nope")
}

func TestMixProportions(t *testing.T) {
	// TwQW3 is 50% spatial, 50% hybrid with no phase changes.
	g := NewGenerator(ByName("TwQW3"), src(), 10000)
	counts := map[stream.QueryType]int{}
	for g.Remaining() > 0 {
		q := g.Next(0)
		counts[q.Type()]++
	}
	if counts[stream.KeywordQuery] != 0 {
		t.Errorf("TwQW3 produced %d keyword queries", counts[stream.KeywordQuery])
	}
	sp := float64(counts[stream.SpatialQuery]) / 10000
	if math.Abs(sp-0.5) > 0.03 {
		t.Errorf("spatial fraction = %.3f, want ~0.5", sp)
	}
}

func TestPureWorkloads(t *testing.T) {
	for name, want := range map[string]stream.QueryType{
		"TwQW2": stream.SpatialQuery,
		"TwQW4": stream.KeywordQuery,
		"CiQW1": stream.KeywordQuery,
	} {
		spec := ByName(name)
		g := NewGenerator(spec, datagen.ByName(spec.Dataset, 2, 2), 500)
		for g.Remaining() > 0 {
			q := g.Next(0)
			if got := q.Type(); got != want {
				t.Errorf("%s produced %v", name, got)
				break
			}
		}
	}
}

func TestSingleVsMultiKeyword(t *testing.T) {
	g4 := NewGenerator(ByName("TwQW4"), src(), 500)
	for g4.Remaining() > 0 {
		if q := g4.Next(0); len(q.Keywords) != 1 {
			t.Fatalf("TwQW4 query has %d keywords", len(q.Keywords))
		}
	}
	g5 := NewGenerator(ByName("TwQW5"), src(), 500)
	multi := 0
	for g5.Remaining() > 0 {
		q := g5.Next(0)
		if len(q.Keywords) < 2 || len(q.Keywords) > 5 {
			t.Fatalf("TwQW5 query has %d keywords", len(q.Keywords))
		}
		if len(q.Keywords) > 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("TwQW5 never produced >2 keywords")
	}
}

func TestPhaseSchedule(t *testing.T) {
	// TwQW1's second phase (progress 0.18-0.31) is 95% spatial.
	spec := ByName("TwQW1")
	mix := spec.MixAt(0.25)
	if mix.Spatial < 0.9 {
		t.Errorf("TwQW1 mid-phase spatial = %v", mix.Spatial)
	}
	if m := spec.MixAt(0.6); m.Keyword < 0.8 {
		t.Errorf("TwQW1 keyword phase = %+v", m)
	}
	// Progress ≥ 1 falls into the last phase.
	last := spec.MixAt(1.0)
	if last != spec.Phases[len(spec.Phases)-1].Mix {
		t.Errorf("MixAt(1) = %+v", last)
	}
	// Observed mix across the generator run follows the schedule.
	g := NewGenerator(spec, src(), 10000)
	spatialInPhase2 := 0
	phase2 := 0
	for g.Remaining() > 0 {
		p := g.Progress()
		q := g.Next(0)
		if p >= 0.19 && p < 0.30 {
			phase2++
			if q.Type() == stream.SpatialQuery {
				spatialInPhase2++
			}
		}
	}
	if frac := float64(spatialInPhase2) / float64(phase2); frac < 0.85 {
		t.Errorf("phase-2 spatial fraction %.3f", frac)
	}
}

func TestRangeSideSweep(t *testing.T) {
	base := ByName("TwQW2")
	for _, side := range []float64{0.01, 0.05, 0.2} {
		spec := base.WithRangeSide(side)
		g := NewGenerator(spec, src(), 200)
		world := src().World()
		for g.Remaining() > 0 {
			q := g.Next(0)
			wantW := side * world.Width()
			if math.Abs(q.Range.Width()-wantW) > 1e-9 {
				t.Fatalf("side %v: range width %v, want %v", side, q.Range.Width(), wantW)
			}
		}
	}
}

func TestKeywordCountSweep(t *testing.T) {
	base := ByName("TwQW5")
	for k := 1; k <= 5; k++ {
		g := NewGenerator(base.WithKeywordCount(k), src(), 100)
		for g.Remaining() > 0 {
			if q := g.Next(0); len(q.Keywords) != k {
				t.Fatalf("k=%d: got %d keywords", k, len(q.Keywords))
			}
		}
	}
}

func TestSessionLocality(t *testing.T) {
	// EbRQW1 has 50% session locality: consecutive query centers should be
	// far closer on average than under independent sampling.
	ebird := datagen.EBird(3, 2)
	gLocal := NewGenerator(ByName("EbRQW1"), ebird, 2000)
	dLocal := meanConsecutiveDist(gLocal)

	spec := ByName("EbRQW1")
	spec.SessionLocality = 0
	ebird2 := datagen.EBird(3, 2)
	gFree := NewGenerator(spec, ebird2, 2000)
	dFree := meanConsecutiveDist(gFree)

	if dLocal >= dFree*0.8 {
		t.Errorf("locality had no effect: %.3f vs %.3f", dLocal, dFree)
	}
}

func meanConsecutiveDist(g *Generator) float64 {
	var prev stream.Query
	has := false
	total, n := 0.0, 0
	for g.Remaining() > 0 {
		q := g.Next(0)
		if has {
			total += prev.Range.Center().DistanceTo(q.Range.Center())
			n++
		}
		prev, has = q, true
	}
	return total / float64(n)
}

func TestGeneratorBudget(t *testing.T) {
	g := NewGenerator(ByName("TwQW2"), src(), 3)
	for i := 0; i < 3; i++ {
		g.Next(0)
	}
	if g.Remaining() != 0 || g.Progress() != 1 {
		t.Errorf("Remaining=%d Progress=%v", g.Remaining(), g.Progress())
	}
	defer func() {
		if recover() == nil {
			t.Error("exhausted generator should panic")
		}
	}()
	g.Next(0)
}

func TestSpecValidation(t *testing.T) {
	valid := Spec{
		Name:      "v",
		Phases:    []Phase{{Until: 1, Mix: Mix{Spatial: 1}}},
		RangeSide: 0.1, KwMin: 1, KwMax: 1,
	}
	for name, mut := range map[string]func(Spec) Spec{
		"no phases":    func(s Spec) Spec { s.Phases = nil; return s },
		"bad mix":      func(s Spec) Spec { s.Phases = []Phase{{Until: 1, Mix: Mix{Spatial: 0.5}}}; return s },
		"phases not 1": func(s Spec) Spec { s.Phases = []Phase{{Until: 0.5, Mix: Mix{Spatial: 1}}}; return s },
		"non-increasing": func(s Spec) Spec {
			s.Phases = []Phase{{Until: 0.5, Mix: Mix{Spatial: 1}}, {Until: 0.5, Mix: Mix{Spatial: 1}}}
			return s
		},
		"bad range": func(s Spec) Spec { s.RangeSide = 0; return s },
		"bad kw":    func(s Spec) Spec { s.KwMin = 0; return s },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewGenerator(mut(valid), src(), 10)
		})
	}
	// The valid one builds fine.
	NewGenerator(valid, src(), 10)
}
