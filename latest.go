// Package latest is a learning-assisted selectivity estimation module for
// spatio-textual streams — a Go reproduction of "LATEST: Learning-Assisted
// Selectivity Estimation Over Spatio-Textual Streams" (Patil & Magdy,
// ICDE 2021).
//
// LATEST answers Range-Counting Distinct-Value Queries (RC-DVQ): "estimate
// how many objects of the last T time units lie in spatial range R and
// carry at least one keyword of W". Instead of committing to a single
// estimation structure, it maintains a fleet (2-D histogram, reservoir
// samplers, adaptive quadtree, learned models) and incrementally trains a
// Hoeffding tree on system-log feedback to switch, at run time, to
// whichever estimator best serves the current query workload.
//
// # Quick start
//
//	world := latest.Rect{MinX: -125, MinY: 24, MaxX: -66, MaxY: 50}
//	sys, err := latest.New(world, 10*time.Minute)
//	...
//	sys.Feed(latest.Object{ID: 1, Loc: latest.Pt(-118.24, 34.05),
//		Keywords: []string{"fire"}, Timestamp: now})
//	q := latest.HybridQuery(area, []string{"fire"}, now)
//	estimate := sys.Estimate(&q)   // fast approximate count
//	actual := sys.Execute(&q)      // exact count + feedback to the model
//
// Tuning knobs are functional options: latest.New(world, window,
// latest.WithAlpha(0), latest.WithTau(0.8), ...).
//
// Estimate is the query optimizer's cheap call; Execute plays the query
// processor whose true result lands in the system logs and trains the
// switching model. Applications that execute queries through their own
// engine can call Estimate followed by ObserveActual instead.
//
// Three deployment shapes share one surface (Feed/FeedBatch,
// EstimateAndExecute/EstimateAndExecuteBatch):
//
//   - System — single-goroutine, lowest overhead.
//   - ConcurrentSystem — System behind one mutex, for request handlers.
//   - ShardedSystem — the world spatially partitioned into N shards, each
//     its own window + estimator fleet behind its own lock; ingest routes
//     to one shard, queries fan out to intersecting shards.
package latest

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/spatiotext/latest/internal/core"
	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/geo"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
)

// Geometry and stream types, aliased from the implementation packages so
// user code never imports internal paths.
type (
	// Point is a location in 2-D (lon/lat-like) space.
	Point = geo.Point
	// Rect is an axis-aligned rectangle, min-closed and max-open.
	Rect = geo.Rect
	// Object is a geo-textual stream element (oid, loc, kw, timestamp).
	Object = stream.Object
	// Query is an RC-DVQ estimation query.
	Query = stream.Query
	// QueryType classifies queries as spatial, keyword or hybrid.
	QueryType = stream.QueryType
	// Estimator is the pluggable estimator interface; implement it and
	// register with a Registry to extend the fleet.
	Estimator = estimator.Estimator
	// EstimatorParams parameterizes estimator construction.
	EstimatorParams = estimator.Params
	// Registry maps estimator names to factories.
	Registry = estimator.Registry
	// SwitchEvent records one estimator switch.
	SwitchEvent = core.SwitchEvent
	// Stats is a snapshot of the module internals.
	Stats = core.Stats
	// Phase is the lifecycle phase (warm-up, pre-training, incremental).
	Phase = core.Phase
	// GaugeSnapshot is a point-in-time copy of an engine's operational
	// counters and latency histograms.
	GaugeSnapshot = metrics.GaugeSnapshot
	// HistogramSnapshot is a point-in-time copy of a latency histogram
	// (count, sum, max, log buckets, percentile accessors).
	HistogramSnapshot = telemetry.HistSnapshot
	// Decision is one switch-decision audit record: what the adaptor saw,
	// what the model recommended and with what confidence, and every
	// estimator's rolling q-error at that moment.
	Decision = telemetry.Decision
	// QErrorSample is one estimator's rolling q-error.
	QErrorSample = telemetry.QErrorSample
	// LogLevel is a severity for the structured logger enabled by
	// WithLogger.
	LogLevel = telemetry.Level
)

// Log severities for WithLogger.
const (
	LogDebug = telemetry.LevelDebug
	LogInfo  = telemetry.LevelInfo
	LogWarn  = telemetry.LevelWarn
	LogError = telemetry.LevelError
)

// Query type constants.
const (
	SpatialQueryType = stream.SpatialQuery
	KeywordQueryType = stream.KeywordQuery
	HybridQueryType  = stream.HybridQuery
)

// Lifecycle phases.
const (
	PhaseWarmup      = core.PhaseWarmup
	PhasePretrain    = core.PhasePretrain
	PhaseIncremental = core.PhaseIncremental
)

// Names of the built-in estimators.
const (
	EstimatorH4096 = estimator.NameH4096
	EstimatorRSL   = estimator.NameRSL
	EstimatorRSH   = estimator.NameRSH
	EstimatorAASP  = estimator.NameAASP
	EstimatorFFN   = estimator.NameFFN
	EstimatorSPN   = estimator.NameSPN
)

// Pt builds a Point.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// NewRect builds a Rect from two corners in any order.
func NewRect(a, b Point) Rect { return geo.NewRect(a, b) }

// CenteredRect builds a Rect centred on c.
func CenteredRect(c Point, w, h float64) Rect { return geo.CenteredRect(c, w, h) }

// SpatialQuery builds a pure range-counting query.
func SpatialQuery(r Rect, ts int64) Query { return stream.SpatialQ(r, ts) }

// KeywordQuery builds a pure distinct-value query.
func KeywordQuery(kws []string, ts int64) Query { return stream.KeywordQ(kws, ts) }

// HybridQuery builds a combined spatial-keyword query.
func HybridQuery(r Rect, kws []string, ts int64) Query { return stream.HybridQ(r, kws, ts) }

// NewRegistry returns an empty estimator registry for custom fleets.
func NewRegistry() *Registry { return estimator.NewRegistry() }

// DefaultRegistry returns a registry holding the paper's six estimators.
func DefaultRegistry() *Registry { return estimator.DefaultRegistry() }

// config is the resolved option set shared by the three constructors. It
// is deliberately unexported: the only way to configure an engine is the
// functional options, so every knob is validated at the API boundary and a
// literal zero never needs a companion "was it set" flag in user code.
// (The former exported Config struct and the NewFromConfig constructors
// were removed in the durability redesign; see CHANGES.md for the
// migration table.)
type config struct {
	// World is the spatial domain all objects and ranges live in.
	World Rect
	// Window is the time window T: queries count objects of the last
	// Window duration. Internally virtual-time milliseconds; any positive
	// duration works.
	Window time.Duration
	// Registry supplies estimators (nil = the paper's six).
	Registry *Registry
	// Estimators names the fleet members (empty = all registered).
	Estimators []string
	// Default is the estimator active when the incremental phase starts.
	Default string
	// Alpha ∈ [0,1] weighs latency vs accuracy in switching decisions:
	// 0 = accuracy only, 1 = latency only. Use AlphaSet to pass a literal 0.
	Alpha    float64
	AlphaSet bool
	// Tau ∈ (0,1) is the accuracy threshold that triggers a switch.
	Tau float64
	// Beta ∈ (0,1) controls how early the replacement starts pre-filling.
	Beta float64
	// AccWindow is the number of recent queries in the monitored accuracy
	// average.
	AccWindow int
	// PretrainQueries is the pre-training phase length.
	PretrainQueries int
	// MemoryScale multiplies every estimator's capacity defaults.
	MemoryScale float64
	// Seed makes runs reproducible.
	Seed int64
	// OnSwitch, when non-nil, is called after every estimator switch.
	OnSwitch func(SwitchEvent)
	// OracleGridCells sizes the exact store's internal grid (speed only;
	// zero = 4096).
	OracleGridCells int
	// CooldownQueries is the minimum number of queries between switches
	// (zero = AccWindow/2).
	CooldownQueries int
	// OpportunityMargin is the proactive-switch margin (zero = 0.15,
	// negative disables opportunity switches).
	OpportunityMargin float64
	// Shards is the spatial shard count used by NewSharded (zero =
	// runtime.GOMAXPROCS(0)). New and NewConcurrent reject it.
	Shards int
	// SyncPrefill makes ShardedSystem warm switch candidates on the query
	// path instead of the shard's background goroutine. New and
	// NewConcurrent always prefill synchronously and reject it.
	SyncPrefill bool
	// TelemetryAddr, when non-empty, starts the stdlib exposition server
	// ("host:port"; port 0 picks a free one) publishing /metrics, /statusz,
	// expvar and pprof. Supported by NewConcurrent and NewSharded; New
	// rejects it because a single-goroutine System cannot be scraped
	// concurrently with traffic.
	TelemetryAddr string
	// LogOutput, when non-nil, receives structured logfmt lines from the
	// switch path and the shard prefill workers at LogLevel or above.
	LogOutput io.Writer
	// LogLevel is the minimum severity emitted to LogOutput.
	LogLevel LogLevel
	// TraceDepth sizes the per-module switch-decision audit ring (zero
	// keeps the default of 64).
	TraceDepth int
	// Validation selects the input-hardening policy applied to inbound
	// objects and queries (default ValidationClamp).
	Validation ValidationPolicy
	// Breaker tunes the per-estimator quarantine circuit breaker; zero
	// fields keep the package defaults.
	Breaker BreakerConfig
	// FaultInjector, when non-nil, deterministically injects estimator
	// faults for chaos testing. Nil (the default) injects nothing.
	FaultInjector *FaultInjector
	// PrefillQueueDepth bounds each shard's deferred pre-fill queue
	// (zero = 4). A full queue falls back to an inline replay, counted in
	// the PrefillQueueFull gauge. New and NewConcurrent ignore it.
	PrefillQueueDepth int
	// IngestQueueDepth bounds each shard's ingest pipeline queue in routed
	// chunks (zero = 8). A full queue blocks the producer, counted in the
	// IngestBackpressure gauge. New and NewConcurrent reject it.
	IngestQueueDepth int
	// SyncIngest makes ShardedSystem apply feeds under the shard lock on
	// the calling goroutine instead of the shard's feed worker. New and
	// NewConcurrent always ingest synchronously and reject it.
	SyncIngest bool
	// LatencyModel, when non-nil, replaces wall-clock estimator latency
	// measurement in the switching model's training signal. Correctness
	// harnesses use it to make latency-sensitive switching decisions
	// (α > 0, opportunity switches) bit-reproducible across engines and
	// runs; production deployments leave it nil.
	LatencyModel func(estimator string, q *Query, measured time.Duration) time.Duration
}

// System bundles a LATEST module with the exact window store that plays
// the database: Feed maintains both, Execute answers exactly and feeds the
// result back as training signal. Not safe for concurrent use; wrap with
// your own synchronization if needed (the hot path is single-writer in
// streaming systems).
type System struct {
	module *core.Module
	window *stream.Window
	world  Rect
	policy ValidationPolicy

	// lastTS is the stream's timestamp high-water mark; under
	// ValidationClamp a regressed arrival is clamped to it instead of
	// violating the window store's ordering invariant.
	lastTS int64

	// gen counts snapshots taken of this engine; each Snapshot embeds
	// gen+1 and the paired feed WAL is named after it, so a restore knows
	// which WAL tail extends which snapshot.
	gen uint64

	// fingerprint is the byte encoding of every configuration knob that
	// shapes serialized state; Restore refuses a snapshot whose fingerprint
	// differs (CodeMismatch) rather than silently reinterpreting state
	// under different parameters.
	fingerprint []byte

	// pendingRejected marks that the last Estimate refused its query, so
	// the paired Execute/ObserveActual must not feed the module a truth
	// value it never produced an estimate for.
	pendingRejected bool

	// scratch keeps single-object Feed allocation-free: the object is
	// staged here so the pointer handed to the module points into the
	// (already heap-resident) System rather than forcing the argument to
	// escape. Estimators copy what they keep, so the buffer is reusable.
	scratch Object

	// gauges are the engine's operational counters and latency histograms:
	// atomic, allocation-free, safe to snapshot while traffic flows.
	// Single-object feeds are timed one in metrics.FeedSampleInterval.
	// A pointer so a ShardedSystem can point every shard's System at the
	// shard's own gauge set — validation events detected inside feedPtr
	// then land in the gauges the sharded Stats actually reads.
	gauges *metrics.ShardGauges
	log    *telemetry.Logger

	// guard enforces the single-goroutine contract in -race builds (a
	// zero-size no-op otherwise): concurrent method calls — including a
	// TelemetrySnapshot scrape racing traffic — panic with the fix spelled
	// out instead of corrupting state silently.
	guard raceGuard
}

// New builds a System over the given world rectangle, keeping the last
// window duration of stream data. Tuning knobs are functional options
// (WithAlpha, WithTau, ...); zero options take the paper's defaults.
// Options that require a concurrency-safe or sharded engine (WithTelemetry,
// WithShards, WithSynchronousPrefill, WithPrefillQueueDepth) are rejected
// with a descriptive error.
func New(world Rect, window time.Duration, opts ...Option) (*System, error) {
	return newSystem(buildConfig(world, window, opts), nil, "inline", "system", kindSingle)
}

// MustNew is New but panics on error — for tests, examples and programs
// whose configuration is static.
func MustNew(world Rect, window time.Duration, opts ...Option) *System {
	s, err := New(world, window, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// refillFunc seeds a freshly wiped estimator from the window store.
// nil means the default synchronous full-window replay.
type refillFunc func(w *stream.Window, e estimator.Estimator)

// syncRefill replays every live window object into e.
func syncRefill(w *stream.Window, e estimator.Estimator) {
	w.Each(func(o *stream.Object) bool {
		e.Insert(o)
		return true
	})
}

// newSystem is the shared constructor. refill overrides how switch
// candidates are pre-filled from the window store (ShardedSystem hands the
// replay to a background goroutine); nil keeps the synchronous replay.
// prefillMode annotates switch-decision traces ("inline" or "async"),
// component names the logger ("system", "concurrent", "shard-3", ...), and
// kind names the constructor for option-compatibility errors.
func newSystem(cfg config, refill refillFunc, prefillMode, component string, kind engineKind) (*System, error) {
	if err := validateOptions(&cfg, kind); err != nil {
		return nil, err
	}
	cells := cfg.OracleGridCells
	if cells == 0 {
		cells = 4096
	}
	if refill == nil {
		refill = syncRefill
	}
	log := telemetry.NewLogger(cfg.LogOutput, cfg.LogLevel).Named(component)
	w := stream.NewWindow(cfg.World, cfg.Window.Milliseconds(), cells)
	m, err := core.New(core.Config{
		World:             cfg.World,
		Span:              cfg.Window.Milliseconds(),
		Registry:          cfg.Registry,
		Estimators:        cfg.Estimators,
		Default:           cfg.Default,
		Alpha:             cfg.Alpha,
		AlphaSet:          cfg.AlphaSet,
		Tau:               cfg.Tau,
		Beta:              cfg.Beta,
		AccWindow:         cfg.AccWindow,
		PretrainQueries:   cfg.PretrainQueries,
		CooldownQueries:   cfg.CooldownQueries,
		OpportunityMargin: cfg.OpportunityMargin,
		Scale:             cfg.MemoryScale,
		Seed:              cfg.Seed,
		OnSwitch:          cfg.OnSwitch,
		LatencyOf:         cfg.LatencyModel,
		Logger:            log,
		TraceDepth:        cfg.TraceDepth,
		PrefillMode:       prefillMode,
		Resilience:        cfg.Breaker,
		Injector:          cfg.FaultInjector,
		// The exact window store doubles as the last-resort fallback when
		// every estimator is quarantined: slower than any summary, but
		// always correct and always available.
		Oracle: func(q *stream.Query) float64 {
			return float64(w.Answer(q))
		},
		Refill: func(e estimator.Estimator) {
			refill(w, e)
		},
	})
	if err != nil {
		return nil, err
	}
	return &System{
		module:      m,
		window:      w,
		world:       cfg.World,
		policy:      cfg.Validation,
		gauges:      new(metrics.ShardGauges),
		log:         log,
		fingerprint: configFingerprint(&cfg, m.Estimators()),
	}, nil
}

// engineKind names the constructor being validated, so option-surface
// errors can say which constructor rejected which option and why.
type engineKind int

const (
	kindSingle engineKind = iota
	kindConcurrent
	kindSharded
)

// String returns the constructor name.
func (k engineKind) String() string {
	switch k {
	case kindSingle:
		return "New"
	case kindConcurrent:
		return "NewConcurrent"
	default:
		return "NewSharded"
	}
}

// optionErr is the one error shape every option-surface rejection uses:
// which option, which constructor, why.
func optionErr(option string, kind engineKind, reason string) error {
	return fmt.Errorf("latest: %s is not supported by %s (%s)", option, kind, reason)
}

// validateOptions rejects option values that would previously surface as a
// panic inside an internal constructor (grid sizing, slicer spans, EWMA
// alphas, trace rings), turning each into a descriptive error at the API
// boundary, and rejects options the constructor's engine shape cannot
// honour — silently ignoring them would let a caller believe telemetry is
// being served or shards exist when they do not. Bounds the core layer
// already enforces with errors (Tau, Beta, Alpha ranges, fleet membership)
// are left to it.
func validateOptions(cfg *config, kind engineKind) error {
	if kind != kindSharded {
		if cfg.Shards != 0 {
			return optionErr("WithShards", kind, "only a ShardedSystem partitions the world")
		}
		if cfg.SyncPrefill {
			return optionErr("WithSynchronousPrefill", kind, "this engine always prefills synchronously")
		}
		if cfg.PrefillQueueDepth != 0 {
			return optionErr("WithPrefillQueueDepth", kind, "only a ShardedSystem defers prefills to a queue")
		}
		if cfg.IngestQueueDepth != 0 {
			return optionErr("WithIngestQueueDepth", kind, "only a ShardedSystem pipelines ingest through per-shard queues")
		}
		if cfg.SyncIngest {
			return optionErr("WithSynchronousIngest", kind, "this engine always ingests synchronously")
		}
	}
	if kind == kindSingle && cfg.TelemetryAddr != "" {
		return optionErr("WithTelemetry", kind, "a single-goroutine System cannot be scraped concurrently with traffic; use NewConcurrent or NewSharded")
	}
	if cfg.Window <= 0 {
		return fmt.Errorf("latest: Window must be positive, got %v", cfg.Window)
	}
	if cfg.Window.Milliseconds() <= 0 {
		return fmt.Errorf("latest: Window must be at least 1ms, got %v (the window store and estimator slicers run on millisecond virtual time)", cfg.Window)
	}
	if cfg.World.Empty() || !cfg.World.Valid() {
		return fmt.Errorf("latest: World must be a valid non-empty rectangle, got %v", cfg.World)
	}
	if !cfg.Validation.valid() {
		return fmt.Errorf("latest: unknown validation policy %d (use ValidationClamp, ValidationStrict or ValidationDrop)", int(cfg.Validation))
	}
	if cfg.OracleGridCells < 0 {
		return fmt.Errorf("latest: OracleGridCells must be non-negative, got %d", cfg.OracleGridCells)
	}
	if cfg.OracleGridCells > 0 {
		side := int(math.Sqrt(float64(cfg.OracleGridCells)))
		if side*side != cfg.OracleGridCells {
			return fmt.Errorf("latest: OracleGridCells must be a perfect square (the exact store uses a square grid), got %d", cfg.OracleGridCells)
		}
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"AccWindow", cfg.AccWindow},
		{"PretrainQueries", cfg.PretrainQueries},
		{"CooldownQueries", cfg.CooldownQueries},
		{"TraceDepth", cfg.TraceDepth},
		{"PrefillQueueDepth", cfg.PrefillQueueDepth},
		{"IngestQueueDepth", cfg.IngestQueueDepth},
	} {
		if f.v < 0 {
			return fmt.Errorf("latest: %s must be non-negative, got %d", f.name, f.v)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Alpha", cfg.Alpha},
		{"Tau", cfg.Tau},
		{"Beta", cfg.Beta},
		{"MemoryScale", cfg.MemoryScale},
		{"OpportunityMargin", cfg.OpportunityMargin},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("latest: %s must be finite, got %v", f.name, f.v)
		}
	}
	if cfg.MemoryScale < 0 {
		return fmt.Errorf("latest: MemoryScale must be non-negative, got %v", cfg.MemoryScale)
	}
	return nil
}

// feedPtr is the allocation-free ingest path shared by Feed, FeedBatch and
// the concurrent wrappers. The object is validated under the configured
// policy first — non-finite coordinates are rejected, regressed timestamps
// clamped (ValidationClamp) or rejected — and a ValidationClamp repair
// mutates the pointee. Otherwise the pointee is only read during the call;
// estimators copy what they keep.
func (s *System) feedPtr(o *Object) {
	if !checkObject(o, s.lastTS, s.policy, s.gauges, s.log) {
		return
	}
	s.lastTS = o.Timestamp
	s.window.Insert(*o)
	s.module.Insert(o)
}

// Feed ingests one stream object. Timestamps should be non-decreasing; a
// regressed arrival is clamped to the high-water mark under the default
// ValidationClamp policy (see WithValidation for the alternatives).
// One in metrics.FeedSampleInterval calls is timed into the ingest latency
// histogram; the rest pay a single atomic increment.
func (s *System) Feed(o Object) {
	s.guard.enter("Feed")
	defer s.guard.exit()
	if s.gauges.RecordFeed() {
		start := time.Now()
		s.scratch = o
		s.feedPtr(&s.scratch)
		s.gauges.RecordFeedLatency(time.Since(start))
		s.gauges.SetOccupancy(s.window.Size())
		return
	}
	s.scratch = o
	s.feedPtr(&s.scratch)
}

// FeedBatch ingests a batch of stream objects in order. Timestamps must be
// non-decreasing within the batch and across calls. Batching skips the
// per-object staging copy of Feed.
func (s *System) FeedBatch(objs []Object) {
	if len(objs) == 0 {
		return
	}
	s.guard.enter("FeedBatch")
	defer s.guard.exit()
	start := time.Now()
	for i := range objs {
		s.feedPtr(&objs[i])
	}
	s.gauges.RecordBatch(len(objs), time.Since(start))
	s.gauges.SetOccupancy(s.window.Size())
}

// Estimate answers the query approximately through the active estimator.
// Follow it with Execute or ObserveActual to close the feedback loop.
//
// The query is validated first: under the default ValidationClamp policy an
// inverted rectangle is repaired in place (so the paired Execute sees the
// repaired query); a query the policy rejects returns 0 and the paired
// Execute/ObserveActual becomes a no-op rather than feeding the model a
// truth value it never estimated.
func (s *System) Estimate(q *Query) float64 {
	s.guard.enter("Estimate")
	defer s.guard.exit()
	if !checkQuery(q, s.policy, s.world, s.gauges, s.log) {
		s.pendingRejected = true
		return 0
	}
	s.pendingRejected = false
	return s.module.Estimate(q)
}

// Execute runs the query exactly against the window store, feeds the true
// selectivity back to the learning model, and returns the exact count. Call
// it after Estimate for the same query. When that Estimate rejected the
// query, Execute returns 0 without touching the store or the model.
func (s *System) Execute(q *Query) int {
	s.guard.enter("Execute")
	defer s.guard.exit()
	if s.pendingRejected {
		s.pendingRejected = false
		return 0
	}
	actual := s.window.Answer(q)
	s.module.Observe(float64(actual))
	return actual
}

// ObserveActual closes the feedback loop with a truth value obtained from
// an external execution engine. A no-op when the paired Estimate rejected
// its query.
func (s *System) ObserveActual(actual float64) {
	s.guard.enter("ObserveActual")
	defer s.guard.exit()
	if s.pendingRejected {
		s.pendingRejected = false
		return
	}
	s.module.Observe(actual)
}

// estimateAndExecute is the untimed estimate+execute cycle. ShardedSystem
// calls it so shard queries are timed once, into the shard's own gauges.
func (s *System) estimateAndExecute(q *Query) (estimate float64, actual int) {
	estimate = s.Estimate(q)
	actual = s.Execute(q)
	return estimate, actual
}

// EstimateAndExecute is the common two-step as one call: approximate
// answer, exact answer, feedback. The full cycle is timed into the query
// latency histogram.
func (s *System) EstimateAndExecute(q *Query) (estimate float64, actual int) {
	start := time.Now()
	estimate, actual = s.estimateAndExecute(q)
	s.gauges.RecordQuery(time.Since(start))
	return estimate, actual
}

// EstimateAndExecuteBatch runs EstimateAndExecute over a batch of queries,
// returning the parallel estimate and exact-count slices. Queries are
// answered in order, each closing its own feedback loop.
func (s *System) EstimateAndExecuteBatch(qs []Query) (estimates []float64, actuals []int) {
	estimates = make([]float64, len(qs))
	actuals = make([]int, len(qs))
	for i := range qs {
		estimates[i], actuals[i] = s.EstimateAndExecute(&qs[i])
	}
	return estimates, actuals
}

// ActiveEstimator returns the currently employed estimator's name.
func (s *System) ActiveEstimator() string { return s.module.ActiveName() }

// Phase returns the lifecycle phase.
func (s *System) Phase() Phase { return s.module.Phase() }

// Switches returns the switch history.
func (s *System) Switches() []SwitchEvent { return s.module.Switches() }

// AccuracyAverage returns the monitored sliding accuracy average.
func (s *System) AccuracyAverage() float64 { return s.module.AccuracyAverage() }

// WindowSize returns the number of live objects in the exact store.
func (s *System) WindowSize() int { return s.window.Size() }

// Stats returns a snapshot of the module internals.
func (s *System) Stats() Stats {
	s.guard.enter("Stats")
	defer s.guard.exit()
	return s.module.Snapshot()
}

// RecommendFor returns the model's current estimator recommendation for a
// query, without changing any state.
func (s *System) RecommendFor(q *Query) string { return s.module.RecommendFor(q) }

// Gauges returns a point-in-time copy of the engine's operational counters
// and latency histograms. The counters are atomic, so this is safe even
// while another goroutine drives traffic.
func (s *System) Gauges() GaugeSnapshot { return s.gauges.Snapshot() }

// Decisions returns the recent switch-decision audit records, oldest first.
func (s *System) Decisions() []Decision { return s.module.Decisions() }

// QuarantinedEstimators returns the names of estimators currently held in
// quarantine by their circuit breakers, in fleet order (empty when the
// whole fleet is healthy).
func (s *System) QuarantinedEstimators() []string { return s.module.QuarantinedNames() }

// Shutdown satisfies the unified Engine interface. A System owns no
// background resources — no telemetry server, no shard workers — so there
// is nothing to stop; it exists so code written against Engine can shut any
// shape down uniformly.
func (s *System) Shutdown(context.Context) error { return nil }
