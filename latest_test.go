package latest

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/metrics"
)

func testSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	base := []Option{WithPretrainQueries(150), WithAccWindow(60), WithSeed(1)}
	sys, err := New(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10*time.Second,
		append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func feedSystem(sys *System, rng *rand.Rand, ts *int64, n int) {
	for i := 0; i < n; i++ {
		*ts++
		sys.Feed(Object{
			ID:        uint64(*ts),
			Loc:       Pt(rng.Float64(), rng.Float64()),
			Keywords:  []string{fmt.Sprintf("kw%d", rng.Intn(20))},
			Timestamp: *ts,
		})
	}
}

func TestSystemLifecycle(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(2))
	var ts int64
	if sys.Phase() != PhaseWarmup {
		t.Fatalf("phase = %v", sys.Phase())
	}
	feedSystem(sys, rng, &ts, 3000)
	if sys.WindowSize() == 0 {
		t.Fatal("window empty after feeding")
	}
	for i := 0; i < 150; i++ {
		feedSystem(sys, rng, &ts, 10)
		q := HybridQuery(CenteredRect(Pt(0.5, 0.5), 0.4, 0.4), []string{"kw1"}, ts)
		est, actual := sys.EstimateAndExecute(&q)
		if est < 0 {
			t.Fatalf("negative estimate %v (actual %d)", est, actual)
		}
	}
	if sys.Phase() != PhaseIncremental {
		t.Fatalf("phase after pretraining = %v", sys.Phase())
	}
	if sys.ActiveEstimator() != EstimatorRSH {
		t.Errorf("active = %q, want default RSH", sys.ActiveEstimator())
	}
	st := sys.Stats()
	// TrainingRecords resets on a drift retrain, so assert the stable
	// query counters plus a non-empty model.
	if st.PretrainSeen != 150 {
		t.Errorf("pretrain seen = %d", st.PretrainSeen)
	}
	if st.TrainingRecords == 0 {
		t.Errorf("model saw no records")
	}
}

func TestSystemAccuracyOnStableWorkload(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(3))
	var ts int64
	feedSystem(sys, rng, &ts, 5000)
	// Pre-training must see varied queries — a constant query would let
	// even the workload-driven FFN memorize it perfectly and legitimately
	// win the α-weighted score.
	for i := 0; i < 150; i++ {
		feedSystem(sys, rng, &ts, 10)
		q := SpatialQuery(CenteredRect(Pt(rng.Float64(), rng.Float64()), 0.25, 0.25), ts)
		sys.EstimateAndExecute(&q)
	}
	// Post-pretraining, estimates should track the oracle closely.
	total := 0.0
	const n = 100
	for i := 0; i < n; i++ {
		feedSystem(sys, rng, &ts, 10)
		q := SpatialQuery(CenteredRect(Pt(rng.Float64(), rng.Float64()), 0.25, 0.25), ts)
		est, actual := sys.EstimateAndExecute(&q)
		total += metrics.Accuracy(est, float64(actual))
	}
	if avg := total / n; avg < 0.8 {
		t.Errorf("mean accuracy %.3f", avg)
	}
	// A stable workload permits at most the opportunity trigger's single
	// move to an equally-accurate faster estimator — never churn.
	if sw := sys.Switches(); len(sw) > 1 {
		t.Errorf("churn on stable workload: %v", sw)
	}
}

func TestSystemObserveActualPath(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(4))
	var ts int64
	feedSystem(sys, rng, &ts, 1000)
	q := KeywordQuery([]string{"kw0"}, ts)
	_ = sys.Estimate(&q)
	sys.ObserveActual(42) // external engine supplied the truth
	if sys.Stats().TrainingRecords == 0 {
		t.Error("external feedback produced no training records")
	}
}

func TestSystemRejectsBadConfig(t *testing.T) {
	if _, err := New(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := New(Rect{}, time.Second); err == nil {
		t.Error("empty world accepted")
	}
	if _, err := New(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, time.Second,
		WithDefaultEstimator("bogus")); err == nil {
		t.Error("bogus default accepted")
	}
}

// TestOptionsMatchConfig pins the functional-option surface to the
// resolved config fields it writes, including the Alpha/AlphaSet pairing
// that options exist to hide.
func TestOptionsMatchConfig(t *testing.T) {
	world := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	onSwitch := func(SwitchEvent) {}
	got := buildConfig(world, time.Minute, []Option{
		WithAlpha(0), // the literal zero the old API could not express
		WithTau(0.6), WithBeta(0.7), WithAccWindow(90),
		WithPretrainQueries(123), WithCooldown(17),
		WithOpportunityMargin(-1), WithMemoryScale(2),
		WithSeed(99), WithOnSwitch(onSwitch), WithOracleGridCells(256),
		WithShards(3), WithSynchronousPrefill(),
		nil, // nil options are tolerated
	})
	if !got.AlphaSet || got.Alpha != 0 {
		t.Errorf("WithAlpha(0): alpha=%v set=%v", got.Alpha, got.AlphaSet)
	}
	if got.World != world || got.Window != time.Minute {
		t.Errorf("world/window = %v/%v", got.World, got.Window)
	}
	if got.Tau != 0.6 || got.Beta != 0.7 || got.AccWindow != 90 ||
		got.PretrainQueries != 123 || got.CooldownQueries != 17 ||
		got.OpportunityMargin != -1 || got.MemoryScale != 2 ||
		got.Seed != 99 || got.OracleGridCells != 256 ||
		got.Shards != 3 || !got.SyncPrefill || got.OnSwitch == nil {
		t.Errorf("options lost fields: %+v", got)
	}
	// A later option overrides an earlier one.
	over := buildConfig(world, time.Minute, []Option{WithSeed(1), WithSeed(2)})
	if over.Seed != 2 {
		t.Errorf("later option did not win: seed = %d", over.Seed)
	}
}

// TestFeedBatch pins the batch ingest and batch query paths to their
// single-object equivalents on a deterministic system.
func TestFeedBatch(t *testing.T) {
	single := testSystem(t)
	batched := testSystem(t)
	rng := rand.New(rand.NewSource(6))
	objs := make([]Object, 500)
	for i := range objs {
		objs[i] = Object{
			ID:        uint64(i + 1),
			Loc:       Pt(rng.Float64(), rng.Float64()),
			Keywords:  []string{fmt.Sprintf("kw%d", rng.Intn(20))},
			Timestamp: int64(i + 1),
		}
	}
	for i := range objs {
		single.Feed(objs[i])
	}
	batched.FeedBatch(append([]Object(nil), objs...))
	if single.WindowSize() != batched.WindowSize() {
		t.Fatalf("window sizes diverge: %d vs %d", single.WindowSize(), batched.WindowSize())
	}
	qs := []Query{
		SpatialQuery(CenteredRect(Pt(0.5, 0.5), 0.4, 0.4), 500),
		KeywordQuery([]string{"kw1"}, 500),
		HybridQuery(CenteredRect(Pt(0.25, 0.25), 0.3, 0.3), []string{"kw2"}, 500),
	}
	ests, acts := batched.EstimateAndExecuteBatch(qs)
	if len(ests) != len(qs) || len(acts) != len(qs) {
		t.Fatalf("batch result lengths %d/%d", len(ests), len(acts))
	}
	for i := range qs {
		wantEst, wantAct := single.EstimateAndExecute(&qs[i])
		if ests[i] != wantEst || acts[i] != wantAct {
			t.Errorf("query %d: batch (%v, %d) vs single (%v, %d)",
				i, ests[i], acts[i], wantEst, wantAct)
		}
	}
}

// TestCustomEstimatorRegistration exercises the §IV extensibility claim:
// a user-defined estimator participates in the fleet.
func TestCustomEstimatorRegistration(t *testing.T) {
	reg := DefaultRegistry()
	reg.Register("Naive", func(p EstimatorParams) Estimator {
		return &naiveEstimator{}
	})
	sys := testSystem(t, WithRegistry(reg),
		WithEstimators(EstimatorH4096, EstimatorRSH, "Naive"))
	rng := rand.New(rand.NewSource(5))
	var ts int64
	feedSystem(sys, rng, &ts, 2000)
	for i := 0; i < 150; i++ {
		feedSystem(sys, rng, &ts, 5)
		q := SpatialQuery(CenteredRect(Pt(0.5, 0.5), 0.3, 0.3), ts)
		sys.EstimateAndExecute(&q)
	}
	if sys.Phase() != PhaseIncremental {
		t.Fatalf("phase = %v", sys.Phase())
	}
}

// naiveEstimator always answers zero — the worst legal estimator.
type naiveEstimator struct{ n int }

func (e *naiveEstimator) Name() string                     { return "Naive" }
func (e *naiveEstimator) Insert(o *Object)                 { e.n++ }
func (e *naiveEstimator) Estimate(q *Query) float64        { return 0 }
func (e *naiveEstimator) Observe(q *Query, actual float64) {}
func (e *naiveEstimator) Reset()                           { e.n = 0 }
func (e *naiveEstimator) MemoryBytes() int                 { return 8 }

func TestQueryConstructors(t *testing.T) {
	r := NewRect(Pt(1, 1), Pt(0, 0))
	if r != (Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}) {
		t.Errorf("NewRect = %v", r)
	}
	sq := SpatialQuery(r, 5)
	kq := KeywordQuery([]string{"a"}, 5)
	hq := HybridQuery(r, []string{"a"}, 5)
	if sq.Type() != SpatialQueryType || kq.Type() != KeywordQueryType || hq.Type() != HybridQueryType {
		t.Error("query constructors produced wrong types")
	}
}
