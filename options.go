package latest

import (
	"io"
	"time"
)

// options.go defines the functional-option configuration surface shared by
// New, NewConcurrent and NewSharded — the only way to configure an engine.
// WithAlpha(0) unambiguously means "accuracy only", no companion boolean
// required. Options that only make sense for a particular engine shape
// (WithTelemetry, WithShards, WithSynchronousPrefill, WithPrefillQueueDepth)
// are rejected by the constructors that cannot honour them.

// Option customizes a System, ConcurrentSystem or ShardedSystem at
// construction time. Options apply in order; later options win.
type Option func(*config)

// WithRegistry supplies the estimator registry (nil keeps the paper's six).
func WithRegistry(r *Registry) Option {
	return func(c *config) { c.Registry = r }
}

// WithEstimators names the fleet members (default: every registered
// estimator, in registration order).
func WithEstimators(names ...string) Option {
	return func(c *config) { c.Estimators = append([]string(nil), names...) }
}

// WithDefaultEstimator names the estimator active when the incremental
// phase starts (default RSH, as in the paper).
func WithDefaultEstimator(name string) Option {
	return func(c *config) { c.Default = name }
}

// WithAlpha sets α ∈ [0,1], the latency-vs-accuracy weight of switching
// decisions: 0 = accuracy only, 1 = latency only. A literal 0 needs no
// companion flag.
func WithAlpha(a float64) Option {
	return func(c *config) { c.Alpha, c.AlphaSet = a, true }
}

// WithTau sets τ ∈ (0,1), the accuracy threshold that triggers a switch
// (default 0.75).
func WithTau(t float64) Option {
	return func(c *config) { c.Tau = t }
}

// WithBeta sets β ∈ (0,1), controlling how early the replacement estimator
// starts pre-filling (default 0.8).
func WithBeta(b float64) Option {
	return func(c *config) { c.Beta = b }
}

// WithAccWindow sets how many recent queries the monitored accuracy
// average covers (default 200).
func WithAccWindow(n int) Option {
	return func(c *config) { c.AccWindow = n }
}

// WithPretrainQueries sets the pre-training phase length (default 2000).
func WithPretrainQueries(n int) Option {
	return func(c *config) { c.PretrainQueries = n }
}

// WithCooldown sets the minimum number of queries between switches
// (default AccWindow/2).
func WithCooldown(n int) Option {
	return func(c *config) { c.CooldownQueries = n }
}

// WithOpportunityMargin sets the proactive-switch margin: the adaptor moves
// to a strictly better estimator once its α-weighted score exceeds the
// active one's by this margin for half an accuracy window (default 0.15).
// Negative disables opportunity switches entirely, leaving only the τ
// threshold — useful for bit-exact reproducible runs, since opportunity
// decisions weigh measured wall-clock latency.
func WithOpportunityMargin(m float64) Option {
	return func(c *config) { c.OpportunityMargin = m }
}

// WithMemoryScale multiplies every estimator's capacity defaults
// (default 1).
func WithMemoryScale(s float64) Option {
	return func(c *config) { c.MemoryScale = s }
}

// WithSeed makes runs reproducible.
func WithSeed(seed int64) Option {
	return func(c *config) { c.Seed = seed }
}

// WithOnSwitch installs a callback invoked after every estimator switch.
func WithOnSwitch(fn func(SwitchEvent)) Option {
	return func(c *config) { c.OnSwitch = fn }
}

// WithOracleGridCells sizes the exact window store's internal grid (speed
// only, never correctness; default 4096).
func WithOracleGridCells(n int) Option {
	return func(c *config) { c.OracleGridCells = n }
}

// WithShards sets the number of spatial shards a ShardedSystem partitions
// the world into (default runtime.GOMAXPROCS(0)). New and NewConcurrent
// reject it.
func WithShards(n int) Option {
	return func(c *config) { c.Shards = n }
}

// WithSynchronousPrefill makes a ShardedSystem warm switch candidates on
// the query path (the single-threaded System behaviour) instead of handing
// the window replay to the shard's background goroutine. Costs switch-time
// latency, buys determinism: a 1-shard ShardedSystem with synchronous
// prefill reproduces System bit-for-bit. New and NewConcurrent always
// prefill synchronously and reject it.
func WithSynchronousPrefill() Option {
	return func(c *config) { c.SyncPrefill = true }
}

// WithTelemetry starts a stdlib-only HTTP exposition server on addr
// ("host:port"; port 0 lets the kernel pick — read the bound address back
// with TelemetryAddr). It publishes Prometheus text at /metrics, a JSON
// status snapshot (switch-decision trace, per-estimator q-error, latency
// percentiles) at /statusz, expvar at /debug/vars and pprof under
// /debug/pprof/. Supported by NewConcurrent and NewSharded, whose engines
// are safe to scrape while traffic flows; New returns an error because a
// single-goroutine System is not. Stop the server with Close, or with
// Shutdown(ctx) to let in-flight scrapes finish first.
//
// When the engine sits behind the network serving layer (cmd/latestd),
// leave this option off: the daemon runs its own exposition server via
// internal/server and publishes the engine's TelemetrySnapshot alongside
// the serving-layer families on a single /metrics listener.
func WithTelemetry(addr string) Option {
	return func(c *config) { c.TelemetryAddr = addr }
}

// WithLogger directs structured logfmt lines (estimator switches, prefill
// lifecycle, telemetry-server lifecycle) at or above min to w. Logging
// stays off the per-object and per-query hot paths.
func WithLogger(w io.Writer, min LogLevel) Option {
	return func(c *config) { c.LogOutput, c.LogLevel = w, min }
}

// WithTraceDepth sizes the switch-decision audit ring each module retains
// (default 64). Deeper rings remember more history at a few hundred bytes
// per record.
func WithTraceDepth(n int) Option {
	return func(c *config) { c.TraceDepth = n }
}

// WithValidation selects the input-hardening policy applied to inbound
// objects (Feed/FeedBatch) and queries (the estimate entry points):
// ValidationClamp (the default) repairs what is repairable and rejects the
// rest, ValidationStrict rejects every non-conforming input, ValidationDrop
// rejects silently. Rejections and repairs are counted in the
// ValidationRejected / ValidationClamped gauges.
func WithValidation(p ValidationPolicy) Option {
	return func(c *config) { c.Validation = p }
}

// WithBreaker tunes the per-estimator quarantine circuit breaker (fault
// window, trip threshold, cooldown, probe count, per-call deadline,
// estimate sanity ceiling). Zero fields keep the package defaults.
func WithBreaker(b BreakerConfig) Option {
	return func(c *config) { c.Breaker = b }
}

// WithFaultInjector installs a deterministic fault injector on every
// estimator guard — the chaos-testing hook. Injected faults flow through
// the same recovery, sanitization and quarantine machinery as real ones.
func WithFaultInjector(inj *FaultInjector) Option {
	return func(c *config) { c.FaultInjector = inj }
}

// WithLatencyModel replaces wall-clock estimator latency measurement with
// fn in the switching model's training signal: fn receives the estimator
// name, the query, and the measured latency, and returns the latency to
// record. Combined with WithSeed this makes latency-sensitive switching
// decisions (α > 0, opportunity switches) bit-reproducible across engines
// and runs — the correctness harness in internal/check depends on it.
// Production deployments leave it unset.
func WithLatencyModel(fn func(estimator string, q *Query, measured time.Duration) time.Duration) Option {
	return func(c *config) { c.LatencyModel = fn }
}

// WithPrefillQueueDepth bounds each shard's deferred pre-fill queue
// (default 4). When a switch storm fills the queue, the replay runs inline
// on the query path instead — counted in the PrefillQueueFull gauge. New
// and NewConcurrent reject it.
func WithPrefillQueueDepth(n int) Option {
	return func(c *config) { c.PrefillQueueDepth = n }
}

// WithIngestQueueDepth bounds each shard's ingest pipeline queue, in
// routed chunks — one chunk per Feed call or per FeedBatch sub-batch
// (default 8). A producer that finds the queue full blocks until the
// shard's feed worker catches up; those stalls are counted in the
// IngestBackpressure gauge. New and NewConcurrent reject it.
func WithIngestQueueDepth(n int) Option {
	return func(c *config) { c.IngestQueueDepth = n }
}

// WithSynchronousIngest disables a ShardedSystem's per-shard ingest
// pipelines: Feed and FeedBatch apply objects under the shard lock on the
// calling goroutine instead of handing them to the shard's feed worker.
// Routing is still single-pass; what is lost is the producer/apply overlap
// and the single-writer gauge path. Mainly for benchmark baselines and for
// callers that need the apply completed when the call returns without
// paying a drain. New and NewConcurrent are always synchronous and reject
// it.
func WithSynchronousIngest() Option {
	return func(c *config) { c.SyncIngest = true }
}

// buildConfig folds options into a Config carrying the world and window.
func buildConfig(world Rect, window time.Duration, opts []Option) config {
	cfg := config{World: world, Window: window}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return cfg
}
