package latest

import (
	"strings"
	"testing"
	"time"
)

// options_test.go pins the constructor-aware option surface: each engine
// shape accepts exactly the options it can honour, and every rejection
// shares one error shape naming the option, the constructor and the
// reason — silently ignoring WithTelemetry or WithShards would let a
// caller believe telemetry is served or shards exist when they do not.

func validWorld() (Rect, time.Duration) {
	return Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10 * time.Second
}

// assertOptionRejected checks the rejection and its error shape.
func assertOptionRejected(t *testing.T, err error, option, constructor string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s accepted %s, want rejection", constructor, option)
	}
	msg := err.Error()
	if !strings.Contains(msg, option) || !strings.Contains(msg, "is not supported by "+constructor) {
		t.Fatalf("%s rejecting %s: error %q does not follow the \"<option> is not supported by <constructor> (<reason>)\" shape",
			constructor, option, msg)
	}
}

func TestNewRejectsConcurrencyOptions(t *testing.T) {
	world, win := validWorld()
	cases := []struct {
		option string
		opt    Option
	}{
		{"WithTelemetry", WithTelemetry("127.0.0.1:0")},
		{"WithShards", WithShards(4)},
		{"WithSynchronousPrefill", WithSynchronousPrefill()},
		{"WithPrefillQueueDepth", WithPrefillQueueDepth(8)},
	}
	for _, c := range cases {
		_, err := New(world, win, c.opt)
		assertOptionRejected(t, err, c.option, "New")
	}
}

func TestNewConcurrentRejectsShardOptions(t *testing.T) {
	world, win := validWorld()
	cases := []struct {
		option string
		opt    Option
	}{
		{"WithShards", WithShards(4)},
		{"WithSynchronousPrefill", WithSynchronousPrefill()},
		{"WithPrefillQueueDepth", WithPrefillQueueDepth(8)},
	}
	for _, c := range cases {
		_, err := NewConcurrent(world, win, c.opt)
		assertOptionRejected(t, err, c.option, "NewConcurrent")
	}
}

// TestConcurrentAcceptsTelemetry: the concurrency-safe shapes may serve
// /statusz while traffic flows; only the single-goroutine System refuses.
func TestConcurrentAcceptsTelemetry(t *testing.T) {
	world, win := validWorld()
	conc, err := NewConcurrent(world, win, WithTelemetry("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("NewConcurrent rejected WithTelemetry: %v", err)
	}
	conc.Close()
	sh, err := NewSharded(world, win, WithShards(4), WithTelemetry("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("NewSharded rejected WithTelemetry: %v", err)
	}
	sh.Close()
}

// TestShardedAcceptsShardOptions: the full option surface is legal on the
// sharded constructor.
func TestShardedAcceptsShardOptions(t *testing.T) {
	world, win := validWorld()
	sh, err := NewSharded(world, win,
		WithShards(4), WithSynchronousPrefill(), WithPrefillQueueDepth(8))
	if err != nil {
		t.Fatalf("NewSharded rejected its own options: %v", err)
	}
	sh.Close()
}
