package latest

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/persist"
)

// persist_test.go exercises the public persistence surface end to end:
// Snapshot/Restore on every engine shape, the typed failure paths, and the
// DurableEngine crash/recovery lifecycle — all over MemStore so the suite
// stays hermetic and fast.

// workload deterministically interleaves feeds and queries so two engines
// given the same seed and starting timestamp see byte-identical traffic.
type workload struct {
	rng *rand.Rand
	ts  int64
}

func newWorkload(seed int64) *workload {
	return &workload{rng: rand.New(rand.NewSource(seed))}
}

func (w *workload) feed(eng Engine, n int) {
	for i := 0; i < n; i++ {
		w.ts++
		eng.Feed(Object{
			ID:        uint64(w.ts),
			Loc:       Pt(w.rng.Float64(), w.rng.Float64()),
			Keywords:  []string{fmt.Sprintf("kw%d", w.rng.Intn(20))},
			Timestamp: w.ts,
		})
	}
}

func (w *workload) query(eng Engine) (float64, int) {
	r := CenteredRect(Pt(w.rng.Float64(), w.rng.Float64()), 0.3, 0.3)
	kws := []string{fmt.Sprintf("kw%d", w.rng.Intn(20))}
	var q Query
	switch w.rng.Intn(3) {
	case 0:
		q = SpatialQuery(r, w.ts)
	case 1:
		q = KeywordQuery(kws, w.ts)
	default:
		q = HybridQuery(r, kws, w.ts)
	}
	return eng.EstimateAndExecute(&q)
}

// drive runs rounds of (10 feeds + 1 query) and returns a transcript of
// every estimate/actual pair; identical engines must produce identical
// transcripts.
func (w *workload) drive(eng Engine, rounds int) string {
	var b strings.Builder
	for i := 0; i < rounds; i++ {
		w.feed(eng, 10)
		est, actual := w.query(eng)
		fmt.Fprintf(&b, "q=%03d est=%.9f actual=%d\n", i, est, actual)
	}
	return b.String()
}

// warmToIncremental pushes an engine through warmup and pretraining (150
// pretrain queries under testSystem's options) into the incremental phase.
func warmEngine(t *testing.T, eng Engine, w *workload) {
	t.Helper()
	w.feed(eng, 3000)
	w.drive(eng, 160)
	if p := eng.Stats().Phase; p != PhaseIncremental {
		t.Fatalf("phase after warm drive = %v, want incremental", p)
	}
}

// restoredBehavesIdentically snapshots src, restores into dst, and then
// drives both with identical traffic: the restored engine must not merely
// look like the original, it must *behave* like it query for query.
func restoredBehavesIdentically(t *testing.T, src, dst Engine, w *workload) {
	t.Helper()
	st := NewMemStore()
	if err := src.Snapshot(context.Background(), st); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := dst.Restore(context.Background(), st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	a, b := src.Stats(), dst.Stats()
	if a.Phase != b.Phase || a.Active != b.Active ||
		a.PretrainSeen != b.PretrainSeen || a.IncrementalSeen != b.IncrementalSeen ||
		a.Switches != b.Switches || a.TrainingRecords != b.TrainingRecords {
		t.Fatalf("restored stats differ:\n  src: %+v...\n  dst: %+v...",
			struct{ P, A string }{fmt.Sprint(a.Phase), a.Active},
			struct{ P, A string }{fmt.Sprint(b.Phase), b.Active})
	}
	// Two independent copies of the post-snapshot future.
	wa, wb := newWorkload(99), newWorkload(99)
	wa.ts, wb.ts = w.ts, w.ts
	ta := wa.drive(src, 80)
	tb := wb.drive(dst, 80)
	if ta != tb {
		al, bl := strings.Split(ta, "\n"), strings.Split(tb, "\n")
		for i := range al {
			if i >= len(bl) || al[i] != bl[i] {
				t.Fatalf("post-restore behaviour diverges at line %d:\n  src: %s\n  dst: %s", i+1, al[i], bl[i])
			}
		}
		t.Fatal("post-restore transcripts differ")
	}
}

func TestSystemSnapshotRestoreRoundTrip(t *testing.T) {
	src := testSystem(t)
	w := newWorkload(7)
	warmEngine(t, src, w)
	restoredBehavesIdentically(t, src, testSystem(t), w)
}

// TestConcurrentCrossRestore: System and ConcurrentSystem share the
// "single" snapshot kind — a snapshot taken by one restores into the other.
func TestConcurrentCrossRestore(t *testing.T) {
	src := testSystem(t)
	w := newWorkload(8)
	warmEngine(t, src, w)
	conc, err := NewConcurrent(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10*time.Second,
		WithPretrainQueries(150), WithAccWindow(60), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Shutdown(context.Background())
	restoredBehavesIdentically(t, src, conc, w)
}

func testSharded(t *testing.T) *ShardedSystem {
	t.Helper()
	s, err := NewSharded(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10*time.Second,
		WithPretrainQueries(150), WithAccWindow(60), WithSeed(1),
		WithShards(4), WithSynchronousPrefill())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedSnapshotRestoreRoundTrip(t *testing.T) {
	src := testSharded(t)
	defer src.Close()
	w := newWorkload(9)
	w.feed(src, 3000)
	w.drive(src, 160)
	dst := testSharded(t)
	defer dst.Close()
	restoredBehavesIdentically(t, src, dst, w)
}

func TestRestoreFailurePaths(t *testing.T) {
	src := testSystem(t)
	w := newWorkload(10)
	warmEngine(t, src, w)
	st := NewMemStore()
	if err := src.Snapshot(context.Background(), st); err != nil {
		t.Fatal(err)
	}

	t.Run("missing artifact", func(t *testing.T) {
		err := testSystem(t).Restore(context.Background(), NewMemStore())
		if !IsNotExist(err) {
			t.Fatalf("restore from empty store = %v, want not-exist", err)
		}
	})

	t.Run("corruption", func(t *testing.T) {
		bad := NewMemStore()
		data, _ := st.Load(persist.SnapshotName)
		bad.Save(persist.SnapshotName, data)
		if err := bad.Corrupt(persist.SnapshotName, len(data)/2); err != nil {
			t.Fatal(err)
		}
		err := testSystem(t).Restore(context.Background(), bad)
		if PersistCode(err) != CodeCorrupt {
			t.Fatalf("restore corrupt = %v, want CodeCorrupt", err)
		}
	})

	t.Run("kind mismatch", func(t *testing.T) {
		sh := testSharded(t)
		defer sh.Close()
		err := sh.Restore(context.Background(), st)
		if PersistCode(err) != CodeMismatch {
			t.Fatalf("sharded restore of single snapshot = %v, want CodeMismatch", err)
		}
	})

	t.Run("fingerprint mismatch", func(t *testing.T) {
		other := testSystem(t, WithSeed(42))
		err := other.Restore(context.Background(), st)
		if PersistCode(err) != CodeMismatch {
			t.Fatalf("restore under different options = %v, want CodeMismatch", err)
		}
	})

	t.Run("non-fresh receiver", func(t *testing.T) {
		used := testSystem(t)
		uw := newWorkload(11)
		uw.feed(used, 50)
		uw.query(used) // a served query makes the receiver non-fresh
		err := used.Restore(context.Background(), st)
		if PersistCode(err) != CodeState {
			t.Fatalf("restore into used engine = %v, want CodeState", err)
		}
	})
}

func newDurable(t *testing.T, st Store) *DurableEngine {
	t.Helper()
	dur, err := NewDurable(testSystem(t), st, DurableConfig{WALSyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	return dur
}

// TestDurableCrashRecovery: feed + query, snapshot, feed a WAL tail, crash
// (abandon without Shutdown), recover — the second incarnation must match a
// control engine that saw the whole stream uninterrupted.
func TestDurableCrashRecovery(t *testing.T) {
	st := NewMemStore()
	dur := newDurable(t, st)
	w := newWorkload(20)
	warmEngine(t, dur, w)
	if err := dur.SnapshotNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	w.feed(dur, 500) // WAL'd but not snapshotted
	walTS := w.ts

	// Control: same traffic, no crash.
	control := testSystem(t)
	cw := newWorkload(20)
	cw.feed(control, 3000)
	cw.drive(control, 160)
	cw.feed(control, 500)
	if cw.ts != walTS {
		t.Fatalf("control timestamp %d != durable timestamp %d", cw.ts, walTS)
	}

	recovered := newDurable(t, st) // crash: first incarnation abandoned
	if h := recovered.Health(); !h.Healthy() || h.ErrorsTotal != 0 {
		t.Fatalf("recovery health = %s with %d errors (%v), want clean healthy", h.State, h.ErrorsTotal, h.Errors)
	}
	if got := recovered.Generation(); got != 1 {
		t.Fatalf("generation after recovery = %d, want 1", got)
	}
	a, b := control.Stats(), recovered.Stats()
	if a.Phase != b.Phase || a.Active != b.Active || a.IncrementalSeen != b.IncrementalSeen {
		t.Fatalf("recovered stats differ from control: %v/%s/%d vs %v/%s/%d",
			a.Phase, a.Active, a.IncrementalSeen, b.Phase, b.Active, b.IncrementalSeen)
	}
	wa, wb := newWorkload(21), newWorkload(21)
	wa.ts, wb.ts = walTS, walTS
	if ta, tb := wa.drive(control, 60), wb.drive(recovered, 60); ta != tb {
		t.Fatal("recovered engine diverges from uninterrupted control")
	}
	if err := recovered.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDurableWALRotation: each snapshot opens the next generation's WAL
// and removes the superseded one.
func TestDurableWALRotation(t *testing.T) {
	st := NewMemStore()
	dur := newDurable(t, st)
	w := newWorkload(22)
	w.feed(dur, 100)
	if n := dur.WALAppends(); n != 100 {
		t.Fatalf("WAL appends = %d, want 100", n)
	}
	if err := dur.SnapshotNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	wantWAL := persist.WALName(1)
	var wals []string
	for _, n := range names {
		if strings.HasSuffix(n, ".wal") {
			wals = append(wals, n)
		}
	}
	if len(wals) != 1 || wals[0] != wantWAL {
		t.Fatalf("WALs after rotation = %v, want [%s]", wals, wantWAL)
	}
	if n := dur.WALAppends(); n != 0 {
		t.Fatalf("appends after rotation = %d, want 0 (fresh WAL)", n)
	}
	if err := dur.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRestoreRefused: a DurableEngine restores at construction
// only; a later Restore is a typed state error, not a silent reset.
func TestDurableRestoreRefused(t *testing.T) {
	dur := newDurable(t, NewMemStore())
	defer dur.Shutdown(context.Background())
	if err := dur.Restore(context.Background(), NewMemStore()); PersistCode(err) != CodeState {
		t.Fatalf("Restore on live durable engine = %v, want CodeState", err)
	}
}

// TestDurableCleanShutdown: Shutdown takes a final snapshot, so a clean
// restart loses nothing — not even un-snapshotted tail feeds.
func TestDurableCleanShutdown(t *testing.T) {
	st := NewMemStore()
	dur := newDurable(t, st)
	w := newWorkload(23)
	warmEngine(t, dur, w)
	before := dur.Stats()
	if err := dur.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	reopened := newDurable(t, st)
	defer reopened.Shutdown(context.Background())
	after := reopened.Stats()
	if before.Phase != after.Phase || before.Active != after.Active ||
		before.IncrementalSeen != after.IncrementalSeen || before.Switches != after.Switches {
		t.Fatalf("state lost across clean shutdown: %+v vs %+v", before.Active, after.Active)
	}
	if reopened.Generation() == 0 {
		t.Fatal("reopened engine did not load the shutdown snapshot")
	}
}

// TestDurableFallbackRecovery: with two retained generations, corrupting
// the newest snapshot must not lose anything — recovery falls back one
// generation and replays both generations' WALs, landing byte-identical
// to an uninterrupted control.
func TestDurableFallbackRecovery(t *testing.T) {
	st := NewMemStore()
	dur := newDurable(t, st)
	w := newWorkload(26)
	warmEngine(t, dur, w)
	if err := dur.SnapshotNow(context.Background()); err != nil { // gen 1
		t.Fatal(err)
	}
	w.feed(dur, 300)                                              // WAL generation 1
	if err := dur.SnapshotNow(context.Background()); err != nil { // gen 2
		t.Fatal(err)
	}
	w.feed(dur, 200) // WAL generation 2
	crashTS := w.ts

	// Crash, then bit rot eats the newest snapshot generation.
	data, err := st.Load(persist.SnapshotNameFor(2))
	if err != nil {
		t.Fatalf("load gen-2 snapshot: %v", err)
	}
	if err := st.Corrupt(persist.SnapshotNameFor(2), len(data)/2); err != nil {
		t.Fatal(err)
	}

	control := testSystem(t)
	cw := newWorkload(26)
	cw.feed(control, 3000)
	cw.drive(control, 160)
	cw.feed(control, 300)
	cw.feed(control, 200)
	if cw.ts != crashTS {
		t.Fatalf("control timestamp %d != durable timestamp %d", cw.ts, crashTS)
	}

	recovered := newDurable(t, st)
	defer recovered.Shutdown(context.Background())
	h := recovered.Health()
	if !h.Healthy() {
		t.Fatalf("fallback recovery left state %s", h.State)
	}
	if h.ErrorsTotal == 0 {
		t.Fatal("fallback recovery recorded no error for the corrupt generation")
	}
	if !recovered.stats.recoveredFallback {
		t.Fatal("recoveredFallback not set")
	}
	if got := recovered.stats.recoveredGen; got != 1 {
		t.Fatalf("recovered from generation %d, want 1", got)
	}
	// d.gen must land past the corrupt generation so the next snapshot
	// never reuses its number.
	if got := recovered.Generation(); got != 2 {
		t.Fatalf("generation after fallback = %d, want 2", got)
	}
	wa, wb := newWorkload(27), newWorkload(27)
	wa.ts, wb.ts = crashTS, crashTS
	if ta, tb := wa.drive(control, 60), wb.drive(recovered, 60); ta != tb {
		t.Fatal("fallback-recovered engine diverges from uninterrupted control")
	}
	// The corrupt file was removed so retention never counts it again.
	if _, err := st.Load(persist.SnapshotNameFor(2)); !IsNotExist(err) {
		t.Fatalf("corrupt generation file still present (load err %v)", err)
	}
}

// TestDurableAllGenerationsCorruptRefused: when every retained snapshot
// fails its checksums, startup refuses with the typed corruption error —
// silently starting fresh would be data loss.
func TestDurableAllGenerationsCorruptRefused(t *testing.T) {
	st := NewMemStore()
	dur := newDurable(t, st)
	w := newWorkload(28)
	warmEngine(t, dur, w)
	if err := dur.SnapshotNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	w.feed(dur, 100)
	if err := dur.SnapshotNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, gen := range []uint64{1, 2} {
		data, err := st.Load(persist.SnapshotNameFor(gen))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Corrupt(persist.SnapshotNameFor(gen), len(data)/2); err != nil {
			t.Fatal(err)
		}
	}
	_, err := NewDurable(testSystem(t), st, DurableConfig{WALSyncEvery: 1})
	if PersistCode(err) != CodeCorrupt {
		t.Fatalf("recover with all generations corrupt = %v, want CodeCorrupt", err)
	}
}

// TestDurableDegradedRepair drives the state machine directly: an append
// fault degrades the engine (serving continues, appends drop), RepairNow
// commits a fresh generation and re-arms it, and the dropped feeds are in
// that snapshot — a reopened engine has them.
func TestDurableDegradedRepair(t *testing.T) {
	inner := NewMemStore()
	fst := persist.NewFaultStore(inner, persist.FaultRule{Op: persist.FaultAppend, Count: 1})
	fst.SetEnabled(false)
	dur, err := NewDurable(testSystem(t), fst, DurableConfig{WALSyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := newWorkload(29)
	warmEngine(t, dur, w)
	fst.SetEnabled(true)

	w.feed(dur, 10) // first append fires the fault and degrades
	h := dur.Health()
	if h.State != DurableDegraded {
		t.Fatalf("state after append fault = %s, want degraded", h.State)
	}
	if h.Degradations != 1 || h.DroppedAppends != 10 || h.WALErrors == 0 {
		t.Fatalf("health after fault = %+v, want 1 degradation, 10 dropped appends", h)
	}
	// Serving continues from memory while degraded.
	if est, _ := w.query(dur); est < 0 {
		t.Fatalf("degraded query estimate = %v", est)
	}

	if err := dur.RepairNow(context.Background()); err != nil {
		t.Fatalf("repair: %v", err)
	}
	h = dur.Health()
	if !h.Healthy() || h.Repairs != 1 || h.RepairAttempts != 1 {
		t.Fatalf("health after repair = %+v, want healthy with 1 repair", h)
	}
	w.feed(dur, 5) // healthy again: these hit the fresh WAL
	if n := dur.WALAppends(); n != 5 {
		t.Fatalf("appends after repair = %d, want 5", n)
	}
	crashTS := w.ts

	// Control: the same stream — warm, the 10 feeds that were dropped from
	// the WAL, the degraded-mode query, the 5 post-repair feeds — with no
	// faults anywhere.
	control := testSystem(t)
	cw := newWorkload(29)
	cw.feed(control, 3000)
	cw.drive(control, 160)
	cw.feed(control, 10)
	cw.query(control)
	cw.feed(control, 5)
	if cw.ts != crashTS {
		t.Fatalf("control timestamp %d != durable timestamp %d", cw.ts, crashTS)
	}

	// Crash (abandon) and reopen: the dropped feeds were captured by the
	// repair snapshot, the post-repair feeds by the fresh WAL — nothing
	// acknowledged after the repair is lost.
	fst.SetEnabled(false)
	reopened, err := NewDurable(testSystem(t), fst, DurableConfig{WALSyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Shutdown(context.Background())
	wa, wb := newWorkload(30), newWorkload(30)
	wa.ts, wb.ts = crashTS, crashTS
	if ta, tb := wa.drive(control, 40), wb.drive(reopened, 40); ta != tb {
		t.Fatal("reopened engine diverges from the uninterrupted control")
	}
}

// TestDurableSideSnapshot: Snapshot(ctx, otherStore) writes a portable
// copy without disturbing the engine's own store pairing.
func TestDurableSideSnapshot(t *testing.T) {
	home := NewMemStore()
	dur := newDurable(t, home)
	defer dur.Shutdown(context.Background())
	w := newWorkload(24)
	warmEngine(t, dur, w)
	side := NewMemStore()
	if err := dur.Snapshot(context.Background(), side); err != nil {
		t.Fatal(err)
	}
	dst := testSystem(t)
	if err := dst.Restore(context.Background(), side); err != nil {
		t.Fatalf("restore from side snapshot: %v", err)
	}
	if a, b := dur.Stats(), dst.Stats(); a.IncrementalSeen != b.IncrementalSeen {
		t.Fatalf("side snapshot diverges: %d vs %d", a.IncrementalSeen, b.IncrementalSeen)
	}
}
