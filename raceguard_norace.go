//go:build !race

package latest

// raceGuard (plain builds) is a zero-size no-op: the single-goroutine
// contract checks in raceguard_race.go exist only under -race, so the hot
// paths pay nothing in production builds.
type raceGuard struct{}

func (*raceGuard) enter(string) {}

func (*raceGuard) exit() {}
