//go:build race

package latest

import "sync/atomic"

// raceGuard (race builds) turns a violation of System's single-goroutine
// contract into an immediate, named panic. The plain build's data race —
// say, a /metrics scrape calling TelemetrySnapshot while another goroutine
// feeds — corrupts estimator state silently; under -race the detector
// usually flags it, but only when the racing accesses happen to overlap a
// watched address. This guard catches every overlapping call pair
// deterministically: each guarded method increments the depth on entry,
// and any entry that does not find the depth at zero is, by the contract,
// a second goroutine.
type raceGuard struct{ depth atomic.Int32 }

func (g *raceGuard) enter(op string) {
	if g.depth.Add(1) != 1 {
		panic("latest: concurrent " + op + " on a single-goroutine System " +
			"(its methods, including TelemetrySnapshot, must not race traffic; " +
			"wrap the engine with NewConcurrent or NewSharded, or serialize access)")
	}
}

func (g *raceGuard) exit() { g.depth.Add(-1) }
