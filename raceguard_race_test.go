//go:build race

package latest

import "testing"

// TestRaceGuardSequential verifies the contract checks stay silent for the
// legal pattern: strictly serialized method calls.
func TestRaceGuardSequential(t *testing.T) {
	var g raceGuard
	for i := 0; i < 3; i++ {
		g.enter("Feed")
		g.exit()
	}
	g.enter("Stats")
	g.exit()
}

// TestRaceGuardOverlapPanics verifies an overlapping call pair — by the
// single-goroutine contract, necessarily a second goroutine — panics
// deterministically with the violating operation named.
func TestRaceGuardOverlapPanics(t *testing.T) {
	var g raceGuard
	g.enter("FeedBatch")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("overlapping enter did not panic")
		}
		if msg, ok := r.(string); !ok || !contains(msg, "Stats") {
			t.Fatalf("panic message %v does not name the overlapping operation", r)
		}
	}()
	g.enter("Stats")
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
