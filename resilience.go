package latest

import (
	"github.com/spatiotext/latest/internal/resilience"
	"github.com/spatiotext/latest/internal/telemetry"
)

// resilience.go re-exports the fault-isolation surface: the circuit-breaker
// tuning knobs, the deterministic fault injector that powers chaos tests,
// and the health snapshot types Stats carries.
//
// Every estimator call (Insert, Estimate, Observe, Reset) runs behind a
// guard that recovers panics, sanitizes non-finite or absurd estimates and
// enforces a per-call deadline. Faults feed a per-estimator circuit
// breaker: enough faults in a sliding window of calls quarantines the
// estimator — it is masked out of switch candidates and training labels,
// and if it was the active estimator, the engine promotes the warming
// runner-up (or the model's next recommendation), falling back to the
// exact window store while nobody is available. After a cooldown the
// breaker goes half-open and probes the estimator with live queries (the
// probe results are never served); enough consecutive clean probes
// re-admit it with a fresh reset-and-prefill.

type (
	// BreakerConfig tunes the per-estimator quarantine circuit breaker
	// (sliding fault window, trip threshold, cooldown, probe count,
	// per-call deadline, estimate sanity ceiling). The zero value takes
	// the package defaults; pass it to WithBreaker.
	BreakerConfig = resilience.Config
	// FaultInjector deterministically injects estimator faults for chaos
	// testing; build one with NewFaultInjector and pass it to
	// WithFaultInjector. SetEnabled(false) stops all injection at runtime.
	FaultInjector = resilience.Injector
	// FaultRule is one injection rule: which estimator, which operation,
	// what fault, with what probability.
	FaultRule = resilience.Rule
	// FaultOp scopes a FaultRule to an estimator operation.
	FaultOp = resilience.Op
	// InjectKind is the fault a FaultRule injects.
	InjectKind = resilience.InjectKind
	// ResilienceStats is the fault-isolation layer's health snapshot,
	// carried by Stats.Resilience: per-estimator health plus fallback
	// counters.
	ResilienceStats = telemetry.ResilienceStats
	// EstimatorHealth is one estimator's breaker state and fault counters.
	EstimatorHealth = telemetry.EstimatorHealth
)

// Operations a FaultRule can scope to.
const (
	OpAny      = resilience.OpAny
	OpInsert   = resilience.OpInsert
	OpEstimate = resilience.OpEstimate
	OpObserve  = resilience.OpObserve
)

// Faults a FaultRule can inject: a panic inside the estimator call, a NaN
// estimate, a garbage (absurdly out-of-range) estimate, or added latency
// past the guard deadline.
const (
	InjectPanic   = resilience.InjectPanic
	InjectNaN     = resilience.InjectNaN
	InjectGarbage = resilience.InjectGarbage
	InjectLatency = resilience.InjectLatency
)

// NewFaultInjector builds a deterministic fault injector: rules are matched
// first-match-wins, probabilistic rules draw from a private RNG seeded with
// seed. The injector starts enabled.
func NewFaultInjector(seed int64, rules ...FaultRule) *FaultInjector {
	return resilience.NewInjector(seed, rules...)
}
