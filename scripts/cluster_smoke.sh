#!/usr/bin/env bash
# cluster_smoke.sh — multi-node serving smoke for the cluster layer.
#
# Boots a 3-node latestd cluster (each daemon owns a stripe of the world
# via a shared partition map) behind a latest-router proxy, then:
#
#   1. drives a closed-loop mixed feed/query load through the router with
#      zero protocol errors tolerated;
#   2. checks conservation: every object the loadgen fed must be resident
#      on exactly one node — the sum of the three nodes' window sizes
#      equals the loadgen's feed_objects count (the shell-level version of
#      the whole-world-query == sum-of-per-node-queries invariant; the
#      byte-exact form runs in Go as TestClusterExactness);
#   3. requires every routing mode to have fired (forward, scatter,
#      broadcast) and zero node errors on the router's metrics plane;
#   4. lints the router's live /metrics scrape, latest_cluster_* included;
#   5. SIGTERMs router and nodes and requires clean drains.
#
# Usage: scripts/cluster_smoke.sh [workdir]
set -euo pipefail

WORK="${1:-$(mktemp -d)}"
LATESTD="${LATESTD:-./latestd}"
ROUTER="${ROUTER:-./latest-router}"
LOADGEN="${LOADGEN:-./latest-loadgen}"
cd "$(dirname "$0")/.." || exit 1
mkdir -p "$WORK"

# The map must name node addresses before the daemons start, so the smoke
# uses fixed ports; BASE can be moved if the range is taken.
BASE="${BASE:-17707}"
N1="127.0.0.1:$BASE"
N2="127.0.0.1:$((BASE + 10))"
N3="127.0.0.1:$((BASE + 20))"
WORLD="-125,24,-66,50" # Twitter dataset world, same as loadgen's default

wait_addr_file() { # file
    for _ in $(seq 1 150); do
        [ -s "$1" ] && [ "$(wc -l < "$1")" -ge 2 ] && return 0
        sleep 0.1
    done
    echo "FAIL: $1 never appeared" >&2
    return 1
}

# http_grep buffers the body before grepping (see disk_chaos_smoke.sh for
# why piping curl straight into grep -q flakes under pipefail).
http_grep() { # url pattern
    local body
    body=$(curl -sf "$1") || return 1
    grep -q "$2" <<<"$body"
}

statusz_field() { # admin-addr json-key -> numeric value
    local body
    body=$(curl -sf "http://$1/statusz") || return 1
    grep -o "\"$2\": *[0-9]*" <<<"$body" | head -1 | grep -o '[0-9]*$'
}

metric_value() { # metrics-file pattern -> value (0 when absent)
    local line
    line=$(grep -v '^#' "$1" | grep "$2" | head -1) || true
    [ -n "$line" ] && echo "$line" | awk '{print $NF}' || echo 0
}

echo "== author the partition map =="
"$ROUTER" -write-map -world "$WORLD" -grid 9x3 \
    -nodes "$N1,$N2,$N3" -epoch 1 -out "$WORK/cluster.map"

echo "== boot 3 clustered nodes =="
NODE_PIDS=()
i=0
for addr in "$N1" "$N2" "$N3"; do
    "$LATESTD" -addr "$addr" -admin 127.0.0.1:0 \
        -addr-file "$WORK/node$i.addr" -engine concurrent -window 10m \
        -world "$WORLD" -cluster-map "$WORK/cluster.map" -node-id "$i" \
        >"$WORK/node$i.out" 2>"$WORK/node$i.err" &
    NODE_PIDS+=($!)
    i=$((i + 1))
done
for i in 0 1 2; do
    wait_addr_file "$WORK/node$i.addr"
done

echo "== boot the router =="
"$ROUTER" -map "$WORK/cluster.map" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -addr-file "$WORK/router.addr" \
    >"$WORK/router.out" 2>"$WORK/router.err" &
RPID=$!
wait_addr_file "$WORK/router.addr"
RADDR=$(sed -n 1p "$WORK/router.addr")
RADMIN=$(sed -n 2p "$WORK/router.addr")

echo "== closed-loop load through the router, zero errors =="
"$LOADGEN" -addr "$RADDR" -conns 4 -requests 3000 \
    -feed-frac 0.9 -batch 32 -seed 42 -out "$WORK/cluster-report.json"
grep -q '"errors": 0' "$WORK/cluster-report.json"
FED=$(grep -o '"feed_objects": *[0-9]*' "$WORK/cluster-report.json" | grep -o '[0-9]*$')
echo "loadgen fed $FED objects through the router"

echo "== conservation: sum of per-node windows == objects fed =="
TOTAL=0
for i in 0 1 2; do
    ADMIN=$(sed -n 2p "$WORK/node$i.addr")
    W=$(statusz_field "$ADMIN" "window_size")
    echo "node $i window_size=$W"
    [ "$W" -gt 0 ] || { echo "FAIL: node $i holds no objects — routing never reached it" >&2; exit 1; }
    TOTAL=$((TOTAL + W))
done
if [ "$TOTAL" -ne "$FED" ]; then
    echo "FAIL: nodes hold $TOTAL objects, loadgen fed $FED (lost or duplicated across partitions)" >&2
    exit 1
fi
echo "conservation holds: $TOTAL == $FED"

echo "== router metrics: every routing mode fired, zero failures =="
curl -sf "http://$RADMIN/metrics" > "$WORK/router-metrics.txt"
grep -q 'latest_cluster_epoch 1' "$WORK/router-metrics.txt"
grep -q 'latest_cluster_nodes 3' "$WORK/router-metrics.txt"
for mode in forward scatter broadcast; do
    V=$(metric_value "$WORK/router-metrics.txt" "latest_cluster_routing_total{mode=\"$mode\"}")
    echo "routing mode $mode: $V"
    [ "$V" -gt 0 ] || { echo "FAIL: routing mode $mode never fired" >&2; exit 1; }
done
for counter in node_errors_total retries_total; do
    V=$(metric_value "$WORK/router-metrics.txt" "latest_cluster_$counter")
    [ "$V" -eq 0 ] || { echo "FAIL: latest_cluster_$counter = $V, want 0" >&2; exit 1; }
done
# Each node must have carried real subquery traffic.
for addr in "$N1" "$N2" "$N3"; do
    V=$(metric_value "$WORK/router-metrics.txt" "latest_cluster_node_requests_total{node=\"$addr\"}")
    echo "node $addr carried $V requests"
    [ "$V" -gt 0 ] || { echo "FAIL: node $addr carried no requests" >&2; exit 1; }
done

echo "== metrics-lint the live router scrape =="
go run ./cmd/latest-metrics-lint -url "http://$RADMIN/metrics"

echo "== graceful drain: router first, then the nodes =="
kill -TERM "$RPID"
wait "$RPID"
grep -q 'latest-router stopped' "$WORK/router.out"
for i in 0 1 2; do
    kill -TERM "${NODE_PIDS[$i]}"
done
for i in 0 1 2; do
    wait "${NODE_PIDS[$i]}"
    grep -q 'latestd stopped' "$WORK/node$i.out"
done

echo "PASS: cluster smoke"
