#!/usr/bin/env bash
# disk_chaos_smoke.sh — degraded-mode durability drill for latestd.
#
# Runs a durable latestd with deterministic disk-fault injection
# (-disk-fault): mid-run, WAL appends start failing as if the disk were
# full. The daemon must degrade — serving continues with zero client
# errors while appends are dropped and counted — then self-repair with a
# fresh snapshot generation and go back to healthy. After a SIGKILL the
# restart (faults off) must recover the exact pre-crash state. Then the
# newest snapshot generation is corrupted: recovery must fall back to the
# previous generation plus both WAL generations, still exact. Finally
# every generation is corrupted: startup must refuse with the typed
# reason rather than serve partial state.
#
# Usage: scripts/disk_chaos_smoke.sh [workdir]
set -euo pipefail

WORK="${1:-$(mktemp -d)}"
DATA="$WORK/data"
LATESTD="${LATESTD:-./latestd}"
LOADGEN="${LOADGEN:-./latest-loadgen}"
cd "$(dirname "$0")/.." || exit 1

wait_gone() { # pid
    for _ in $(seq 1 150); do
        kill -0 "$1" 2>/dev/null || return 0
        sleep 0.1
    done
    echo "FAIL: pid $1 still running" >&2
    return 1
}

wait_addr_file() { # file
    for _ in $(seq 1 150); do
        [ -s "$1" ] && [ "$(wc -l < "$1")" -ge 2 ] && return 0
        sleep 0.1
    done
    echo "FAIL: $1 never appeared" >&2
    return 1
}

# http_grep buffers the body before grepping. Piping curl straight into
# grep -q under pipefail is a flake: grep exits at the first match, curl
# takes EPIPE on the unwritten tail of a large body and exits 23, and the
# pipeline "fails" despite the match.
http_grep() { # url pattern
    local body
    body=$(curl -sf "$1") || return 1
    grep -q "$2" <<<"$body"
}

statusz_field() { # admin-addr json-key -> numeric value
    local body
    body=$(curl -sf "http://$1/statusz") || return 1
    grep -o "\"$2\": *[0-9]*" <<<"$body" | head -1 | grep -o '[0-9]*$'
}

statusz_has() { # admin-addr pattern
    http_grep "http://$1/statusz" "$2"
}

start_daemon() { # addr-file out err extra-args...
    local addrf="$1" out="$2" err="$3"
    shift 3
    "$LATESTD" -addr 127.0.0.1:0 -admin 127.0.0.1:0 -addr-file "$addrf" \
        -engine concurrent -window 10m \
        -data-dir "$DATA" -snapshot-interval 1s -wal-sync-every 1 \
        -snapshot-retain 2 "$@" \
        >"$out" 2>"$err" &
    echo $!
}

mkdir -p "$WORK"

echo "== phase 1: WAL appends fail mid-run; serving must not notice =="
# After 200 healthy appends, the next 50 fail — each failure degrades the
# engine, the repair loop re-arms it with a fresh snapshot generation,
# and the cycle repeats until the rule expires.
PID=$(start_daemon "$WORK/addr1" "$WORK/run1.out" "$WORK/run1.err" \
    -disk-fault "append:after=200,count=50")
wait_addr_file "$WORK/addr1"
ADDR=$(sed -n 1p "$WORK/addr1")
ADMIN=$(sed -n 2p "$WORK/addr1")
grep -q "disk-fault injection armed" "$WORK/run1.err" || {
    echo "FAIL: daemon did not log the armed fault spec"; cat "$WORK/run1.err"; exit 1; }

# Feed-only load: well past the fault window (600 feed batches = 600
# WAL appends). Zero errors is the headline assertion — degraded mode
# must be invisible to clients.
"$LOADGEN" -addr "$ADDR" -conns 4 -requests 600 -feed-frac 1.0 -batch 32 \
    -seed 42 -out "$WORK/load1.json"
grep -q '"errors": 0' "$WORK/load1.json" || {
    echo "FAIL: clients saw errors while the disk was failing"
    cat "$WORK/load1.json"; exit 1; }

# Feed frames are pipelined: loadgen can exit while the server is still
# draining its final batches, and every drained append may consume another
# fault and re-degrade the engine. Wait until all 600*32 objects have
# landed — only then is the degrade/repair cycle guaranteed to be over and
# the state machine's position stable enough to assert on.
TOTAL=$((600 * 32))
for _ in $(seq 1 150); do
    [ "$(statusz_field "$ADMIN" window_size)" = "$TOTAL" ] && break
    sleep 0.1
done
[ "$(statusz_field "$ADMIN" window_size)" = "$TOTAL" ] || {
    echo "FAIL: engine absorbed $(statusz_field "$ADMIN" window_size) of $TOTAL fed objects"
    exit 1; }

DEGRADATIONS=$(statusz_field "$ADMIN" degradations)
DROPPED=$(statusz_field "$ADMIN" dropped_appends)
[ -n "$DEGRADATIONS" ] && [ "$DEGRADATIONS" -ge 1 ] || {
    echo "FAIL: no degradations recorded (got '$DEGRADATIONS') — fault spec never fired"
    curl -sf "http://$ADMIN/statusz" || true; exit 1; }
[ -n "$DROPPED" ] && [ "$DROPPED" -ge 1 ] || {
    echo "FAIL: no dropped appends recorded (got '$DROPPED')"; exit 1; }
echo "degradations: $DEGRADATIONS dropped appends: $DROPPED"

# The repair loop must settle the machine back to healthy on its own.
for _ in $(seq 1 100); do
    statusz_has "$ADMIN" '"state": *"healthy"' && break
    sleep 0.1
done
statusz_has "$ADMIN" '"state": *"healthy"' || {
    echo "FAIL: engine still degraded after faults expired"
    curl -sf "http://$ADMIN/statusz" || true; exit 1; }
REPAIRS=$(statusz_field "$ADMIN" repairs)
[ -n "$REPAIRS" ] && [ "$REPAIRS" -ge 1 ] || {
    echo "FAIL: healthy again but zero repairs recorded (got '$REPAIRS')"; exit 1; }
http_grep "http://$ADMIN/metrics" '^latest_durable_state 0' || {
    echo "FAIL: /metrics does not report latest_durable_state 0"; exit 1; }
echo "repairs: $REPAIRS"

# Let a couple of healthy snapshot generations land (1s interval), so the
# two retained generations both postdate the repair: the later fallback
# phase must then be exact.
sleep 3
BEFORE=$(statusz_field "$ADMIN" window_size)
[ -n "$BEFORE" ] && [ "$BEFORE" -gt 0 ] || {
    echo "FAIL: no window size before crash (got '$BEFORE')"; exit 1; }
echo "window before SIGKILL: $BEFORE"

kill -9 "$PID"
wait_gone "$PID"

echo "== phase 2: restart (faults off), state must match exactly =="
PID=$(start_daemon "$WORK/addr2" "$WORK/run2.out" "$WORK/run2.err")
wait_addr_file "$WORK/addr2"
ADMIN=$(sed -n 2p "$WORK/addr2")
grep -q "state=healthy" "$WORK/run2.out" || {
    echo "FAIL: startup line does not report healthy durability"; cat "$WORK/run2.out"; exit 1; }
AFTER=$(statusz_field "$ADMIN" window_size)
echo "window after recovery: $AFTER"
if [ "$AFTER" != "$BEFORE" ]; then
    echo "FAIL: recovered window $AFTER != pre-crash $BEFORE (repair snapshots must carry dropped appends)"
    exit 1
fi
kill -TERM "$PID"
wait_gone "$PID"
grep -q 'latestd final snapshot gen=' "$WORK/run2.out" || {
    echo "FAIL: drain did not take a final snapshot"; cat "$WORK/run2.out"; exit 1; }

echo "== phase 3: corrupt newest generation, recovery must fall back exactly =="
NEWEST=$(ls "$DATA"/snapshot-*.snap | sort | tail -1)
[ -n "$NEWEST" ] || { echo "FAIL: no generation snapshots in $DATA"; ls -la "$DATA"; exit 1; }
SIZE=$(wc -c < "$NEWEST")
printf 'XXXX' | dd of="$NEWEST" bs=1 seek=$((SIZE / 2)) count=4 conv=notrunc status=none
echo "corrupted $NEWEST at offset $((SIZE / 2))"

PID=$(start_daemon "$WORK/addr3" "$WORK/run3.out" "$WORK/run3.err")
wait_addr_file "$WORK/addr3"
ADMIN=$(sed -n 2p "$WORK/addr3")
statusz_has "$ADMIN" '"recovered_fallback": *true' || {
    echo "FAIL: /statusz does not report a fallback recovery"
    curl -sf "http://$ADMIN/statusz" || true; exit 1; }
FALLBACK_WINDOW=$(statusz_field "$ADMIN" window_size)
echo "window after fallback: $FALLBACK_WINDOW"
if [ "$FALLBACK_WINDOW" != "$BEFORE" ]; then
    echo "FAIL: fallback window $FALLBACK_WINDOW != pre-crash $BEFORE (older snapshot + WAL chain must replay to the same state)"
    exit 1
fi
kill -TERM "$PID"
wait_gone "$PID"

echo "== phase 4: corrupt every generation, startup must refuse =="
for snap in "$DATA"/snapshot-*.snap; do
    printf 'XXXX' | dd of="$snap" bs=1 count=4 conv=notrunc status=none
done
if "$LATESTD" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -engine concurrent -window 10m -data-dir "$DATA" \
    >"$WORK/run4.out" 2>"$WORK/run4.err"; then
    echo "FAIL: daemon served with every snapshot generation corrupt"; exit 1
fi
grep -q "recover $DATA" "$WORK/run4.err" || {
    echo "FAIL: refusal does not name the data dir and typed code"; cat "$WORK/run4.err"; exit 1; }
echo "refusal: $(grep "recover $DATA" "$WORK/run4.err" | head -1)"

echo "PASS: disk chaos smoke"
