#!/usr/bin/env bash
# ingest_scaling_gate.sh — multi-core ingest scaling gate for CI.
#
# Runs the latest-bench shards × GOMAXPROCS × producers ingest matrix and
# enforces that a 4-shard configuration reaches at least MIN_SPEEDUP× the
# throughput of the 1-shard cell at the same coordinate. The gate is
# host-aware: latest-bench itself skips enforcement (exit 0, reason
# recorded in the result JSON) when the runner has fewer than 4 CPUs,
# where that floor is physically unmeetable — so the same invocation is
# safe on laptops, constrained containers and multi-core CI runners.
#
# Usage: scripts/ingest_scaling_gate.sh [out.json]
set -euo pipefail

OUT="${1:-BENCH_ingest_matrix.json}"
OBJECTS="${OBJECTS:-200000}"
MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"
cd "$(dirname "$0")/.." || exit 1

go run ./cmd/latest-bench -exp ingest-matrix \
    -objects "$OBJECTS" \
    -shards-list 1,4 \
    -producers-list 4 \
    -min-speedup "$MIN_SPEEDUP" \
    -out "$OUT"

# Whatever the gate decided, the result file must exist and carry the
# fields downstream tooling reads.
test -s "$OUT"
grep -q '"objects_per_sec"' "$OUT"
grep -q '"batch_p99_ms"' "$OUT"
grep -q '"gate"' "$OUT"
echo "ingest scaling gate: done (results in $OUT)"
