#!/usr/bin/env bash
# recovery_smoke.sh — process-level durability check for latestd.
#
# Drives a durable latestd under load, SIGKILLs it mid-run, restarts it
# from the same data directory and asserts the recovered engine state
# (window size via /statusz) matches what the killed process had — the
# WAL is fsynced every record here, so recovery must be exact, not
# merely close. Finally corrupts the snapshot and asserts the daemon
# refuses to start rather than serving partial state.
#
# Usage: scripts/recovery_smoke.sh [workdir]
set -euo pipefail

WORK="${1:-$(mktemp -d)}"
DATA="$WORK/data"
LATESTD="${LATESTD:-./latestd}"
LOADGEN="${LOADGEN:-./latest-loadgen}"
cd "$(dirname "$0")/.." || exit 1

# The daemons are started inside command substitutions, so they are not
# children of this shell and `wait` cannot reap them; poll instead.
wait_gone() { # pid
    for _ in $(seq 1 150); do
        kill -0 "$1" 2>/dev/null || return 0
        sleep 0.1
    done
    echo "FAIL: pid $1 still running" >&2
    return 1
}

wait_addr_file() { # file
    for _ in $(seq 1 150); do
        [ -s "$1" ] && [ "$(wc -l < "$1")" -ge 2 ] && return 0
        sleep 0.1
    done
    echo "FAIL: $1 never appeared" >&2
    return 1
}

statusz_window() { # admin-addr
    # Buffer the body first: under pipefail, grep/head closing the pipe
    # early turns curl's EPIPE (exit 23) into a phantom failure.
    local body
    body=$(curl -sf "http://$1/statusz") || return 1
    grep -o '"window_size": *[0-9]*' <<<"$body" | head -1 | grep -o '[0-9]*$'
}

start_daemon() { # addr-file out err
    "$LATESTD" -addr 127.0.0.1:0 -admin 127.0.0.1:0 -addr-file "$1" \
        -engine concurrent -window 10m \
        -data-dir "$DATA" -snapshot-interval 2s -wal-sync-every 1 \
        >"$2" 2>"$3" &
    echo $!
}

mkdir -p "$WORK"

echo "== phase 1: feed under load, then SIGKILL =="
PID=$(start_daemon "$WORK/addr1" "$WORK/run1.out" "$WORK/run1.err")
wait_addr_file "$WORK/addr1"
ADDR=$(sed -n 1p "$WORK/addr1")
ADMIN=$(sed -n 2p "$WORK/addr1")
grep -q "durability=$DATA" "$WORK/run1.out" || {
    echo "FAIL: startup line does not report durability"; cat "$WORK/run1.out"; exit 1; }

"$LOADGEN" -addr "$ADDR" -conns 4 -requests 200 -feed-frac 1.0 -batch 64 \
    -seed 42 -out "$WORK/load1.json"
grep -q '"errors": 0' "$WORK/load1.json"

# Let at least one periodic snapshot land, then record the engine state.
sleep 3
BEFORE=$(statusz_window "$ADMIN")
[ -n "$BEFORE" ] && [ "$BEFORE" -gt 0 ] || {
    echo "FAIL: no window size before crash (got '$BEFORE')"; exit 1; }
echo "window before SIGKILL: $BEFORE"

kill -9 "$PID"
wait_gone "$PID"

echo "== phase 2: restart from disk, state must match exactly =="
PID=$(start_daemon "$WORK/addr2" "$WORK/run2.out" "$WORK/run2.err")
wait_addr_file "$WORK/addr2"
ADDR=$(sed -n 1p "$WORK/addr2")
ADMIN=$(sed -n 2p "$WORK/addr2")
grep -Eq "durability=$DATA gen=[0-9]+ wal=[0-9]+" "$WORK/run2.out" || {
    echo "FAIL: restart did not report recovered generation"; cat "$WORK/run2.out"; exit 1; }

AFTER=$(statusz_window "$ADMIN")
echo "window after recovery: $AFTER"
if [ "$AFTER" != "$BEFORE" ]; then
    echo "FAIL: recovered window size $AFTER != pre-crash $BEFORE (WAL is fsynced per record; recovery must be exact)"
    exit 1
fi

# The recovered daemon must keep serving: mixed feed/estimate traffic.
"$LOADGEN" -addr "$ADDR" -conns 2 -requests 100 -feed-frac 0.5 -batch 16 \
    -seed 43 -out "$WORK/load2.json"
grep -q '"errors": 0' "$WORK/load2.json"

# Graceful drain takes a final snapshot.
kill -TERM "$PID"
wait_gone "$PID"
grep -q 'latestd final snapshot gen=' "$WORK/run2.out" || {
    echo "FAIL: drain did not take a final snapshot"; cat "$WORK/run2.out"; exit 1; }

echo "== phase 3: corrupt every snapshot generation, startup must refuse with the typed reason =="
# One corrupt generation falls back to the previous one (that path is
# exercised by disk_chaos_smoke.sh); only a data dir with no valid
# generation at all is a refusal.
ls "$DATA"/snapshot*.snap >/dev/null 2>&1 || {
    echo "FAIL: no snapshot files in $DATA"; ls -la "$DATA"; exit 1; }
for snap in "$DATA"/snapshot*.snap; do
    printf 'XXXX' | dd of="$snap" bs=1 count=4 conv=notrunc status=none
done
if "$LATESTD" -addr 127.0.0.1:0 -admin 127.0.0.1:0 \
    -engine concurrent -window 10m -data-dir "$DATA" \
    >"$WORK/run3.out" 2>"$WORK/run3.err"; then
    echo "FAIL: daemon served from a corrupt data directory"; exit 1
fi
grep -q "recover $DATA" "$WORK/run3.err" || {
    echo "FAIL: refusal does not name the data dir and typed code"; cat "$WORK/run3.err"; exit 1; }
echo "refusal: $(grep "recover $DATA" "$WORK/run3.err" | head -1)"

echo "PASS: recovery smoke"
