package latest

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/spatiotext/latest/internal/core"
	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
)

// ShardedSystem partitions the world rectangle into a grid of spatial
// shards, each owning its own exact window store and estimator fleet
// behind its own lock. Ingest is pipelined: a producer routes a batch once
// into per-shard sub-batches and hands each to the owning shard's bounded
// feed queue, where the shard's dedicated worker applies it — producers
// never hold shard locks, and feeds within a shard keep their hand-off
// order. Queries fan out to the shards whose rectangles intersect the
// query range (keyword-only queries to all shards), first waiting for each
// target shard's queued feeds to land so callers always read their own
// writes, and merge the partial counts. The RC-DVQ count over a rectangle
// decomposes exactly over a spatial partition — every object lives in
// exactly one shard — so merged exact counts equal a monolithic System's.
//
// Each shard runs its own LATEST module: its own learning model, its own
// active estimator, its own switching decisions. Shards covering different
// data densities may legitimately settle on different estimators.
//
// Estimator pre-filling is off the query path by default: when a shard's
// adaptor wants a candidate warmed from the window store, the replay runs
// on that shard's background goroutine (the query that triggered the
// switch returns immediately). WithSynchronousPrefill restores the inline
// replay, which a 1-shard system needs to reproduce System bit-for-bit.
//
// As with ConcurrentSystem, Estimate and the feedback call must pair up
// per query, which under concurrency is only maintainable atomically — so
// the combined EstimateAndExecute operations are exposed instead of the
// split halves. Timestamps should be non-decreasing per producer; arrivals
// that would run a shard's clock backwards are clamped to the shard's
// high-water mark (counted in the shard's Reordered gauge).
type ShardedSystem struct {
	world  Rect
	rows   int
	cols   int
	xs     []float64 // col edges, len cols+1
	ys     []float64 // row edges, len rows+1
	shards []*shard

	syncPrefill bool
	syncIngest  bool
	policy      ValidationPolicy

	telem *telemetry.Server

	// bufPool recycles the pipeline's routed sub-batch buffers (ownership
	// transfers to the shard worker, which returns them after applying);
	// bucketPool recycles the per-FeedBatch bucket arrays indexed by shard.
	bufPool    sync.Pool
	bucketPool sync.Pool

	closeOnce sync.Once
	workers   sync.WaitGroup

	// gen counts snapshots taken of this engine; fingerprint encodes the
	// construction options. Both serve the Snapshot/Restore contract — see
	// snapshot.go.
	gen         uint64
	fingerprint []byte
}

// shard is one spatial partition: a full System (module + window store)
// behind a mutex, plus operational gauges and the deferred-prefill worker
// state.
type shard struct {
	mu   sync.Mutex
	rect Rect
	sys  *System

	scratch Object

	gauges metrics.ShardGauges
	log    *telemetry.Logger

	// feedCh is the shard's bounded ingest pipeline: producers enqueue
	// routed chunks (never holding mu) and the shard's dedicated feed
	// worker — the channel's only receiver — applies them in FIFO order,
	// so feeds within a shard stay strictly ordered and all hot-path gauge
	// recording has a single writer. A full queue blocks the producer
	// (backpressure, counted in the IngestBackpressure gauge). Nil under
	// WithSynchronousIngest.
	feedCh chan ingestChunk

	// feedQueued counts enqueued-but-unapplied chunks (guarded by feedMu;
	// incremented by the producer before the channel send, decremented by
	// the worker after the apply). drainFeeds waits on feedIdle until it
	// reaches zero — the barrier the query, stats and snapshot paths use
	// to keep read-your-writes semantics. feedClosed marks the pipeline
	// shut: later feeds apply inline under the shard lock instead.
	feedMu     sync.Mutex
	feedIdle   *sync.Cond
	feedQueued int
	feedClosed bool

	// refillCh carries deferred pre-fill work to the shard's background
	// goroutine. Senders hold mu; the worker acquires mu per task, so the
	// channel must never be sent to while blocking — enqueue falls back to
	// an inline replay when the buffer is full.
	refillCh chan refillTask

	// prefillPending counts enqueued-but-unapplied deferred pre-fills
	// (guarded by mu; incremented by the enqueuing query, decremented by
	// the worker after the replay lands). Snapshot waits on prefillIdle
	// until it reaches zero: capturing an estimator while its replay is
	// queued would save a summary the original process was still about to
	// fill, and the restored run would diverge.
	prefillPending int
	prefillIdle    *sync.Cond
}

// awaitPrefillsLocked blocks until every deferred pre-fill handed to the
// shard's worker has been applied. Caller holds sh.mu; Wait releases it
// while blocked, so the worker can take the lock and drain.
func (sh *shard) awaitPrefillsLocked() {
	for sh.prefillPending > 0 {
		sh.prefillIdle.Wait()
	}
}

// ingestChunk is one unit of pipeline work: either a single object
// (inline, allocation-free) or a routed sub-batch. owned marks buffers
// drawn from the system's pool, returned there after the apply; a
// caller-owned slice (synchronous ingest) is never pooled.
type ingestChunk struct {
	obj    Object
	objs   []Object
	single bool
	owned  bool
}

// enqueue hands one routed chunk to the shard's feed worker, blocking
// while the bounded queue is full. It returns false when the pipeline is
// closed (or was never started); the caller applies the chunk inline.
func (sh *shard) enqueue(c ingestChunk) bool {
	if sh.feedCh == nil {
		return false
	}
	sh.feedMu.Lock()
	if sh.feedClosed {
		sh.feedMu.Unlock()
		return false
	}
	sh.feedQueued++
	sh.feedMu.Unlock()
	if len(sh.feedCh) == cap(sh.feedCh) {
		sh.gauges.RecordIngestBackpressure()
	}
	sh.feedCh <- c
	return true
}

// drainFeeds blocks until every chunk handed to the shard's feed worker
// before the call has been applied. Chunks enqueued concurrently with the
// wait may or may not be covered; callers needing a cut that is stable
// across all shards must quiesce producers first (DurableEngine's write
// lock does).
func (sh *shard) drainFeeds() {
	if sh.feedCh == nil {
		return
	}
	sh.feedMu.Lock()
	for sh.feedQueued > 0 {
		sh.feedIdle.Wait()
	}
	sh.feedMu.Unlock()
}

// feedWorker is a shard's dedicated ingest goroutine: the only receiver of
// feedCh and — with producers off the apply path — the only writer of the
// shard's feed/batch/occupancy gauges, so hot-path recording never
// contends across cores.
func (s *ShardedSystem) feedWorker(sh *shard, ch <-chan ingestChunk) {
	defer s.workers.Done()
	for c := range ch {
		s.applyChunk(sh, c)
		sh.feedMu.Lock()
		sh.feedQueued--
		sh.gauges.SetIngestBacklog(sh.feedQueued)
		if sh.feedQueued == 0 {
			sh.feedIdle.Broadcast()
		}
		sh.feedMu.Unlock()
	}
}

// applyChunk ingests one chunk under the shard lock, records the shard's
// ingest gauges, and returns pooled buffers. Runs on the shard's feed
// worker, or inline on the producer in synchronous mode and after Close.
func (s *ShardedSystem) applyChunk(sh *shard, c ingestChunk) {
	if c.single {
		sampled := sh.gauges.RecordFeed()
		var start time.Time
		if sampled {
			start = time.Now()
		}
		sh.mu.Lock()
		sh.feedLocked(&c.obj)
		occ := sh.sys.window.Size()
		sh.mu.Unlock()
		if sampled {
			sh.gauges.RecordFeedLatency(time.Since(start))
		}
		sh.gauges.SetOccupancy(occ)
		return
	}
	start := time.Now()
	sh.mu.Lock()
	for i := range c.objs {
		sh.feedLocked(&c.objs[i])
	}
	occ := sh.sys.window.Size()
	sh.mu.Unlock()
	sh.gauges.RecordBatch(len(c.objs), time.Since(start))
	sh.gauges.SetOccupancy(occ)
	if c.owned {
		s.putBuf(c.objs)
	}
}

// getBuf returns an empty pooled sub-batch buffer.
func (s *ShardedSystem) getBuf() []Object {
	if v := s.bufPool.Get(); v != nil {
		return (*(v.(*[]Object)))[:0]
	}
	return make([]Object, 0, 512)
}

// putBuf recycles a sub-batch buffer, clearing it first so pooled memory
// pins no object keyword slices.
func (s *ShardedSystem) putBuf(b []Object) {
	b = b[:cap(b)]
	clear(b)
	b = b[:0]
	s.bufPool.Put(&b)
}

// getBuckets returns a per-shard bucket array for one FeedBatch routing
// pass; entries are nil until a shard receives its first object.
func (s *ShardedSystem) getBuckets() [][]Object {
	if v := s.bucketPool.Get(); v != nil {
		return *(v.(*[][]Object))
	}
	return make([][]Object, len(s.shards))
}

func (s *ShardedSystem) putBuckets(b [][]Object) {
	s.bucketPool.Put(&b)
}

// refillTask is one deferred pre-fill: replay the window objects that
// existed at enqueue time (seq < boundary) into est. Objects inserted
// after the boundary reach est live through the module, so the split is
// exact — no object is double-inserted or missed.
type refillTask struct {
	est      estimator.Estimator
	boundary uint64
}

// NewSharded builds a sharded LATEST system over the given world,
// partitioned into WithShards(n) spatial shards (default
// runtime.GOMAXPROCS(0)). Call Close when done to stop the background
// prefill workers.
func NewSharded(world Rect, window time.Duration, opts ...Option) (*ShardedSystem, error) {
	return newSharded(buildConfig(world, window, opts))
}

// MustNewSharded is NewSharded but panics on error — for tests, examples
// and programs whose configuration is static.
func MustNewSharded(world Rect, window time.Duration, opts ...Option) *ShardedSystem {
	s, err := NewSharded(world, window, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// newSharded builds a ShardedSystem from the resolved option set.
func newSharded(cfg config) (*ShardedSystem, error) {
	n := cfg.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return nil, fmt.Errorf("latest: Shards must be positive, got %d", n)
	}
	if cfg.World.Empty() || !cfg.World.Valid() {
		return nil, fmt.Errorf("latest: World must be a valid non-empty rectangle, got %v", cfg.World)
	}
	rows, cols := shardGridDims(n)
	s := &ShardedSystem{
		world:       cfg.World,
		rows:        rows,
		cols:        cols,
		xs:          partitionEdges(cfg.World.MinX, cfg.World.MaxX, cols),
		ys:          partitionEdges(cfg.World.MinY, cfg.World.MaxY, rows),
		shards:      make([]*shard, n),
		syncPrefill: cfg.SyncPrefill,
		syncIngest:  cfg.SyncIngest,
		policy:      cfg.Validation,
	}
	queueDepth := cfg.PrefillQueueDepth
	if queueDepth == 0 {
		queueDepth = 4
	}
	ingestDepth := cfg.IngestQueueDepth
	if ingestDepth == 0 {
		ingestDepth = 8
	}
	baseLog := telemetry.NewLogger(cfg.LogOutput, cfg.LogLevel)
	for i := range s.shards {
		r, c := i/cols, i%cols
		component := fmt.Sprintf("shard-%d", i)
		sh := &shard{
			rect: Rect{MinX: s.xs[c], MinY: s.ys[r], MaxX: s.xs[c+1], MaxY: s.ys[r+1]},
			log:  baseLog.Named(component),
		}
		sh.prefillIdle = sync.NewCond(&sh.mu)
		sh.feedIdle = sync.NewCond(&sh.feedMu)
		if !s.syncIngest {
			sh.feedCh = make(chan ingestChunk, ingestDepth)
		}
		shardCfg := cfg
		shardCfg.World = sh.rect
		// Shard 0 keeps the configured seed so a 1-shard system matches
		// System exactly; the rest decorrelate their estimator randomness.
		shardCfg.Seed = cfg.Seed + int64(i)*1_000_003
		prefillMode := "async"
		var refill refillFunc
		if s.syncPrefill {
			prefillMode = "inline"
			refill = func(w *stream.Window, e estimator.Estimator) {
				syncRefill(w, e)
				sh.gauges.RecordPrefill(false)
			}
		} else {
			sh.refillCh = make(chan refillTask, queueDepth)
			refill = func(w *stream.Window, e estimator.Estimator) {
				select {
				case sh.refillCh <- refillTask{est: e, boundary: w.NextSeq()}:
					// Enqueuer holds sh.mu (refills happen inside module
					// calls under the shard lock), so the count is
					// consistent with the send.
					sh.prefillPending++
				default:
					// Worker backlog (switch storm): pay the replay inline
					// rather than block while holding the shard lock.
					sh.gauges.RecordPrefillQueueFull()
					sh.log.Warn("prefill queue full, replaying inline",
						"estimator", e.Name(), "window", w.Size())
					syncRefill(w, e)
					sh.gauges.RecordPrefill(false)
				}
			}
		}
		sys, err := newSystem(shardCfg, refill, prefillMode, component, kindSharded)
		if err != nil {
			return nil, err
		}
		// Point the shard's System at the shard's gauge set, so validation
		// events detected inside the shared ingest/query paths land in the
		// gauges the sharded Stats reads.
		sys.gauges = &sh.gauges
		sh.sys = sys
		s.shards[i] = sh
		if sh.refillCh != nil {
			s.workers.Add(1)
			// Hand the worker the channel value: Close nils sh.refillCh
			// under the lock, and the worker must keep draining the real
			// channel until it is closed.
			go s.refillWorker(sh, sh.refillCh)
		}
		if sh.feedCh != nil {
			s.workers.Add(1)
			go s.feedWorker(sh, sh.feedCh)
		}
	}
	// The sharded fingerprint derives from the top-level options (shard
	// systems see derived worlds and seeds); the fleet is identical across
	// shards, so shard 0's resolved names stand for all.
	s.fingerprint = configFingerprint(&cfg, s.shards[0].sys.module.Estimators())
	if cfg.TelemetryAddr != "" {
		srv, err := telemetry.Serve(cfg.TelemetryAddr, s.telemetrySnapshot, baseLog)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.telem = srv
	}
	return s, nil
}

// refillWorker drains a shard's deferred pre-fill queue, replaying the
// snapshotted window prefix into the candidate under the shard lock.
func (s *ShardedSystem) refillWorker(sh *shard, ch <-chan refillTask) {
	defer s.workers.Done()
	for task := range ch {
		start := time.Now()
		sh.mu.Lock()
		sh.sys.window.EachBefore(task.boundary, func(o *stream.Object) bool {
			task.est.Insert(o)
			return true
		})
		sh.prefillPending--
		sh.prefillIdle.Broadcast()
		sh.mu.Unlock()
		sh.gauges.RecordPrefill(true)
		sh.log.Debug("async prefill replayed",
			"estimator", task.est.Name(), "took", time.Since(start))
	}
}

// closeFeedPipelines marks every shard's ingest pipeline closed (later
// feeds apply inline under the shard lock), waits for queued chunks to
// land, and closes the channels so the feed workers exit. Safe against
// producers mid-hand-off: a producer that passed the closed check has
// already incremented feedQueued, so the wait covers its chunk, and one
// that has not yet passed it sees feedClosed and falls back inline.
func (s *ShardedSystem) closeFeedPipelines() {
	for _, sh := range s.shards {
		if sh.feedCh == nil {
			continue
		}
		sh.feedMu.Lock()
		sh.feedClosed = true
		for sh.feedQueued > 0 {
			sh.feedIdle.Wait()
		}
		sh.feedMu.Unlock()
		close(sh.feedCh)
	}
}

// Close stops the telemetry server (if one was started), drains and stops
// the per-shard feed pipelines, and stops the background prefill workers,
// waiting for them all to drain. Queued feeds and pending pre-fills
// complete; using the system after Close feeds inline and may leave switch
// candidates cold but is otherwise safe. Close is idempotent.
func (s *ShardedSystem) Close() {
	s.closeOnce.Do(func() {
		if s.telem != nil {
			s.telem.Close()
		}
		s.closeFeedPipelines()
		for _, sh := range s.shards {
			if sh.refillCh != nil {
				sh.mu.Lock()
				ch := sh.refillCh
				sh.refillCh = nil // future refills fall back to inline replay
				sh.mu.Unlock()
				close(ch)
			}
		}
		s.workers.Wait()
	})
}

// Shutdown is the graceful form of Close: the telemetry exposition server
// (if one was started) finishes in-flight scrapes before stopping, the
// per-shard feed queues are drained before the pipelines stop, and the
// wait for queued feeds and background workers is bounded by ctx. Shares
// Close's once — whichever runs first wins, the other is a no-op. On ctx
// expiry the drain keeps completing in the background; the system is still
// safe to use (feeds apply inline, refills fall back to inline replay).
func (s *ShardedSystem) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	s.closeOnce.Do(func() {
		if s.telem != nil {
			err = s.telem.Shutdown(ctx)
		}
		for _, sh := range s.shards {
			if sh.refillCh != nil {
				sh.mu.Lock()
				ch := sh.refillCh
				sh.refillCh = nil
				sh.mu.Unlock()
				close(ch)
			}
		}
		done := make(chan struct{})
		go func() {
			// The feed drain can block behind a deep queue, so it lives
			// inside the bounded wait with the worker join.
			s.closeFeedPipelines()
			s.workers.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
	})
	return err
}

// shardGridDims factors n into the most-square rows×cols grid: rows is
// the largest divisor of n that is ≤ √n (rows·cols == n exactly; primes
// degrade to 1×n stripes).
func shardGridDims(n int) (rows, cols int) {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best, n / best
}

// partitionEdges splits [lo, hi] into n spans, pinning the outer edges to
// the exact world coordinates so the shards tile the world with no gaps.
func partitionEdges(lo, hi float64, n int) []float64 {
	edges := make([]float64, n+1)
	for i := 1; i < n; i++ {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	edges[0], edges[n] = lo, hi
	return edges
}

// shardOf routes a point to its shard index. The arithmetic guess is
// corrected against the actual edge array so routing always agrees with
// the shard rectangles — an object is counted by a range query iff the
// query rectangle intersects its shard's rectangle, which holds only if
// the object actually lies inside that rectangle. Points outside the
// world clamp to the nearest shard.
func (s *ShardedSystem) shardOf(p Point) int {
	col := edgeIndex(s.xs, p.X)
	row := edgeIndex(s.ys, p.Y)
	return row*s.cols + col
}

// edgeIndex returns i such that edges[i] <= v < edges[i+1], clamped to the
// valid span range.
func edgeIndex(edges []float64, v float64) int {
	n := len(edges) - 1
	lo, hi := edges[0], edges[n]
	i := 0
	if hi > lo {
		i = int(float64(n) * (v - lo) / (hi - lo))
	}
	if i < 0 {
		i = 0
	}
	if i > n-1 {
		i = n - 1
	}
	// Float arithmetic can land the guess one span off the edge array;
	// nudge until consistent.
	for i > 0 && v < edges[i] {
		i--
	}
	for i < n-1 && v >= edges[i+1] {
		i++
	}
	return i
}

// feedLocked ingests one object into sh, clamping regressed timestamps
// under the default ValidationClamp policy (counted in the Reordered
// gauge; under stricter policies the System-level validation rejects the
// arrival instead). The high-water mark is the shard System's lastTS,
// which advances only when validation accepts an object, so a rejected
// arrival (e.g. NaN coordinates) carrying a garbage timestamp cannot
// poison the shard's stream clock. Caller holds sh.mu.
func (sh *shard) feedLocked(o *Object) {
	if o.Timestamp < sh.sys.lastTS && sh.sys.policy == ValidationClamp {
		sh.scratch = *o
		sh.scratch.Timestamp = sh.sys.lastTS
		o = &sh.scratch
		sh.gauges.RecordReordered()
	}
	sh.sys.feedPtr(o)
}

// Feed ingests one stream object by handing it to the owning shard's feed
// pipeline; the shard's worker applies it (and records the shard's ingest
// gauges, timing one in metrics.FeedSampleInterval) without the producer
// ever holding the shard lock. Under WithSynchronousIngest — or after
// Close — the apply runs inline on the caller instead.
func (s *ShardedSystem) Feed(o Object) {
	sh := s.shards[s.shardOf(o.Loc)]
	c := ingestChunk{obj: o, single: true}
	if s.syncIngest || !sh.enqueue(c) {
		s.applyChunk(sh, c)
	}
}

// FeedBatch ingests a batch of stream objects with a single routing pass:
// each object is appended to its shard's pooled sub-batch bucket (one
// shardOf call per object, no per-shard rescans), and each non-empty
// bucket is handed to its shard's feed pipeline in one chunk. Object order
// is preserved within a shard; cross-shard ordering is irrelevant (shards
// hold disjoint objects). The caller's slice is copied during routing and
// may be reused as soon as FeedBatch returns.
func (s *ShardedSystem) FeedBatch(objs []Object) {
	if len(objs) == 0 {
		return
	}
	if len(s.shards) == 1 {
		s.feedShard(s.shards[0], objs)
		return
	}
	buckets := s.getBuckets()
	for i := range objs {
		si := s.shardOf(objs[i].Loc)
		if buckets[si] == nil {
			buckets[si] = s.getBuf()
		}
		buckets[si] = append(buckets[si], objs[i])
	}
	for si, sub := range buckets {
		if sub == nil {
			continue
		}
		buckets[si] = nil
		sh := s.shards[si]
		c := ingestChunk{objs: sub, owned: true}
		if s.syncIngest || !sh.enqueue(c) {
			s.applyChunk(sh, c)
		}
	}
	s.putBuckets(buckets)
}

// feedShard ingests a caller-owned batch into one shard. The pipeline owns
// every buffer it applies, so the batch is copied into a pooled buffer
// before the hand-off; synchronous mode applies the caller's slice in
// place with no copy.
func (s *ShardedSystem) feedShard(sh *shard, objs []Object) {
	if s.syncIngest {
		s.applyChunk(sh, ingestChunk{objs: objs})
		return
	}
	c := ingestChunk{objs: append(s.getBuf(), objs...), owned: true}
	if !sh.enqueue(c) {
		s.applyChunk(sh, c)
	}
}

// targets returns the shards a query must consult: every shard whose
// rectangle intersects the range, or all shards for keyword-only queries.
func (s *ShardedSystem) targets(q *Query) []*shard {
	if !q.HasRange {
		return s.shards
	}
	out := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		if sh.rect.Intersects(q.Range) {
			out = append(out, sh)
		}
	}
	return out
}

// EstimateAndExecute answers the query approximately, then exactly, and
// feeds each shard its own partial truth — one atomic estimate/observe
// cycle per intersecting shard, fanned out in parallel. Estimates and
// exact counts are merged by summation, which is exact for the count
// because shards hold disjoint objects. A range query that intersects no
// shard (range outside the world) returns (0, 0) without consulting any
// module.
func (s *ShardedSystem) EstimateAndExecute(q *Query) (estimate float64, actual int) {
	// Validate (and under ValidationClamp, repair) the query before shard
	// routing: a NaN or inverted rectangle would otherwise silently match
	// no shard. Engine-level rejects are counted in shard 0's gauges.
	if !checkQuery(q, s.policy, s.world, &s.shards[0].gauges, s.shards[0].log) {
		return 0, 0
	}
	targets := s.targets(q)
	switch len(targets) {
	case 0:
		return 0, 0
	case 1:
		sh := targets[0]
		sh.drainFeeds()
		start := time.Now()
		sh.mu.Lock()
		estimate, actual = sh.sys.estimateAndExecute(q)
		sh.mu.Unlock()
		sh.gauges.RecordQuery(time.Since(start))
		return estimate, actual
	}
	return s.fanOut(q, targets)
}

// fanOut runs the scatter-gather path over the already-routed target
// shards: one atomic estimate/observe cycle per shard in parallel, partial
// answers merged by summation (exact for the count because shards hold
// disjoint objects).
func (s *ShardedSystem) fanOut(q *Query, targets []*shard) (estimate float64, actual int) {
	type partial struct {
		est float64
		act int
	}
	parts := make([]partial, len(targets))
	var wg sync.WaitGroup
	for i, sh := range targets {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sh.drainFeeds()
			start := time.Now()
			sh.mu.Lock()
			e, a := sh.sys.estimateAndExecute(q)
			sh.mu.Unlock()
			sh.gauges.RecordQuery(time.Since(start))
			parts[i] = partial{est: e, act: a}
		}(i, sh)
	}
	wg.Wait()
	// Sum in shard order so the merged estimate is deterministic for a
	// deterministic per-shard run.
	for _, p := range parts {
		estimate += p.est
		actual += p.act
	}
	return estimate, actual
}

// EstimateAndExecuteBatch runs EstimateAndExecute over a batch of queries
// in order, returning the parallel estimate and exact-count slices.
func (s *ShardedSystem) EstimateAndExecuteBatch(qs []Query) (estimates []float64, actuals []int) {
	estimates = make([]float64, len(qs))
	actuals = make([]int, len(qs))
	for i := range qs {
		estimates[i], actuals[i] = s.EstimateAndExecute(&qs[i])
	}
	return estimates, actuals
}

// NumShards returns the shard count.
func (s *ShardedSystem) NumShards() int { return len(s.shards) }

// TelemetryAddr returns the bound address of the telemetry server, or ""
// when WithTelemetry was not used. With a ":0" listen address this is how
// callers learn the kernel-assigned port.
func (s *ShardedSystem) TelemetryAddr() string {
	if s.telem == nil {
		return ""
	}
	return s.telem.Addr()
}

// ShardRects returns the shard rectangles in shard order.
func (s *ShardedSystem) ShardRects() []Rect {
	out := make([]Rect, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.rect
	}
	return out
}

// Drain blocks until every feed handed to the per-shard ingest pipelines
// before the call has been applied to its shard's window store and
// estimators. The query, stats and snapshot paths drain implicitly;
// benchmarks and tests call it to settle the system before measuring.
func (s *ShardedSystem) Drain() {
	for _, sh := range s.shards {
		sh.drainFeeds()
	}
}

// WindowSize returns the number of live objects across all shards.
func (s *ShardedSystem) WindowSize() int {
	total := 0
	for _, sh := range s.shards {
		sh.drainFeeds()
		sh.mu.Lock()
		total += sh.sys.WindowSize()
		sh.mu.Unlock()
	}
	return total
}

// Phase returns the earliest lifecycle phase any shard is in: the system
// as a whole has not finished pre-training until every shard has.
func (s *ShardedSystem) Phase() Phase {
	phase := PhaseIncremental
	for _, sh := range s.shards {
		sh.drainFeeds()
		sh.mu.Lock()
		p := sh.sys.Phase()
		sh.mu.Unlock()
		if p < phase {
			phase = p
		}
	}
	return phase
}

// ActiveEstimators returns each shard's active estimator name, in shard
// order. Shards adapt independently, so a mixed fleet is normal.
func (s *ShardedSystem) ActiveEstimators() []string {
	out := make([]string, len(s.shards))
	for i, sh := range s.shards {
		sh.drainFeeds()
		sh.mu.Lock()
		out[i] = sh.sys.ActiveEstimator()
		sh.mu.Unlock()
	}
	return out
}

// Switches returns every shard's switch history concatenated in shard
// order, each event annotated with nothing extra — use Stats for per-shard
// grouping.
func (s *ShardedSystem) Switches() []SwitchEvent {
	var out []SwitchEvent
	for _, sh := range s.shards {
		sh.drainFeeds()
		sh.mu.Lock()
		out = append(out, sh.sys.Switches()...)
		sh.mu.Unlock()
	}
	return out
}

// ShardStats is one shard's slice of a ShardedStats snapshot.
type ShardStats struct {
	// Index is the shard's position in row-major grid order.
	Index int
	// Rect is the shard's spatial partition.
	Rect Rect
	// Core is the shard module's internals snapshot.
	Core Stats
	// WindowSize is the shard's live exact-store size.
	WindowSize int
	// Gauges are the shard's operational counters (feeds, queries,
	// reordered arrivals, latencies, occupancy).
	Gauges metrics.GaugeSnapshot
}

// ShardedStats is a snapshot of the whole sharded system: the merged
// module view plus per-shard detail.
type ShardedStats struct {
	// Merged folds every shard's module snapshot into one Stats (counters
	// summed, phase = earliest, accuracy weighted by monitored queries).
	Merged Stats
	// Shards holds per-shard snapshots in shard order.
	Shards []ShardStats
}

// Stats snapshots every shard and returns the merged module view —
// counters summed, phase = earliest, accuracy weighted by monitored
// queries — satisfying the unified Engine interface. Per-shard detail
// moved to PerShardStats.
func (s *ShardedSystem) Stats() Stats { return s.PerShardStats().Merged }

// PerShardStats snapshots every shard and merges the module views.
func (s *ShardedSystem) PerShardStats() ShardedStats {
	out := ShardedStats{Shards: make([]ShardStats, len(s.shards))}
	parts := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		sh.drainFeeds()
		sh.mu.Lock()
		parts[i] = sh.sys.Stats()
		ws := sh.sys.WindowSize()
		sh.mu.Unlock()
		// Core snapshots don't know their shard index; stamp it so merged
		// decision traces say where each switch happened.
		for j := range parts[i].Decisions {
			parts[i].Decisions[j].Shard = i
		}
		out.Shards[i] = ShardStats{
			Index:      i,
			Rect:       sh.rect,
			Core:       parts[i],
			WindowSize: ws,
			Gauges:     sh.gauges.Snapshot(),
		}
	}
	out.Merged = core.MergeStats(parts)
	return out
}
