package latest

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/spatiotext/latest/internal/core"
	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/stream"
	"github.com/spatiotext/latest/internal/telemetry"
)

// ShardedSystem partitions the world rectangle into a grid of spatial
// shards, each owning its own exact window store and estimator fleet
// behind its own lock. Ingest locks only the shard an object's location
// routes to, so producers on different shards proceed in parallel; queries
// fan out to the shards whose rectangles intersect the query range
// (keyword-only queries to all shards) and merge the partial counts. The
// RC-DVQ count over a rectangle decomposes exactly over a spatial
// partition — every object lives in exactly one shard — so merged exact
// counts equal a monolithic System's.
//
// Each shard runs its own LATEST module: its own learning model, its own
// active estimator, its own switching decisions. Shards covering different
// data densities may legitimately settle on different estimators.
//
// Estimator pre-filling is off the query path by default: when a shard's
// adaptor wants a candidate warmed from the window store, the replay runs
// on that shard's background goroutine (the query that triggered the
// switch returns immediately). WithSynchronousPrefill restores the inline
// replay, which a 1-shard system needs to reproduce System bit-for-bit.
//
// As with ConcurrentSystem, Estimate and the feedback call must pair up
// per query, which under concurrency is only maintainable atomically — so
// the combined EstimateAndExecute operations are exposed instead of the
// split halves. Timestamps should be non-decreasing per producer; arrivals
// that would run a shard's clock backwards are clamped to the shard's
// high-water mark (counted in the shard's Reordered gauge).
type ShardedSystem struct {
	world  Rect
	rows   int
	cols   int
	xs     []float64 // col edges, len cols+1
	ys     []float64 // row edges, len rows+1
	shards []*shard

	syncPrefill bool
	policy      ValidationPolicy

	telem *telemetry.Server

	closeOnce sync.Once
	workers   sync.WaitGroup

	// gen counts snapshots taken of this engine; fingerprint encodes the
	// construction options. Both serve the Snapshot/Restore contract — see
	// snapshot.go.
	gen         uint64
	fingerprint []byte
}

// shard is one spatial partition: a full System (module + window store)
// behind a mutex, plus operational gauges and the deferred-prefill worker
// state.
type shard struct {
	mu   sync.Mutex
	rect Rect
	sys  *System

	scratch Object

	gauges metrics.ShardGauges
	log    *telemetry.Logger

	// refillCh carries deferred pre-fill work to the shard's background
	// goroutine. Senders hold mu; the worker acquires mu per task, so the
	// channel must never be sent to while blocking — enqueue falls back to
	// an inline replay when the buffer is full.
	refillCh chan refillTask

	// prefillPending counts enqueued-but-unapplied deferred pre-fills
	// (guarded by mu; incremented by the enqueuing query, decremented by
	// the worker after the replay lands). Snapshot waits on prefillIdle
	// until it reaches zero: capturing an estimator while its replay is
	// queued would save a summary the original process was still about to
	// fill, and the restored run would diverge.
	prefillPending int
	prefillIdle    *sync.Cond
}

// awaitPrefillsLocked blocks until every deferred pre-fill handed to the
// shard's worker has been applied. Caller holds sh.mu; Wait releases it
// while blocked, so the worker can take the lock and drain.
func (sh *shard) awaitPrefillsLocked() {
	for sh.prefillPending > 0 {
		sh.prefillIdle.Wait()
	}
}

// refillTask is one deferred pre-fill: replay the window objects that
// existed at enqueue time (seq < boundary) into est. Objects inserted
// after the boundary reach est live through the module, so the split is
// exact — no object is double-inserted or missed.
type refillTask struct {
	est      estimator.Estimator
	boundary uint64
}

// NewSharded builds a sharded LATEST system over the given world,
// partitioned into WithShards(n) spatial shards (default
// runtime.GOMAXPROCS(0)). Call Close when done to stop the background
// prefill workers.
func NewSharded(world Rect, window time.Duration, opts ...Option) (*ShardedSystem, error) {
	return newSharded(buildConfig(world, window, opts))
}

// MustNewSharded is NewSharded but panics on error — for tests, examples
// and programs whose configuration is static.
func MustNewSharded(world Rect, window time.Duration, opts ...Option) *ShardedSystem {
	s, err := NewSharded(world, window, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// newSharded builds a ShardedSystem from the resolved option set.
func newSharded(cfg config) (*ShardedSystem, error) {
	n := cfg.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return nil, fmt.Errorf("latest: Shards must be positive, got %d", n)
	}
	if cfg.World.Empty() || !cfg.World.Valid() {
		return nil, fmt.Errorf("latest: World must be a valid non-empty rectangle, got %v", cfg.World)
	}
	rows, cols := shardGridDims(n)
	s := &ShardedSystem{
		world:       cfg.World,
		rows:        rows,
		cols:        cols,
		xs:          partitionEdges(cfg.World.MinX, cfg.World.MaxX, cols),
		ys:          partitionEdges(cfg.World.MinY, cfg.World.MaxY, rows),
		shards:      make([]*shard, n),
		syncPrefill: cfg.SyncPrefill,
		policy:      cfg.Validation,
	}
	queueDepth := cfg.PrefillQueueDepth
	if queueDepth == 0 {
		queueDepth = 4
	}
	baseLog := telemetry.NewLogger(cfg.LogOutput, cfg.LogLevel)
	for i := range s.shards {
		r, c := i/cols, i%cols
		component := fmt.Sprintf("shard-%d", i)
		sh := &shard{
			rect: Rect{MinX: s.xs[c], MinY: s.ys[r], MaxX: s.xs[c+1], MaxY: s.ys[r+1]},
			log:  baseLog.Named(component),
		}
		sh.prefillIdle = sync.NewCond(&sh.mu)
		shardCfg := cfg
		shardCfg.World = sh.rect
		// Shard 0 keeps the configured seed so a 1-shard system matches
		// System exactly; the rest decorrelate their estimator randomness.
		shardCfg.Seed = cfg.Seed + int64(i)*1_000_003
		prefillMode := "async"
		var refill refillFunc
		if s.syncPrefill {
			prefillMode = "inline"
			refill = func(w *stream.Window, e estimator.Estimator) {
				syncRefill(w, e)
				sh.gauges.RecordPrefill(false)
			}
		} else {
			sh.refillCh = make(chan refillTask, queueDepth)
			refill = func(w *stream.Window, e estimator.Estimator) {
				select {
				case sh.refillCh <- refillTask{est: e, boundary: w.NextSeq()}:
					// Enqueuer holds sh.mu (refills happen inside module
					// calls under the shard lock), so the count is
					// consistent with the send.
					sh.prefillPending++
				default:
					// Worker backlog (switch storm): pay the replay inline
					// rather than block while holding the shard lock.
					sh.gauges.RecordPrefillQueueFull()
					sh.log.Warn("prefill queue full, replaying inline",
						"estimator", e.Name(), "window", w.Size())
					syncRefill(w, e)
					sh.gauges.RecordPrefill(false)
				}
			}
		}
		sys, err := newSystem(shardCfg, refill, prefillMode, component, kindSharded)
		if err != nil {
			return nil, err
		}
		// Point the shard's System at the shard's gauge set, so validation
		// events detected inside the shared ingest/query paths land in the
		// gauges the sharded Stats reads.
		sys.gauges = &sh.gauges
		sh.sys = sys
		s.shards[i] = sh
		if sh.refillCh != nil {
			s.workers.Add(1)
			// Hand the worker the channel value: Close nils sh.refillCh
			// under the lock, and the worker must keep draining the real
			// channel until it is closed.
			go s.refillWorker(sh, sh.refillCh)
		}
	}
	// The sharded fingerprint derives from the top-level options (shard
	// systems see derived worlds and seeds); the fleet is identical across
	// shards, so shard 0's resolved names stand for all.
	s.fingerprint = configFingerprint(&cfg, s.shards[0].sys.module.Estimators())
	if cfg.TelemetryAddr != "" {
		srv, err := telemetry.Serve(cfg.TelemetryAddr, s.telemetrySnapshot, baseLog)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.telem = srv
	}
	return s, nil
}

// refillWorker drains a shard's deferred pre-fill queue, replaying the
// snapshotted window prefix into the candidate under the shard lock.
func (s *ShardedSystem) refillWorker(sh *shard, ch <-chan refillTask) {
	defer s.workers.Done()
	for task := range ch {
		start := time.Now()
		sh.mu.Lock()
		sh.sys.window.EachBefore(task.boundary, func(o *stream.Object) bool {
			task.est.Insert(o)
			return true
		})
		sh.prefillPending--
		sh.prefillIdle.Broadcast()
		sh.mu.Unlock()
		sh.gauges.RecordPrefill(true)
		sh.log.Debug("async prefill replayed",
			"estimator", task.est.Name(), "took", time.Since(start))
	}
}

// Close stops the telemetry server (if one was started) and the background
// prefill workers, waiting for them to drain. Pending pre-fills complete;
// using the system after Close may leave switch candidates cold but is
// otherwise safe. Close is idempotent.
func (s *ShardedSystem) Close() {
	s.closeOnce.Do(func() {
		if s.telem != nil {
			s.telem.Close()
		}
		for _, sh := range s.shards {
			if sh.refillCh != nil {
				sh.mu.Lock()
				ch := sh.refillCh
				sh.refillCh = nil // future refills fall back to inline replay
				sh.mu.Unlock()
				close(ch)
			}
		}
		s.workers.Wait()
	})
}

// Shutdown is the graceful form of Close: the telemetry exposition server
// (if one was started) finishes in-flight scrapes before stopping, and the
// wait for background prefill workers is bounded by ctx. Shares Close's
// once — whichever runs first wins, the other is a no-op. On ctx expiry
// the workers keep draining in the background; the system is still safe to
// use (refills fall back to inline replay).
func (s *ShardedSystem) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	s.closeOnce.Do(func() {
		if s.telem != nil {
			err = s.telem.Shutdown(ctx)
		}
		for _, sh := range s.shards {
			if sh.refillCh != nil {
				sh.mu.Lock()
				ch := sh.refillCh
				sh.refillCh = nil
				sh.mu.Unlock()
				close(ch)
			}
		}
		done := make(chan struct{})
		go func() {
			s.workers.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
	})
	return err
}

// shardGridDims factors n into the most-square rows×cols grid: rows is
// the largest divisor of n that is ≤ √n (rows·cols == n exactly; primes
// degrade to 1×n stripes).
func shardGridDims(n int) (rows, cols int) {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best, n / best
}

// partitionEdges splits [lo, hi] into n spans, pinning the outer edges to
// the exact world coordinates so the shards tile the world with no gaps.
func partitionEdges(lo, hi float64, n int) []float64 {
	edges := make([]float64, n+1)
	for i := 1; i < n; i++ {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	edges[0], edges[n] = lo, hi
	return edges
}

// shardOf routes a point to its shard index. The arithmetic guess is
// corrected against the actual edge array so routing always agrees with
// the shard rectangles — an object is counted by a range query iff the
// query rectangle intersects its shard's rectangle, which holds only if
// the object actually lies inside that rectangle. Points outside the
// world clamp to the nearest shard.
func (s *ShardedSystem) shardOf(p Point) int {
	col := edgeIndex(s.xs, p.X)
	row := edgeIndex(s.ys, p.Y)
	return row*s.cols + col
}

// edgeIndex returns i such that edges[i] <= v < edges[i+1], clamped to the
// valid span range.
func edgeIndex(edges []float64, v float64) int {
	n := len(edges) - 1
	lo, hi := edges[0], edges[n]
	i := 0
	if hi > lo {
		i = int(float64(n) * (v - lo) / (hi - lo))
	}
	if i < 0 {
		i = 0
	}
	if i > n-1 {
		i = n - 1
	}
	// Float arithmetic can land the guess one span off the edge array;
	// nudge until consistent.
	for i > 0 && v < edges[i] {
		i--
	}
	for i < n-1 && v >= edges[i+1] {
		i++
	}
	return i
}

// feedLocked ingests one object into sh, clamping regressed timestamps
// under the default ValidationClamp policy (counted in the Reordered
// gauge; under stricter policies the System-level validation rejects the
// arrival instead). The high-water mark is the shard System's lastTS,
// which advances only when validation accepts an object, so a rejected
// arrival (e.g. NaN coordinates) carrying a garbage timestamp cannot
// poison the shard's stream clock. Caller holds sh.mu.
func (sh *shard) feedLocked(o *Object) {
	if o.Timestamp < sh.sys.lastTS && sh.sys.policy == ValidationClamp {
		sh.scratch = *o
		sh.scratch.Timestamp = sh.sys.lastTS
		o = &sh.scratch
		sh.gauges.RecordReordered()
	}
	sh.sys.feedPtr(o)
}

// Feed ingests one stream object, locking only the shard its location
// routes to. One in metrics.FeedSampleInterval feeds per shard is timed
// (clock reads outside the lock) into the shard's ingest histogram.
func (s *ShardedSystem) Feed(o Object) {
	sh := s.shards[s.shardOf(o.Loc)]
	sampled := sh.gauges.RecordFeed()
	var start time.Time
	if sampled {
		start = time.Now()
	}
	sh.mu.Lock()
	sh.feedLocked(&o)
	occ := sh.sys.window.Size()
	sh.mu.Unlock()
	if sampled {
		sh.gauges.RecordFeedLatency(time.Since(start))
	}
	sh.gauges.SetOccupancy(occ)
}

// FeedBatch ingests a batch of stream objects, grouping them per shard so
// each shard's lock is taken once per batch. Object order is preserved
// within a shard; cross-shard ordering is irrelevant (shards hold disjoint
// objects).
func (s *ShardedSystem) FeedBatch(objs []Object) {
	if len(objs) == 0 {
		return
	}
	if len(s.shards) == 1 {
		sh := s.shards[0]
		start := time.Now()
		sh.mu.Lock()
		for i := range objs {
			sh.feedLocked(&objs[i])
		}
		occ := sh.sys.window.Size()
		sh.mu.Unlock()
		sh.gauges.RecordBatch(len(objs), time.Since(start))
		sh.gauges.SetOccupancy(occ)
		return
	}
	route := make([]int32, len(objs))
	counts := make([]int, len(s.shards))
	for i := range objs {
		si := s.shardOf(objs[i].Loc)
		route[i] = int32(si)
		counts[si]++
	}
	for si, sh := range s.shards {
		if counts[si] == 0 {
			continue
		}
		start := time.Now()
		sh.mu.Lock()
		for i := range objs {
			if int(route[i]) == si {
				sh.feedLocked(&objs[i])
			}
		}
		occ := sh.sys.window.Size()
		sh.mu.Unlock()
		sh.gauges.RecordBatch(counts[si], time.Since(start))
		sh.gauges.SetOccupancy(occ)
	}
}

// targets returns the shards a query must consult: every shard whose
// rectangle intersects the range, or all shards for keyword-only queries.
func (s *ShardedSystem) targets(q *Query) []*shard {
	if !q.HasRange {
		return s.shards
	}
	out := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		if sh.rect.Intersects(q.Range) {
			out = append(out, sh)
		}
	}
	return out
}

// EstimateAndExecute answers the query approximately, then exactly, and
// feeds each shard its own partial truth — one atomic estimate/observe
// cycle per intersecting shard, fanned out in parallel. Estimates and
// exact counts are merged by summation, which is exact for the count
// because shards hold disjoint objects. A range query that intersects no
// shard (range outside the world) returns (0, 0) without consulting any
// module.
func (s *ShardedSystem) EstimateAndExecute(q *Query) (estimate float64, actual int) {
	// Validate (and under ValidationClamp, repair) the query before shard
	// routing: a NaN or inverted rectangle would otherwise silently match
	// no shard. Engine-level rejects are counted in shard 0's gauges.
	if !checkQuery(q, s.policy, s.world, &s.shards[0].gauges, s.shards[0].log) {
		return 0, 0
	}
	targets := s.targets(q)
	switch len(targets) {
	case 0:
		return 0, 0
	case 1:
		sh := targets[0]
		start := time.Now()
		sh.mu.Lock()
		estimate, actual = sh.sys.estimateAndExecute(q)
		sh.mu.Unlock()
		sh.gauges.RecordQuery(time.Since(start))
		return estimate, actual
	}
	return s.fanOut(q, targets)
}

// fanOut runs the scatter-gather path over the already-routed target
// shards: one atomic estimate/observe cycle per shard in parallel, partial
// answers merged by summation (exact for the count because shards hold
// disjoint objects).
func (s *ShardedSystem) fanOut(q *Query, targets []*shard) (estimate float64, actual int) {
	type partial struct {
		est float64
		act int
	}
	parts := make([]partial, len(targets))
	var wg sync.WaitGroup
	for i, sh := range targets {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			start := time.Now()
			sh.mu.Lock()
			e, a := sh.sys.estimateAndExecute(q)
			sh.mu.Unlock()
			sh.gauges.RecordQuery(time.Since(start))
			parts[i] = partial{est: e, act: a}
		}(i, sh)
	}
	wg.Wait()
	// Sum in shard order so the merged estimate is deterministic for a
	// deterministic per-shard run.
	for _, p := range parts {
		estimate += p.est
		actual += p.act
	}
	return estimate, actual
}

// EstimateAndExecuteBatch runs EstimateAndExecute over a batch of queries
// in order, returning the parallel estimate and exact-count slices.
func (s *ShardedSystem) EstimateAndExecuteBatch(qs []Query) (estimates []float64, actuals []int) {
	estimates = make([]float64, len(qs))
	actuals = make([]int, len(qs))
	for i := range qs {
		estimates[i], actuals[i] = s.EstimateAndExecute(&qs[i])
	}
	return estimates, actuals
}

// NumShards returns the shard count.
func (s *ShardedSystem) NumShards() int { return len(s.shards) }

// TelemetryAddr returns the bound address of the telemetry server, or ""
// when WithTelemetry was not used. With a ":0" listen address this is how
// callers learn the kernel-assigned port.
func (s *ShardedSystem) TelemetryAddr() string {
	if s.telem == nil {
		return ""
	}
	return s.telem.Addr()
}

// ShardRects returns the shard rectangles in shard order.
func (s *ShardedSystem) ShardRects() []Rect {
	out := make([]Rect, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.rect
	}
	return out
}

// WindowSize returns the number of live objects across all shards.
func (s *ShardedSystem) WindowSize() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.sys.WindowSize()
		sh.mu.Unlock()
	}
	return total
}

// Phase returns the earliest lifecycle phase any shard is in: the system
// as a whole has not finished pre-training until every shard has.
func (s *ShardedSystem) Phase() Phase {
	phase := PhaseIncremental
	for _, sh := range s.shards {
		sh.mu.Lock()
		p := sh.sys.Phase()
		sh.mu.Unlock()
		if p < phase {
			phase = p
		}
	}
	return phase
}

// ActiveEstimators returns each shard's active estimator name, in shard
// order. Shards adapt independently, so a mixed fleet is normal.
func (s *ShardedSystem) ActiveEstimators() []string {
	out := make([]string, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = sh.sys.ActiveEstimator()
		sh.mu.Unlock()
	}
	return out
}

// Switches returns every shard's switch history concatenated in shard
// order, each event annotated with nothing extra — use Stats for per-shard
// grouping.
func (s *ShardedSystem) Switches() []SwitchEvent {
	var out []SwitchEvent
	for _, sh := range s.shards {
		sh.mu.Lock()
		out = append(out, sh.sys.Switches()...)
		sh.mu.Unlock()
	}
	return out
}

// ShardStats is one shard's slice of a ShardedStats snapshot.
type ShardStats struct {
	// Index is the shard's position in row-major grid order.
	Index int
	// Rect is the shard's spatial partition.
	Rect Rect
	// Core is the shard module's internals snapshot.
	Core Stats
	// WindowSize is the shard's live exact-store size.
	WindowSize int
	// Gauges are the shard's operational counters (feeds, queries,
	// reordered arrivals, latencies, occupancy).
	Gauges metrics.GaugeSnapshot
}

// ShardedStats is a snapshot of the whole sharded system: the merged
// module view plus per-shard detail.
type ShardedStats struct {
	// Merged folds every shard's module snapshot into one Stats (counters
	// summed, phase = earliest, accuracy weighted by monitored queries).
	Merged Stats
	// Shards holds per-shard snapshots in shard order.
	Shards []ShardStats
}

// Stats snapshots every shard and returns the merged module view —
// counters summed, phase = earliest, accuracy weighted by monitored
// queries — satisfying the unified Engine interface. Per-shard detail
// moved to PerShardStats.
func (s *ShardedSystem) Stats() Stats { return s.PerShardStats().Merged }

// PerShardStats snapshots every shard and merges the module views.
func (s *ShardedSystem) PerShardStats() ShardedStats {
	out := ShardedStats{Shards: make([]ShardStats, len(s.shards))}
	parts := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		parts[i] = sh.sys.Stats()
		ws := sh.sys.WindowSize()
		sh.mu.Unlock()
		// Core snapshots don't know their shard index; stamp it so merged
		// decision traces say where each switch happened.
		for j := range parts[i].Decisions {
			parts[i].Decisions[j].Shard = i
		}
		out.Shards[i] = ShardStats{
			Index:      i,
			Rect:       sh.rect,
			Core:       parts[i],
			WindowSize: ws,
			Gauges:     sh.gauges.Snapshot(),
		}
	}
	out.Merged = core.MergeStats(parts)
	return out
}
