package latest

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// shard_stress_test.go hammers the per-shard ingest pipelines with
// concurrent producers and verifies the one invariant that matters for a
// partitioned exact store: every object fed is applied to exactly one
// shard — none lost, none duplicated — no matter how feeds, batches,
// queries and shutdowns interleave. The suite runs under -race in the CI
// chaos job (test names carry the ShardStress marker the job greps for).

// stressFeed drives one producer's share of the workload with randomized
// batch sizes, mixing single Feed calls (batch size 1) with FeedBatch.
func stressFeed(s *ShardedSystem, objs []Object, rng *rand.Rand) {
	for len(objs) > 0 {
		n := 1 + rng.Intn(97)
		if n > len(objs) {
			n = len(objs)
		}
		if n == 1 {
			s.Feed(objs[0])
		} else {
			batch := make([]Object, n)
			// Producers own their slices; copy so FeedBatch's caller-reuse
			// contract is exercised with a buffer we immediately re-append
			// to on the next iteration.
			copy(batch, objs[:n])
			s.FeedBatch(batch)
		}
		objs = objs[n:]
	}
}

// stressCheckIntegrity asserts the zero-lost/zero-duplicated invariant
// after a drain: window occupancy (global and per-shard), the per-shard
// feed gauges, and a full-world exact count must all equal total.
func stressCheckIntegrity(t *testing.T, s *ShardedSystem, total int, maxTS int64) {
	t.Helper()
	s.Drain()
	if got := s.WindowSize(); got != total {
		t.Errorf("WindowSize = %d, want %d", got, total)
	}
	st := s.PerShardStats()
	occ, feeds := 0, uint64(0)
	for _, sh := range st.Shards {
		occ += sh.WindowSize
		feeds += sh.Gauges.Feeds
	}
	if occ != total {
		t.Errorf("per-shard occupancy sums to %d, want %d", occ, total)
	}
	if feeds != uint64(total) {
		t.Errorf("per-shard feed gauges sum to %d, want %d", feeds, total)
	}
	q := SpatialQuery(testWorld(), maxTS)
	if _, actual := s.EstimateAndExecute(&q); actual != total {
		t.Errorf("full-world exact count = %d, want %d", actual, total)
	}
}

// TestShardStressIngestIntegrity: N producers × M shards, randomized batch
// sizes, no object lost or duplicated after drain.
func TestShardStressIngestIntegrity(t *testing.T) {
	perProducer := 4000
	if testing.Short() {
		perProducer = 1000
	}
	const producers = 4
	for _, shards := range []int{1, 2, 4, 6} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := MustNewSharded(testWorld(), time.Hour,
				WithSeed(7), WithShards(shards), WithIngestQueueDepth(4))
			defer s.Close()
			objs := shardWorkload(int64(100+shards), producers*perProducer)
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000*shards + p)))
					stressFeed(s, objs[p*perProducer:(p+1)*perProducer], rng)
				}(p)
			}
			wg.Wait()
			stressCheckIntegrity(t, s, producers*perProducer, int64(len(objs)+1))
		})
	}
}

// TestShardStressFeedQueryRace runs producers, queriers and stats scrapers
// concurrently: nothing may race (the -race build checks), and the ingest
// invariant must hold once the dust settles.
func TestShardStressFeedQueryRace(t *testing.T) {
	perProducer := 3000
	if testing.Short() {
		perProducer = 800
	}
	const producers = 3
	s := MustNewSharded(testWorld(), time.Hour,
		WithSeed(8), WithShards(4), WithIngestQueueDepth(2))
	defer s.Close()
	objs := shardWorkload(42, producers*perProducer)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7700 + p)))
			stressFeed(s, objs[p*perProducer:(p+1)*perProducer], rng)
		}(p)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			qs := shardQueries(int64(q), 64, int64(len(objs)))
			for i := 0; ; i = (i + 1) % len(qs) {
				select {
				case <-stop:
					return
				default:
				}
				qq := qs[i]
				s.EstimateAndExecute(&qq)
			}
		}(q)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Stats()
			s.TelemetrySnapshot()
			s.WindowSize()
		}
	}()

	// Wait for producers by polling window size up to a deadline, then
	// stop the readers; integrity is checked after a full drain.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadline := time.After(2 * time.Minute)
	for {
		if s.WindowSize() == len(objs) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("producers did not finish: window=%d want %d", s.WindowSize(), len(objs))
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stop)
	<-done
	stressCheckIntegrity(t, s, len(objs), int64(len(objs)+1))
}

// TestShardStressBackpressure forces the queue-full path: a depth-1
// pipeline with many producers must block hand-offs (visible in the
// IngestBackpressure gauge on most runs) and still lose nothing.
func TestShardStressBackpressure(t *testing.T) {
	const producers, perProducer = 6, 1200
	s := MustNewSharded(testWorld(), time.Hour,
		WithSeed(9), WithShards(2), WithIngestQueueDepth(1))
	defer s.Close()
	objs := shardWorkload(43, producers*perProducer)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(8800 + p)))
			stressFeed(s, objs[p*perProducer:(p+1)*perProducer], rng)
		}(p)
	}
	wg.Wait()
	stressCheckIntegrity(t, s, producers*perProducer, int64(len(objs)+1))
}

// TestShardStressShutdownDuringFeeds shuts the engine down while producers
// are mid-flight: Shutdown must drain what was queued, late feeds must
// fall back to the inline path without panicking, and the surviving state
// must stay internally consistent (per-shard occupancy sums to the global
// window, nothing duplicated).
func TestShardStressShutdownDuringFeeds(t *testing.T) {
	const producers, perProducer = 4, 2000
	s := MustNewSharded(testWorld(), time.Hour,
		WithSeed(10), WithShards(3), WithIngestQueueDepth(2))
	objs := shardWorkload(44, producers*perProducer)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(9900 + p)))
			stressFeed(s, objs[p*perProducer:(p+1)*perProducer], rng)
		}(p)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	wg.Wait()
	// Every feed call returned, via pipeline or inline fallback, so the
	// full workload must be present exactly once.
	stressCheckIntegrity(t, s, producers*perProducer, int64(len(objs)+1))
}
