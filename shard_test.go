package latest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func testWorld() Rect { return Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1} }

func shardWorkload(seed int64, n int) []Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{
			ID:        uint64(i + 1),
			Loc:       Pt(rng.Float64(), rng.Float64()),
			Keywords:  []string{fmt.Sprintf("kw%d", rng.Intn(20))},
			Timestamp: int64(i + 1),
		}
	}
	return objs
}

func shardQueries(seed int64, n int, ts int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]Query, n)
	for i := range qs {
		area := CenteredRect(Pt(rng.Float64(), rng.Float64()), 0.3, 0.3)
		switch i % 3 {
		case 0:
			qs[i] = SpatialQuery(area, ts)
		case 1:
			qs[i] = KeywordQuery([]string{fmt.Sprintf("kw%d", rng.Intn(20))}, ts)
		default:
			qs[i] = HybridQuery(area, []string{fmt.Sprintf("kw%d", rng.Intn(20))}, ts)
		}
	}
	return qs
}

func TestShardedRejectsBadConfig(t *testing.T) {
	if _, err := NewSharded(testWorld(), 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewSharded(Rect{}, time.Second); err == nil {
		t.Error("empty world accepted")
	}
	if _, err := NewSharded(testWorld(), time.Second, WithShards(-1)); err == nil {
		t.Error("negative shard count accepted")
	}
}

// TestShardedPartition pins the grid construction: shards tile the world
// with exact outer edges, and routing agrees with the shard rectangles.
func TestShardedPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 7, 8, 12} {
		s, err := NewSharded(testWorld(), time.Minute, WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		rects := s.ShardRects()
		if len(rects) != n || s.NumShards() != n {
			t.Fatalf("shards=%d, want %d", len(rects), n)
		}
		var area float64
		for _, r := range rects {
			area += r.Area()
		}
		if diff := area - testWorld().Area(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("n=%d: shard areas sum to %v, want %v", n, area, testWorld().Area())
		}
		if n == 1 && rects[0] != testWorld() {
			t.Errorf("1-shard rect = %v, want world", rects[0])
		}
		// Routing must land every point inside its shard's rectangle —
		// including boundary and out-of-world points.
		rng := rand.New(rand.NewSource(int64(n)))
		probe := func(p Point) {
			si := s.shardOf(p)
			r := rects[si]
			in := testWorld().Contains(p)
			if in && !r.Contains(p) {
				t.Fatalf("n=%d: point %v routed to shard %d rect %v which excludes it", n, p, si, r)
			}
		}
		for i := 0; i < 2000; i++ {
			probe(Pt(rng.Float64(), rng.Float64()))
		}
		for _, r := range rects {
			probe(Pt(r.MinX, r.MinY))
			probe(r.Center())
		}
		probe(Pt(-5, -5))
		probe(Pt(5, 5))
		s.Close()
	}
}

// TestShardedOneShardDeterminism is the sharded engine's ground truth: a
// 1-shard ShardedSystem with synchronous prefill is the same machine as a
// plain System, so a seeded workload must produce bit-identical estimates
// and exact counts. Opportunity switches weigh measured wall-clock
// latency, so they are disabled on both sides.
func TestShardedOneShardDeterminism(t *testing.T) {
	opts := []Option{
		WithPretrainQueries(120), WithAccWindow(60), WithSeed(1),
		WithOpportunityMargin(-1),
	}
	mono, err := New(testWorld(), time.Minute, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(testWorld(), time.Minute,
		append(opts[:len(opts):len(opts)], WithShards(1), WithSynchronousPrefill())...)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	objs := shardWorkload(7, 6000)
	for i := range objs {
		mono.Feed(objs[i])
		sharded.Feed(objs[i])
	}
	ts := objs[len(objs)-1].Timestamp
	for i, q := range shardQueries(8, 400, ts) {
		qm, qs := q, q
		em, am := mono.EstimateAndExecute(&qm)
		es, as := sharded.EstimateAndExecute(&qs)
		if em != es || am != as {
			t.Fatalf("query %d: mono (%v, %d) vs 1-shard (%v, %d)", i, em, am, es, as)
		}
	}
	if a, b := mono.ActiveEstimator(), sharded.ActiveEstimators()[0]; a != b {
		t.Errorf("active estimators diverge: %q vs %q", a, b)
	}
	if a, b := mono.WindowSize(), sharded.WindowSize(); a != b {
		t.Errorf("window sizes diverge: %d vs %d", a, b)
	}
}

// TestShardedExactCounts pins the count decomposition: objects are routed
// disjointly, queries fan out unclipped, so merged exact counts equal a
// monolithic System's for every query shape — on any shard count.
func TestShardedExactCounts(t *testing.T) {
	objs := shardWorkload(11, 8000)
	ts := objs[len(objs)-1].Timestamp
	mono, err := New(testWorld(), time.Minute, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	mono.FeedBatch(append([]Object(nil), objs...))

	for _, n := range []int{2, 3, 4, 7} {
		sharded, err := NewSharded(testWorld(), time.Minute, WithSeed(2), WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		sharded.FeedBatch(append([]Object(nil), objs...))
		if a, b := mono.WindowSize(), sharded.WindowSize(); a != b {
			t.Fatalf("n=%d: window sizes diverge: %d vs %d", n, a, b)
		}
		qs := shardQueries(12, 300, ts)
		// Include queries straddling shard boundaries and covering the world.
		qs = append(qs,
			SpatialQuery(testWorld(), ts),
			SpatialQuery(CenteredRect(Pt(0.5, 0.5), 1e-6, 1e-6), ts),
			SpatialQuery(Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}, ts),
			SpatialQuery(Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}, ts), // outside world
		)
		for i := range qs {
			qm, qsh := qs[i], qs[i]
			_, wantAct := mono.EstimateAndExecute(&qm)
			_, gotAct := sharded.EstimateAndExecute(&qsh)
			if gotAct != wantAct {
				t.Fatalf("n=%d query %d (%v): sharded count %d, mono %d",
					n, i, qs[i].Type(), gotAct, wantAct)
			}
		}
		sharded.Close()
	}
}

// TestShardedParallel hammers a ShardedSystem with concurrent batch
// producers and queriers; run with -race. Covers the async prefill worker
// (switches happen under the query load) and the timestamp clamp.
func TestShardedParallel(t *testing.T) {
	s, err := NewSharded(testWorld(), time.Minute,
		WithShards(4), WithPretrainQueries(50), WithAccWindow(30), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Seed one window of data so queries observe live objects.
	seedObjs := shardWorkload(13, 5000)
	s.FeedBatch(seedObjs)
	baseTS := seedObjs[len(seedObjs)-1].Timestamp

	const producers, queriers = 4, 4
	stop := make(chan struct{})
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(seed int64) {
			defer prodWG.Done()
			rng := rand.New(rand.NewSource(seed))
			ts := baseTS
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([]Object, 64)
				for j := range batch {
					ts++
					batch[j] = Object{ID: uint64(ts), Loc: Pt(rng.Float64(), rng.Float64()),
						Keywords: []string{fmt.Sprintf("kw%d", rng.Intn(10))}, Timestamp: ts}
				}
				s.FeedBatch(batch)
			}
		}(int64(20 + p))
	}

	var queryWG sync.WaitGroup
	for g := 0; g < queriers; g++ {
		queryWG.Add(1)
		go func(seed int64) {
			defer queryWG.Done()
			for i, q := range shardQueries(seed, 150, baseTS) {
				est, actual := s.EstimateAndExecute(&q)
				if est < 0 || actual < 0 {
					t.Errorf("query %d: est %v actual %d", i, est, actual)
					return
				}
				if i%25 == 0 {
					_ = s.Stats()
					_ = s.Phase()
				}
			}
		}(int64(30 + g))
	}
	queryWG.Wait()
	close(stop)
	prodWG.Wait()

	st := s.PerShardStats()
	if got := st.Merged.PretrainSeen + st.Merged.IncrementalSeen; got == 0 {
		t.Error("no queries accounted across shards")
	}
	var feeds uint64
	for _, sh := range st.Shards {
		feeds += sh.Gauges.Feeds
	}
	if feeds < uint64(len(seedObjs)) {
		t.Errorf("gauges recorded %d feeds, want >= %d", feeds, len(seedObjs))
	}
	if len(st.Shards) != 4 {
		t.Errorf("stats cover %d shards", len(st.Shards))
	}
}

// TestShardedAsyncPrefillDrains forces estimator switches with a hostile
// workload and verifies Close drains the deferred prefill queue without
// deadlock or leak.
func TestShardedAsyncPrefillDrains(t *testing.T) {
	s, err := NewSharded(testWorld(), 5*time.Second,
		WithShards(2), WithPretrainQueries(40), WithAccWindow(20), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	ts := int64(0)
	for round := 0; round < 30; round++ {
		batch := make([]Object, 80)
		for j := range batch {
			ts++
			batch[j] = Object{ID: uint64(ts), Loc: Pt(rng.Float64(), rng.Float64()),
				Keywords: []string{fmt.Sprintf("kw%d", round%7)}, Timestamp: ts}
		}
		s.FeedBatch(batch)
		// Alternate query shapes every round to destabilize accuracy and
		// provoke τ switches (and therefore prefills).
		for i := 0; i < 20; i++ {
			var q Query
			if round%2 == 0 {
				q = KeywordQuery([]string{fmt.Sprintf("kw%d", rng.Intn(7))}, ts)
			} else {
				q = SpatialQuery(CenteredRect(Pt(rng.Float64(), rng.Float64()), 0.05, 0.05), ts)
			}
			if est, _ := s.EstimateAndExecute(&q); est < 0 {
				t.Fatalf("negative estimate %v", est)
			}
		}
	}
	s.Close()
	s.Close() // idempotent
	// Post-Close operation stays safe (prefills fall back inline).
	q := KeywordQuery([]string{"kw1"}, ts)
	if est, _ := s.EstimateAndExecute(&q); est < 0 {
		t.Fatalf("post-close estimate %v", est)
	}
}

// TestFeedBatchEmpty pins the no-op contract: an empty (or nil) batch
// must not touch any shard state or gauges.
func TestFeedBatchEmpty(t *testing.T) {
	s := MustNewSharded(testWorld(), time.Hour, WithSeed(3), WithShards(4))
	defer s.Close()
	s.FeedBatch(nil)
	s.FeedBatch([]Object{})
	if got := s.WindowSize(); got != 0 {
		t.Errorf("WindowSize after empty batches = %d, want 0", got)
	}
	for _, sh := range s.PerShardStats().Shards {
		if sh.Gauges.Feeds != 0 || sh.Gauges.Batches != 0 {
			t.Errorf("shard %d gauges touched by empty batch: %+v", sh.Index, sh.Gauges)
		}
	}
}

// TestFeedBatchAllOneShard routes a whole batch into a single shard: the
// single-pass router must produce exactly one chunk (one batch gauge tick
// on the owning shard, none elsewhere).
func TestFeedBatchAllOneShard(t *testing.T) {
	s := MustNewSharded(testWorld(), time.Hour, WithSeed(4), WithShards(4))
	defer s.Close()
	rects := s.ShardRects()
	target := 2
	c := rects[target].Center()
	objs := make([]Object, 64)
	for i := range objs {
		objs[i] = Object{ID: uint64(i + 1), Loc: c, Timestamp: int64(i + 1)}
	}
	s.FeedBatch(objs)
	s.Drain()
	for _, sh := range s.PerShardStats().Shards {
		wantFeeds, wantBatches := uint64(0), uint64(0)
		if sh.Index == target {
			wantFeeds, wantBatches = uint64(len(objs)), 1
		}
		if sh.Gauges.Feeds != wantFeeds || sh.Gauges.Batches != wantBatches {
			t.Errorf("shard %d: feeds=%d batches=%d, want feeds=%d batches=%d",
				sh.Index, sh.Gauges.Feeds, sh.Gauges.Batches, wantFeeds, wantBatches)
		}
	}
	if got := s.WindowSize(); got != len(objs) {
		t.Errorf("WindowSize = %d, want %d", got, len(objs))
	}
}

// TestFeedBatchPartitionEdges feeds objects whose coordinates sit exactly
// on the partition edges (including the world corners): each must land in
// exactly one shard — the one whose rectangle routing assigns — and be
// counted exactly once by a full-world query and by its shard's own
// rectangle query.
func TestFeedBatchPartitionEdges(t *testing.T) {
	s := MustNewSharded(testWorld(), time.Hour, WithSeed(5), WithShards(4)) // 2x2 grid
	defer s.Close()
	edges := []float64{0, 0.5, 1} // 2x2 over the unit square
	var objs []Object
	id := uint64(0)
	for _, x := range edges {
		for _, y := range edges {
			id++
			objs = append(objs, Object{ID: id, Loc: Pt(x, y), Timestamp: int64(id)})
		}
	}
	s.FeedBatch(objs)
	s.Drain()
	if got := s.WindowSize(); got != len(objs) {
		t.Fatalf("WindowSize = %d, want %d", got, len(objs))
	}
	q := SpatialQuery(testWorld(), int64(len(objs)+1))
	if _, actual := s.EstimateAndExecute(&q); actual != len(objs) {
		t.Errorf("full-world count = %d, want %d (edge object lost or duplicated)", actual, len(objs))
	}
	// Per-shard rectangle queries overlap on the shared edges, so summing
	// them would overcount; instead pin that occupancies sum exactly.
	occ := 0
	for _, sh := range s.PerShardStats().Shards {
		occ += sh.WindowSize
	}
	if occ != len(objs) {
		t.Errorf("per-shard occupancy sums to %d, want %d", occ, len(objs))
	}
}

// TestFeedBatchBackpressureDepth pushes more batches than the pipeline
// depth holds from a single producer: hand-offs must block (never drop),
// so after a drain every batch is applied exactly once.
func TestFeedBatchBackpressureDepth(t *testing.T) {
	s := MustNewSharded(testWorld(), time.Hour,
		WithSeed(6), WithShards(2), WithIngestQueueDepth(1))
	defer s.Close()
	const batches, per = 64, 50
	objs := shardWorkload(51, batches*per)
	for b := 0; b < batches; b++ {
		s.FeedBatch(objs[b*per : (b+1)*per])
	}
	s.Drain()
	if got := s.WindowSize(); got != len(objs) {
		t.Errorf("WindowSize = %d, want %d", got, len(objs))
	}
	q := SpatialQuery(testWorld(), int64(len(objs)+1))
	if _, actual := s.EstimateAndExecute(&q); actual != len(objs) {
		t.Errorf("exact count = %d, want %d", actual, len(objs))
	}
}

// TestShardedSynchronousIngest pins the WithSynchronousIngest escape
// hatch: no pipeline goroutines, applies complete when the call returns,
// and the routed result matches the pipelined engine object-for-object.
func TestShardedSynchronousIngest(t *testing.T) {
	sync1 := MustNewSharded(testWorld(), time.Hour,
		WithSeed(7), WithShards(4), WithSynchronousIngest())
	defer sync1.Close()
	pipe := MustNewSharded(testWorld(), time.Hour, WithSeed(7), WithShards(4))
	defer pipe.Close()
	objs := shardWorkload(52, 2000)
	sync1.FeedBatch(objs)
	pipe.FeedBatch(objs)
	// Synchronous mode needs no drain: the batch is applied already.
	if got := sync1.WindowSize(); got != len(objs) {
		t.Fatalf("sync WindowSize = %d, want %d", got, len(objs))
	}
	pipe.Drain()
	a, b := sync1.PerShardStats(), pipe.PerShardStats()
	for i := range a.Shards {
		if a.Shards[i].WindowSize != b.Shards[i].WindowSize {
			t.Errorf("shard %d: sync window=%d pipelined window=%d",
				i, a.Shards[i].WindowSize, b.Shards[i].WindowSize)
		}
	}
}
