package latest

import (
	"bytes"
	"context"
	"fmt"

	"github.com/spatiotext/latest/internal/estimator"
	"github.com/spatiotext/latest/internal/persist"
	"github.com/spatiotext/latest/internal/telemetry"
)

// snapshot.go implements Engine.Snapshot / Engine.Restore for the three
// engine shapes. A snapshot is one LSNP container (internal/persist) whose
// sections are:
//
//	meta               engine kind, config fingerprint, generation
//	[shard-N/]window   the exact window store, objects in arrival order
//	[shard-N/]module   lifecycle counters, brain, estimator summaries
//	[shard-N/]engine   the stream clock high-water mark
//
// The monolithic engines write unprefixed sections; ShardedSystem writes
// one section group per shard. Every section and the whole file are CRC
// guarded; the container checksum is verified before the version field, so
// bit rot surfaces as CodeCorrupt rather than masquerading as skew.

// Engine-kind strings recorded in snapshot meta. System and
// ConcurrentSystem share "single": the wrapper adds a mutex, not state, so
// their snapshots are interchangeable.
const snapKindSingle = "single"

// metaSectionName is the section every snapshot must carry.
const metaSectionName = "meta"

// configFingerprint encodes every configuration knob that shapes
// serialized state. Restore compares fingerprints byte-for-byte: a
// snapshot taken under different parameters (different window span, fleet,
// seed, memory scale, ...) is refused with CodeMismatch instead of being
// silently reinterpreted. Defaults are resolved before encoding so an
// explicit WithTau(0.75) and an implied default fingerprint identically.
func configFingerprint(cfg *config, fleet []string) []byte {
	alpha := cfg.Alpha
	if !cfg.AlphaSet && alpha == 0 {
		alpha = 0.5
	}
	tau := cfg.Tau
	if tau == 0 {
		tau = 0.75
	}
	beta := cfg.Beta
	if beta == 0 {
		beta = 0.8
	}
	accWindow := cfg.AccWindow
	if accWindow == 0 {
		accWindow = 200
	}
	pretrain := cfg.PretrainQueries
	if pretrain == 0 {
		pretrain = 2000
	}
	cooldown := cfg.CooldownQueries
	if cooldown == 0 {
		cooldown = accWindow / 2
	}
	oppMargin := cfg.OpportunityMargin
	if oppMargin == 0 {
		oppMargin = 0.15
	}
	def := cfg.Default
	if def == "" {
		def = estimator.NameRSH
	}
	cells := cfg.OracleGridCells
	if cells == 0 {
		cells = 4096
	}
	traceDepth := cfg.TraceDepth
	if traceDepth == 0 {
		traceDepth = telemetry.DefaultTraceDepth
	}
	var e persist.Enc
	e.F64(cfg.World.MinX)
	e.F64(cfg.World.MinY)
	e.F64(cfg.World.MaxX)
	e.F64(cfg.World.MaxY)
	e.I64(cfg.Window.Milliseconds())
	e.Strs(fleet)
	e.Str(def)
	e.F64(alpha)
	e.F64(tau)
	e.F64(beta)
	e.Int(accWindow)
	e.Int(pretrain)
	e.Int(cooldown)
	e.F64(oppMargin)
	e.F64(cfg.MemoryScale)
	e.I64(cfg.Seed)
	e.Int(cells)
	e.Int(traceDepth)
	e.U8(uint8(cfg.Validation))
	return e.Data()
}

// encodeMeta builds the meta section payload.
func encodeMeta(kind string, fingerprint []byte, gen uint64) []byte {
	var e persist.Enc
	e.Str(kind)
	e.Blob(fingerprint)
	e.U64(gen)
	return e.Data()
}

// decodeMeta validates the meta section against the restoring engine's
// kind and fingerprint and returns the snapshot generation.
func decodeMeta(snap *persist.Snapshot, wantKind string, wantFP []byte) (gen uint64, err error) {
	const op = "snapshot meta"
	payload, ok := snap.Section(metaSectionName)
	if !ok {
		return 0, persist.Errf(persist.CodeMalformed, op, "section missing")
	}
	d := persist.NewDec(payload)
	kind := d.Str()
	fp := d.Blob()
	gen = d.U64()
	if d.Err() != nil {
		return 0, d.Err()
	}
	if err := d.Done(); err != nil {
		return 0, err
	}
	if kind != wantKind {
		return 0, persist.Errf(persist.CodeMismatch, op,
			"snapshot is from a %q engine, this engine is %q", kind, wantKind)
	}
	if !bytes.Equal(fp, wantFP) {
		return 0, persist.Errf(persist.CodeMismatch, op,
			"snapshot was taken under a different configuration (fingerprint differs); rebuild the engine with the original options")
	}
	return gen, nil
}

// writeSections serializes one System's state group into sw under prefix
// ("" for the monolithic engines, "shard-N/" per shard).
func (s *System) writeSections(sw *persist.SnapshotWriter, prefix string) error {
	var we persist.Enc
	s.window.SaveState(&we)
	sw.Section(prefix+"window", we.Data())
	var me persist.Enc
	if err := s.module.SaveState(&me); err != nil {
		return err
	}
	sw.Section(prefix+"module", me.Data())
	var ee persist.Enc
	ee.I64(s.lastTS)
	sw.Section(prefix+"engine", ee.Data())
	return nil
}

// readSections restores one System's state group. The window loads first:
// estimators without a serialized summary are rebuilt by replaying the
// restored window through the refill path, which must see the full store.
func (s *System) readSections(snap *persist.Snapshot, prefix string) error {
	const op = "snapshot"
	win, ok := snap.Section(prefix + "window")
	if !ok {
		return persist.Errf(persist.CodeMalformed, op, "section %q missing", prefix+"window")
	}
	wd := persist.NewDec(win)
	if err := s.window.LoadState(wd); err != nil {
		return err
	}
	if err := wd.Done(); err != nil {
		return err
	}
	mod, ok := snap.Section(prefix + "module")
	if !ok {
		return persist.Errf(persist.CodeMalformed, op, "section %q missing", prefix+"module")
	}
	md := persist.NewDec(mod)
	if err := s.module.LoadState(md); err != nil {
		return err
	}
	if err := md.Done(); err != nil {
		return err
	}
	eng, ok := snap.Section(prefix + "engine")
	if !ok {
		return persist.Errf(persist.CodeMalformed, op, "section %q missing", prefix+"engine")
	}
	ed := persist.NewDec(eng)
	lastTS := ed.I64()
	if err := ed.Err(); err != nil {
		return err
	}
	if err := ed.Done(); err != nil {
		return err
	}
	s.lastTS = lastTS
	return nil
}

// Snapshot serializes the engine into st as one atomic artifact named
// persist.SnapshotName. Each successful snapshot increments the engine's
// generation by exactly one; the generation is embedded in the artifact,
// which is what lets the durable layer pair a snapshot with its feed WAL
// atomically (the pairing commits with the snapshot's rename).
//
// System is single-goroutine: do not call Snapshot concurrently with
// traffic (use ConcurrentSystem, ShardedSystem or DurableEngine for that).
func (s *System) Snapshot(ctx context.Context, st Store) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sw := persist.NewSnapshotWriter()
	sw.Section(metaSectionName, encodeMeta(snapKindSingle, s.fingerprint, s.gen+1))
	if err := s.writeSections(sw, ""); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := st.Save(persist.SnapshotName, sw.Bytes()); err != nil {
		return err
	}
	s.gen++
	return nil
}

// Restore loads a snapshot into this freshly constructed System. The
// engine must have been built with the same options (CodeMismatch
// otherwise) and never fed (CodeState otherwise). On error the engine must
// be discarded: a failed restore never leaves partial state behind a
// usable-looking engine.
func (s *System) Restore(ctx context.Context, st Store) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	data, err := st.Load(persist.SnapshotName)
	if err != nil {
		return err
	}
	snap, err := persist.DecodeSnapshot(data)
	if err != nil {
		return err
	}
	gen, err := decodeMeta(snap, snapKindSingle, s.fingerprint)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.readSections(snap, ""); err != nil {
		return err
	}
	s.gen = gen
	return nil
}

// Snapshot serializes the wrapped System under the engine lock; see
// System.Snapshot. Safe to call while traffic flows — feeds and queries
// wait for the capture.
func (c *ConcurrentSystem) Snapshot(ctx context.Context, st Store) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Snapshot(ctx, st)
}

// Restore loads a snapshot into this freshly constructed engine; see
// System.Restore. ConcurrentSystem shares System's on-disk shape ("single"
// kind): the wrapper adds a mutex, not state, so either can restore the
// other's snapshots.
func (c *ConcurrentSystem) Restore(ctx context.Context, st Store) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Restore(ctx, st)
}

// snapKind returns the sharded engine's kind string: the grid shape is
// part of the on-disk contract because shard section groups are keyed by
// shard index.
func (s *ShardedSystem) snapKind() string {
	return fmt.Sprintf("sharded:%dx%d", s.rows, s.cols)
}

// shardPrefix names shard i's section group.
func shardPrefix(i int) string { return fmt.Sprintf("shard-%d/", i) }

// Snapshot serializes every shard into st as one atomic artifact. All
// shard locks are held for the duration (acquired in shard order), so the
// capture is a consistent cut with respect to feeds and single-shard
// queries; for a cut that is also consistent with multi-shard query
// fan-outs, quiesce queries first (DurableEngine's write lock does). The
// per-shard feed queues are drained before any lock is taken — a feed
// already handed to a shard's pipeline is part of the state this snapshot
// must carry (under DurableEngine it is already in the WAL generation this
// snapshot supersedes) — and any deferred pre-fill already handed to a
// shard's background worker is waited for before that shard is captured,
// so no estimator is ever saved missing a replay the original process
// would still apply.
func (s *ShardedSystem) Snapshot(ctx context.Context, st Store) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.Drain()
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.awaitPrefillsLocked()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()
	sw := persist.NewSnapshotWriter()
	sw.Section(metaSectionName, encodeMeta(s.snapKind(), s.fingerprint, s.gen+1))
	for i, sh := range s.shards {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := sh.sys.writeSections(sw, shardPrefix(i)); err != nil {
			return err
		}
	}
	if err := st.Save(persist.SnapshotName, sw.Bytes()); err != nil {
		return err
	}
	s.gen++
	return nil
}

// Restore loads a snapshot into this freshly constructed ShardedSystem.
// The shard grid must match (the kind string carries it) and every shard
// must be untouched; see System.Restore for the error contract.
func (s *ShardedSystem) Restore(ctx context.Context, st Store) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	data, err := st.Load(persist.SnapshotName)
	if err != nil {
		return err
	}
	snap, err := persist.DecodeSnapshot(data)
	if err != nil {
		return err
	}
	gen, err := decodeMeta(snap, s.snapKind(), s.fingerprint)
	if err != nil {
		return err
	}
	// An untouched engine has no queued feeds; drain anyway so a misuse
	// (feeding before Restore) fails the untouched check instead of
	// applying queued objects on top of the restored state.
	s.Drain()
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()
	for i, sh := range s.shards {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := sh.sys.readSections(snap, shardPrefix(i)); err != nil {
			return err
		}
	}
	s.gen = gen
	return nil
}
