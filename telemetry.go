package latest

import (
	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/telemetry"
)

// This file adapts engine snapshots into the telemetry exposition types.
// The telemetry server itself lives in internal/telemetry; the builders
// here are what a WithTelemetry-enabled engine hands it as the scrape
// source.

// shardSample flattens one module's stats plus its operational gauges into
// a telemetry.ShardSample. A monolithic engine reports itself as shard 0.
func shardSample(index int, st Stats, g metrics.GaugeSnapshot) telemetry.ShardSample {
	return telemetry.ShardSample{
		Index:              index,
		Active:             st.Active,
		Phase:              st.Phase.String(),
		Feeds:              g.Feeds,
		Batches:            g.Batches,
		Queries:            g.Queries,
		Reordered:          g.Reordered,
		PrefillsAsync:      g.PrefillsAsync,
		PrefillsInline:     g.PrefillsInline,
		Occupancy:          g.Occupancy,
		Switches:           st.Switches,
		ValidationRejected: g.ValidationRejected,
		ValidationClamped:  g.ValidationClamped,
		PrefillQueueFull:   g.PrefillQueueFull,
		IngestRatePerSec:   g.IngestRatePerSec,
		IngestBacklog:      g.IngestBacklog,
		IngestBackpressure: g.IngestBackpressure,
		Resilience:         st.Resilience,
		AccuracyAvg:        st.AccuracyAvg,
		MemoryBytes:        st.MemoryBytes,
		Feed:               g.FeedLatency,
		Batch:              g.BatchLatency,
		Query:              g.QueryLatency,
		Estimate:           st.EstimateLatency,
	}
}

// TelemetrySnapshot returns the same point-in-time view the /statusz
// endpoint serves: merged engine stats plus per-shard operational gauges.
// Exported so an external scrape source — the serving layer's admin plane,
// an embedding application's own exposition server — can publish an engine
// that was built without WithTelemetry.
func (c *ConcurrentSystem) TelemetrySnapshot() telemetry.Snapshot {
	return c.telemetrySnapshot()
}

// TelemetrySnapshot returns the /statusz view of a single-goroutine
// System, reporting itself as shard 0 of a one-shard engine. Unlike the
// concurrent shapes it must not be called while another goroutine drives
// traffic — System's general concurrency contract. In -race builds that
// contract is enforced: a scrape overlapping any other System method
// panics immediately, naming the violation, instead of leaving it to the
// race detector's sampling. Scrape a System from the goroutine that owns
// it, or wrap the engine with NewConcurrent / NewSharded.
func (s *System) TelemetrySnapshot() telemetry.Snapshot {
	st := s.Stats()
	return telemetry.Snapshot{
		Engine:      "system",
		Phase:       st.Phase.String(),
		Active:      st.Active,
		Switches:    st.Switches,
		AccuracyAvg: st.AccuracyAvg,
		MemoryBytes: st.MemoryBytes,
		WindowSize:  s.WindowSize(),
		Shards:      []telemetry.ShardSample{shardSample(0, st, s.gauges.Snapshot())},
		Decisions:   st.Decisions,
		QError:      st.QError,
		Drift:       st.Drift,
		Resilience:  st.Resilience,
	}
}

// TelemetrySnapshot returns the same point-in-time view the /statusz
// endpoint serves. See ConcurrentSystem.TelemetrySnapshot.
func (s *ShardedSystem) TelemetrySnapshot() telemetry.Snapshot {
	return s.telemetrySnapshot()
}

// telemetrySnapshot is the ConcurrentSystem scrape source: the wrapped
// System as a single shard 0. Stats takes the engine lock briefly; the
// gauges are read atomically.
func (c *ConcurrentSystem) telemetrySnapshot() telemetry.Snapshot {
	c.mu.Lock()
	st := c.sys.Stats()
	ws := c.sys.WindowSize()
	c.mu.Unlock()
	return telemetry.Snapshot{
		Engine:      "concurrent",
		Phase:       st.Phase.String(),
		Active:      st.Active,
		Switches:    st.Switches,
		AccuracyAvg: st.AccuracyAvg,
		MemoryBytes: st.MemoryBytes,
		WindowSize:  ws,
		Shards:      []telemetry.ShardSample{shardSample(0, st, c.sys.gauges.Snapshot())},
		Decisions:   st.Decisions,
		QError:      st.QError,
		Drift:       st.Drift,
		Resilience:  st.Resilience,
	}
}

// telemetrySnapshot is the ShardedSystem scrape source: per-shard samples
// plus the merged module view. Each shard's lock is taken briefly in turn.
func (s *ShardedSystem) telemetrySnapshot() telemetry.Snapshot {
	st := s.PerShardStats()
	snap := telemetry.Snapshot{
		Engine:      "sharded",
		Phase:       st.Merged.Phase.String(),
		Active:      st.Merged.Active,
		Switches:    st.Merged.Switches,
		AccuracyAvg: st.Merged.AccuracyAvg,
		MemoryBytes: st.Merged.MemoryBytes,
		Shards:      make([]telemetry.ShardSample, len(st.Shards)),
		Decisions:   st.Merged.Decisions,
		QError:      st.Merged.QError,
		Drift:       st.Merged.Drift,
		Resilience:  st.Merged.Resilience,
	}
	for i, sh := range st.Shards {
		snap.Shards[i] = shardSample(sh.Index, sh.Core, sh.Gauges)
		snap.WindowSize += sh.WindowSize
	}
	return snap
}
