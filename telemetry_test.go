package latest

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// telemetryGet fetches a path from the engine's exposition server.
func telemetryGet(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return string(body)
}

// TestSystemRejectsTelemetry pins the construction contract: a
// single-goroutine System cannot be scraped while traffic flows, so
// WithTelemetry on New must fail loudly instead of racing silently.
func TestSystemRejectsTelemetry(t *testing.T) {
	if _, err := New(testWorld(), time.Minute, WithTelemetry("127.0.0.1:0")); err == nil {
		t.Fatal("New accepted WithTelemetry; want construction error")
	}
}

// TestShardedTelemetryEndpoints drives a sharded engine with telemetry
// enabled and scrapes every endpoint over real HTTP.
func TestShardedTelemetryEndpoints(t *testing.T) {
	sys, err := NewSharded(testWorld(), time.Hour,
		WithShards(2), WithSeed(7),
		WithPretrainQueries(30), WithAccWindow(10),
		WithTelemetry("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addr := sys.TelemetryAddr()
	if addr == "" {
		t.Fatal("TelemetryAddr empty with WithTelemetry enabled")
	}

	objs := shardWorkload(1, 4000)
	sys.FeedBatch(objs[:2000])
	for _, o := range objs[2000:] {
		sys.Feed(o)
	}
	qs := shardQueries(2, 200, 4000)
	sys.EstimateAndExecuteBatch(qs)

	prom := telemetryGet(t, addr, "/metrics")
	for _, want := range []string{
		"# TYPE latest_feeds_total counter",
		`latest_feeds_total{shard="0"}`,
		`latest_feeds_total{shard="1"}`,
		"# TYPE latest_window_occupancy gauge",
		"# TYPE latest_active_estimator gauge",
		"# TYPE latest_query_latency_seconds histogram",
		`latest_query_latency_seconds_bucket{shard="0",le="+Inf"}`,
		`latest_query_latency_seconds_count{shard="0"}`,
		"# TYPE latest_batch_latency_seconds histogram",
		"# TYPE latest_feed_latency_seconds histogram",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var snap struct {
		Engine     string `json:"engine"`
		Phase      string `json:"phase"`
		WindowSize int    `json:"window_size"`
		Shards     []struct {
			Index   int    `json:"index"`
			Active  string `json:"active"`
			Feeds   uint64 `json:"feeds"`
			Queries uint64 `json:"queries"`
		} `json:"shards"`
		QError []struct {
			Estimator string  `json:"estimator"`
			QError    float64 `json:"qerror"`
			Samples   uint64  `json:"samples"`
		} `json:"qerror"`
	}
	if err := json.Unmarshal([]byte(telemetryGet(t, addr, "/statusz")), &snap); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	if snap.Engine != "sharded" {
		t.Errorf("engine = %q, want sharded", snap.Engine)
	}
	if snap.WindowSize != 4000 {
		t.Errorf("window_size = %d, want 4000", snap.WindowSize)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(snap.Shards))
	}
	var feeds, queries uint64
	for _, sh := range snap.Shards {
		feeds += sh.Feeds
		queries += sh.Queries
		if sh.Active == "" {
			t.Errorf("shard %d active empty", sh.Index)
		}
	}
	if feeds != 4000 {
		t.Errorf("total feeds = %d, want 4000", feeds)
	}
	if queries == 0 {
		t.Error("no queries counted")
	}
	// Ground truth flowed through Observe, so every estimator must carry a
	// rolling q-error with samples.
	if len(snap.QError) == 0 {
		t.Error("statusz missing per-estimator q-error")
	}
	for _, qe := range snap.QError {
		if qe.Samples == 0 {
			t.Errorf("estimator %s has no q-error samples", qe.Estimator)
		}
	}

	if body := telemetryGet(t, addr, "/debug/vars"); !strings.Contains(body, `"latest"`) {
		t.Error("/debug/vars missing the latest expvar")
	}
	if body := telemetryGet(t, addr, "/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

// TestConcurrentTelemetry covers the single-shard exposition shape and the
// idempotent Close.
func TestConcurrentTelemetry(t *testing.T) {
	sys, err := NewConcurrent(testWorld(), time.Hour, WithSeed(3),
		WithPretrainQueries(20), WithAccWindow(10),
		WithTelemetry("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addr := sys.TelemetryAddr()
	if addr == "" {
		t.Fatal("TelemetryAddr empty with WithTelemetry enabled")
	}

	objs := shardWorkload(4, 1500)
	sys.FeedBatch(objs[:500])
	for _, o := range objs[500:] {
		sys.Feed(o)
	}
	for _, q := range shardQueries(5, 60, 1500) {
		q := q
		sys.EstimateAndExecute(&q)
	}

	prom := telemetryGet(t, addr, "/metrics")
	if !strings.Contains(prom, `latest_feeds_total{shard="0"} 1500`) {
		t.Errorf("/metrics missing feed count, got:\n%s", firstLines(prom, 8))
	}
	var snap struct {
		Engine string `json:"engine"`
		Shards []struct {
			Feeds   uint64 `json:"feeds"`
			Queries uint64 `json:"queries"`
		} `json:"shards"`
	}
	if err := json.Unmarshal([]byte(telemetryGet(t, addr, "/statusz")), &snap); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	if snap.Engine != "concurrent" || len(snap.Shards) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Shards[0].Feeds != 1500 || snap.Shards[0].Queries != 60 {
		t.Errorf("gauges = %+v, want feeds=1500 queries=60", snap.Shards[0])
	}

	sys.Close()
	sys.Close() // idempotent
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still serving after Close")
	}
}

// TestGaugesAccessors pins the programmatic path to the same numbers the
// server exposes.
func TestGaugesAccessors(t *testing.T) {
	sys, err := New(testWorld(), time.Hour, WithSeed(9),
		WithPretrainQueries(20), WithAccWindow(10))
	if err != nil {
		t.Fatal(err)
	}
	objs := shardWorkload(6, 1000)
	sys.FeedBatch(objs[:360])
	for _, o := range objs[360:] {
		sys.Feed(o)
	}
	for _, q := range shardQueries(7, 40, 1000) {
		q := q
		sys.EstimateAndExecute(&q)
	}
	g := sys.Gauges()
	if g.Feeds != 1000 {
		t.Errorf("feeds = %d, want 1000", g.Feeds)
	}
	if g.Batches != 1 {
		t.Errorf("batches = %d, want 1", g.Batches)
	}
	if g.Queries != 40 {
		t.Errorf("queries = %d, want 40", g.Queries)
	}
	if g.QueryLatency.Count != 40 || g.QueryLatency.Sum <= 0 {
		t.Errorf("query latency histogram = %+v", g.QueryLatency)
	}
	// 640 single feeds at 1-in-64 sampling: the histogram must have
	// sampled some, and far fewer than all.
	if n := g.FeedLatency.Count; n == 0 || n > 640/8 {
		t.Errorf("sampled feed latencies = %d, want ~%d", n, 640/64)
	}
	// Occupancy is published on batches and sampled feeds, so it may lag
	// the true size by up to one sampling interval.
	if g.Occupancy < 1000-64 || g.Occupancy > 1000 {
		t.Errorf("occupancy = %d, want within [936,1000]", g.Occupancy)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
