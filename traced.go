package latest

import (
	"time"

	"github.com/spatiotext/latest/internal/telemetry"
)

// traced.go threads a request trace from the serving layer into the query
// path so an estimate's span timeline includes the estimator-inference
// stage. Every engine shape implements TracedEngine; the trace recorder is
// installed on the owning shard's module under the same lock that
// serializes the query, then cleared before the lock releases, so the
// module never observes a stale trace. A nil trace makes every variant
// behave exactly like its untraced counterpart (telemetry.ActiveTrace is
// nil-safe), which keeps call sites branch-free.

// TracedEngine is the optional tracing extension of Engine: engines that
// can attribute per-stage spans (notably the active estimator's inference
// latency) to an in-flight request trace. All four shapes — System,
// ConcurrentSystem, ShardedSystem, DurableEngine — implement it. Callers
// holding only an Engine should type-assert and fall back to
// EstimateAndExecute.
type TracedEngine interface {
	Engine
	// EstimateAndExecuteTraced is EstimateAndExecute recording per-stage
	// spans into tr (nil tr: identical to EstimateAndExecute).
	EstimateAndExecuteTraced(q *Query, tr *telemetry.ActiveTrace) (estimate float64, actual int)
}

// The tracing extension is part of each shape's contract.
var (
	_ TracedEngine = (*System)(nil)
	_ TracedEngine = (*ConcurrentSystem)(nil)
	_ TracedEngine = (*ShardedSystem)(nil)
	_ TracedEngine = (*DurableEngine)(nil)
)

// EstimateAndExecuteTraced implements TracedEngine. Like every System
// method it must not race other calls; the caller owns the engine.
func (s *System) EstimateAndExecuteTraced(q *Query, tr *telemetry.ActiveTrace) (estimate float64, actual int) {
	s.module.SetTrace(tr)
	estimate, actual = s.EstimateAndExecute(q)
	s.module.SetTrace(nil)
	return estimate, actual
}

// EstimateAndExecuteTraced implements TracedEngine; the trace is installed
// under the engine lock, so concurrent queries cannot interleave spans.
func (c *ConcurrentSystem) EstimateAndExecuteTraced(q *Query, tr *telemetry.ActiveTrace) (estimate float64, actual int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.EstimateAndExecuteTraced(q, tr)
}

// EstimateAndExecuteTraced implements TracedEngine. A single-shard query
// threads the trace into that shard's module (the common case — point and
// small-range queries route to one shard); the scatter-gather path records
// one whole-fan-out span instead, because the trace recorder is
// single-owner and the partial queries run on concurrent goroutines.
func (s *ShardedSystem) EstimateAndExecuteTraced(q *Query, tr *telemetry.ActiveTrace) (estimate float64, actual int) {
	if tr == nil {
		return s.EstimateAndExecute(q)
	}
	if !checkQuery(q, s.policy, s.world, &s.shards[0].gauges, s.shards[0].log) {
		return 0, 0
	}
	targets := s.targets(q)
	switch len(targets) {
	case 0:
		return 0, 0
	case 1:
		sh := targets[0]
		start := time.Now()
		sh.mu.Lock()
		sh.sys.module.SetTrace(tr)
		estimate, actual = sh.sys.estimateAndExecute(q)
		sh.sys.module.SetTrace(nil)
		sh.mu.Unlock()
		sh.gauges.RecordQuery(time.Since(start))
		return estimate, actual
	}
	start := time.Now()
	estimate, actual = s.fanOut(q, targets)
	tr.AddSpan("fanout", start)
	return estimate, actual
}

// EstimateAndExecuteTraced implements TracedEngine, delegating to the
// wrapped engine under the read lock.
func (d *DurableEngine) EstimateAndExecuteTraced(q *Query, tr *telemetry.ActiveTrace) (float64, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if te, ok := d.eng.(TracedEngine); ok {
		return te.EstimateAndExecuteTraced(q, tr)
	}
	return d.eng.EstimateAndExecute(q)
}
