package latest

import (
	"context"
	"testing"
	"time"

	"github.com/spatiotext/latest/internal/telemetry"
)

// traceOne issues one traced query against a warmed engine and returns the
// recorded trace.
func traceOne(t *testing.T, eng TracedEngine, q Query) telemetry.Trace {
	t.Helper()
	tb := telemetry.NewTraceBuffer(4, 1)
	tr := tb.Start("estimate", telemetry.NewTraceID())
	if tr == nil {
		t.Fatal("trace buffer did not sample the first request")
	}
	eng.EstimateAndExecuteTraced(&q, tr)
	tr.Finish()
	traces := tb.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("%d traces recorded", len(traces))
	}
	return traces[0]
}

func findSpan(tr telemetry.Trace, name string) (telemetry.Span, bool) {
	for _, sp := range tr.Spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return telemetry.Span{}, false
}

// estimatorSpanOf asserts the trace carries an estimator-inference span
// whose detail names the engine's active estimator.
func estimatorSpanOf(t *testing.T, tr telemetry.Trace, active string) {
	t.Helper()
	sp, ok := findSpan(tr, "estimator")
	if !ok {
		t.Fatalf("no estimator span in %v", tr.Spans)
	}
	if sp.Detail != active {
		t.Errorf("estimator span detail = %q, active estimator = %q", sp.Detail, active)
	}
	if sp.DurNS < 0 {
		t.Errorf("estimator span duration = %d", sp.DurNS)
	}
}

func tracedHybridQuery(w *workload) Query {
	return HybridQuery(CenteredRect(Pt(0.5, 0.5), 0.3, 0.3), []string{"kw1"}, w.ts)
}

func TestSystemTraced(t *testing.T) {
	sys := testSystem(t)
	w := newWorkload(5)
	warmEngine(t, sys, w)

	tr := traceOne(t, sys, tracedHybridQuery(w))
	estimatorSpanOf(t, tr, sys.Stats().Active)

	// A nil trace is the untraced path: same answer, no panic, and the
	// module is left with no dangling recorder.
	q := tracedHybridQuery(w)
	e1, a1 := sys.EstimateAndExecuteTraced(&q, nil)
	e2, a2 := sys.EstimateAndExecute(&q)
	if a1 != a2 {
		t.Errorf("nil-traced actual %d != untraced %d", a1, a2)
	}
	_, _ = e1, e2 // estimates move as the engine trains between calls
}

func TestConcurrentTraced(t *testing.T) {
	conc, err := NewConcurrent(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10*time.Second,
		WithPretrainQueries(150), WithAccWindow(60), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Shutdown(context.Background())
	w := newWorkload(6)
	warmEngine(t, conc, w)
	tr := traceOne(t, conc, tracedHybridQuery(w))
	estimatorSpanOf(t, tr, conc.Stats().Active)
}

func TestShardedTraced(t *testing.T) {
	sh := testSharded(t)
	defer sh.Close()
	w := newWorkload(7)
	w.feed(sh, 3000)
	for i := 0; i < 5000 && sh.Stats().Phase != PhaseIncremental; i++ {
		w.feed(sh, 2)
		w.query(sh)
	}
	if p := sh.Stats().Phase; p != PhaseIncremental {
		t.Fatalf("sharded engine never left %v", p)
	}

	// A small rect routes to one shard: the estimator span threads through.
	small := HybridQuery(CenteredRect(Pt(0.25, 0.25), 0.05, 0.05), []string{"kw1"}, w.ts)
	tr := traceOne(t, sh, small)
	if _, ok := findSpan(tr, "estimator"); !ok {
		t.Fatalf("single-shard traced query has no estimator span: %v", tr.Spans)
	}
	if _, ok := findSpan(tr, "fanout"); ok {
		t.Fatalf("single-shard query recorded a fanout span: %v", tr.Spans)
	}

	// A whole-world query scatter-gathers: one fanout span, no per-shard
	// estimator attribution (the partials run concurrently).
	wide := SpatialQuery(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, w.ts)
	tr = traceOne(t, sh, wide)
	if _, ok := findSpan(tr, "fanout"); !ok {
		t.Fatalf("fan-out traced query has no fanout span: %v", tr.Spans)
	}
}

func TestDurableTraced(t *testing.T) {
	dur := newDurable(t, NewMemStore())
	w := newWorkload(8)
	warmEngine(t, dur, w)
	tr := traceOne(t, dur, tracedHybridQuery(w))
	estimatorSpanOf(t, tr, dur.Stats().Active)
}
