package latest

import (
	"math"

	"github.com/spatiotext/latest/internal/metrics"
	"github.com/spatiotext/latest/internal/telemetry"
)

// ValidationPolicy selects how the engines treat non-conforming input —
// objects with NaN/±Inf coordinates, queries with inverted or degenerate
// rectangles, timestamps that run the stream clock backwards. Streams
// assembled from real devices contain all of these; a selectivity
// estimator sits on the query path and must never let one bad tuple panic
// the engine or poison the window store.
type ValidationPolicy int

const (
	// ValidationClamp (the default) repairs what is repairable and rejects
	// the rest: regressed object timestamps are clamped to the stream's
	// high-water mark, inverted query rectangles have their corners
	// swapped; NaN/±Inf coordinates, predicate-less queries and
	// degenerate (zero-area) query rectangles are rejected. A zero-area
	// rectangle cannot match any object under the engine's open-interval
	// intersection semantics, so the reject's answer of 0 is also the
	// query's exact answer. Repairs mutate the caller's value in place so
	// a subsequent Execute sees the same repaired query.
	ValidationClamp ValidationPolicy = iota
	// ValidationStrict rejects every non-conforming input instead of
	// repairing it, and additionally rejects query rectangles that do not
	// intersect the world. Rejections are logged at warn level.
	ValidationStrict
	// ValidationDrop silently rejects non-conforming input (counted in the
	// ValidationRejected gauge, never logged).
	ValidationDrop
)

// String implements fmt.Stringer.
func (p ValidationPolicy) String() string {
	switch p {
	case ValidationClamp:
		return "clamp"
	case ValidationStrict:
		return "strict"
	case ValidationDrop:
		return "drop"
	default:
		return "ValidationPolicy(?)"
	}
}

// valid reports whether p is a known policy.
func (p ValidationPolicy) valid() bool {
	return p == ValidationClamp || p == ValidationStrict || p == ValidationDrop
}

// finite reports whether every value is a usable coordinate.
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// checkObject applies the validation policy to one inbound stream object.
// It may repair o in place (timestamp clamped to lastTS under
// ValidationClamp). Returns false when the object must not be ingested;
// the reject is counted in g and, outside ValidationDrop, logged.
func checkObject(o *Object, lastTS int64, policy ValidationPolicy, g *metrics.ShardGauges, log *telemetry.Logger) bool {
	if !finite(o.Loc.X, o.Loc.Y) {
		g.RecordValidationRejected()
		if policy != ValidationDrop {
			log.Warn("object rejected: non-finite coordinates",
				"id", o.ID, "x", o.Loc.X, "y", o.Loc.Y)
		}
		return false
	}
	if o.Timestamp < lastTS {
		switch policy {
		case ValidationClamp:
			o.Timestamp = lastTS
			g.RecordValidationClamped()
		case ValidationStrict:
			g.RecordValidationRejected()
			log.Warn("object rejected: timestamp regression",
				"id", o.ID, "timestamp", o.Timestamp, "highWater", lastTS)
			return false
		default: // ValidationDrop
			g.RecordValidationRejected()
			return false
		}
	}
	return true
}

// checkQuery applies the validation policy to one estimation query. Under
// ValidationClamp an inverted rectangle is repaired in place (corners
// swapped) so the caller's subsequent Execute sees the same query the
// estimate answered. Returns false when the query must be rejected.
func checkQuery(q *Query, policy ValidationPolicy, world Rect, g *metrics.ShardGauges, log *telemetry.Logger) bool {
	reject := func(reason string) bool {
		g.RecordValidationRejected()
		if policy != ValidationDrop {
			log.Warn("query rejected: "+reason, "query", q.String())
		}
		return false
	}
	if !q.HasRange && len(q.Keywords) == 0 {
		return reject("no predicates")
	}
	if q.HasRange {
		r := q.Range
		if !finite(r.MinX, r.MinY, r.MaxX, r.MaxY) {
			return reject("non-finite range")
		}
		if r.MinX > r.MaxX || r.MinY > r.MaxY {
			if policy != ValidationClamp {
				return reject("inverted range")
			}
			if r.MinX > r.MaxX {
				r.MinX, r.MaxX = r.MaxX, r.MinX
			}
			if r.MinY > r.MaxY {
				r.MinY, r.MaxY = r.MaxY, r.MinY
			}
			q.Range = r
			g.RecordValidationClamped()
		}
		// Degenerate (zero-area) rectangles are rejected under every
		// policy, not just Strict: the engine's intersection semantics are
		// open intervals (geo.Rect.Intersects returns false for any empty
		// rect), so a point or line query can never match an object, and
		// core.Module.Estimate panics on queries stream.Query.Valid deems
		// invalid — which includes empty ranges. Rejecting here turns that
		// panic into a counted, logged reject with the exact answer (0)
		// the query would have received anyway.
		if q.Range.Empty() {
			return reject("empty range")
		}
		if policy == ValidationStrict && !q.Range.Intersects(world) {
			return reject("range outside world")
		}
	}
	return true
}
