package latest

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// validation_test.go pins the input-hardening layer: NaN/Inf coordinates,
// inverted and out-of-world rectangles, and timestamp regressions must
// never panic an engine, and each policy's repair/reject split must be
// visible in the validation gauges.

func validationSystem(t *testing.T, policy ValidationPolicy) *System {
	t.Helper()
	sys, err := New(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10*time.Second,
		WithSeed(1), WithPretrainQueries(50), WithAccWindow(40),
		WithValidation(policy))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestValidationRejectsNonFiniteObjects(t *testing.T) {
	for _, policy := range []ValidationPolicy{ValidationClamp, ValidationStrict, ValidationDrop} {
		t.Run(policy.String(), func(t *testing.T) {
			sys := validationSystem(t, policy)
			for _, loc := range []Point{
				Pt(math.NaN(), 0.5),
				Pt(0.5, math.NaN()),
				Pt(math.Inf(1), 0.5),
				Pt(0.5, math.Inf(-1)),
			} {
				sys.Feed(Object{ID: 1, Loc: loc, Keywords: []string{"a"}, Timestamp: 10})
			}
			if n := sys.WindowSize(); n != 0 {
				t.Errorf("%d non-finite objects ingested", n)
			}
			if got := sys.Gauges().ValidationRejected; got != 4 {
				t.Errorf("ValidationRejected = %d, want 4", got)
			}
		})
	}
}

func TestValidationTimestampRegression(t *testing.T) {
	// Clamp: the regressed arrival is pulled forward and kept.
	sys := validationSystem(t, ValidationClamp)
	sys.Feed(Object{ID: 1, Loc: Pt(0.5, 0.5), Keywords: []string{"a"}, Timestamp: 100})
	sys.Feed(Object{ID: 2, Loc: Pt(0.4, 0.4), Keywords: []string{"a"}, Timestamp: 50})
	if n := sys.WindowSize(); n != 2 {
		t.Errorf("clamp kept %d objects, want 2", n)
	}
	if g := sys.Gauges(); g.ValidationClamped != 1 {
		t.Errorf("ValidationClamped = %d, want 1", g.ValidationClamped)
	}

	// Strict: the regressed arrival is refused.
	strict := validationSystem(t, ValidationStrict)
	strict.Feed(Object{ID: 1, Loc: Pt(0.5, 0.5), Keywords: []string{"a"}, Timestamp: 100})
	strict.Feed(Object{ID: 2, Loc: Pt(0.4, 0.4), Keywords: []string{"a"}, Timestamp: 50})
	if n := strict.WindowSize(); n != 1 {
		t.Errorf("strict kept %d objects, want 1", n)
	}
	if g := strict.Gauges(); g.ValidationRejected != 1 {
		t.Errorf("ValidationRejected = %d, want 1", g.ValidationRejected)
	}
}

func TestValidationQueryPolicies(t *testing.T) {
	feedSome := func(sys *System) int64 {
		rng := rand.New(rand.NewSource(2))
		var ts int64
		for i := 0; i < 500; i++ {
			ts++
			sys.Feed(Object{ID: uint64(ts), Loc: Pt(rng.Float64(), rng.Float64()),
				Keywords: []string{"kw"}, Timestamp: ts})
		}
		return ts
	}

	t.Run("clamp repairs inverted rect in place", func(t *testing.T) {
		sys := validationSystem(t, ValidationClamp)
		ts := feedSome(sys)
		inverted := Query{Range: Rect{MinX: 0.8, MinY: 0.7, MaxX: 0.2, MaxY: 0.1}, HasRange: true, Timestamp: ts}
		est := sys.Estimate(&inverted)
		if math.IsNaN(est) || est < 0 {
			t.Fatalf("estimate on repaired query = %v", est)
		}
		if inverted.Range.MinX > inverted.Range.MaxX || inverted.Range.MinY > inverted.Range.MaxY {
			t.Errorf("rect not repaired in place: %v", inverted.Range)
		}
		actual := sys.Execute(&inverted)
		canonical := SpatialQuery(Rect{MinX: 0.2, MinY: 0.1, MaxX: 0.8, MaxY: 0.7}, ts)
		if want := sys.window.Answer(&canonical); actual != want {
			t.Errorf("repaired exact count %d != canonical %d", actual, want)
		}
		if g := sys.Gauges(); g.ValidationClamped != 1 {
			t.Errorf("ValidationClamped = %d, want 1", g.ValidationClamped)
		}
	})

	t.Run("strict rejects inverted and out-of-world rects", func(t *testing.T) {
		sys := validationSystem(t, ValidationStrict)
		ts := feedSome(sys)
		before := sys.Stats().PretrainSeen
		inverted := Query{Range: Rect{MinX: 0.8, MinY: 0.7, MaxX: 0.2, MaxY: 0.1}, HasRange: true, Timestamp: ts}
		if est, actual := sys.EstimateAndExecute(&inverted); est != 0 || actual != 0 {
			t.Errorf("rejected query answered (%v, %d)", est, actual)
		}
		outside := SpatialQuery(Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}, ts)
		if est, actual := sys.EstimateAndExecute(&outside); est != 0 || actual != 0 {
			t.Errorf("out-of-world query answered (%v, %d)", est, actual)
		}
		if after := sys.Stats().PretrainSeen; after != before {
			t.Errorf("rejected queries reached the module (%d -> %d)", before, after)
		}
		if g := sys.Gauges(); g.ValidationRejected != 2 {
			t.Errorf("ValidationRejected = %d, want 2", g.ValidationRejected)
		}
	})

	t.Run("all policies reject NaN rects and predicate-less queries", func(t *testing.T) {
		for _, policy := range []ValidationPolicy{ValidationClamp, ValidationStrict, ValidationDrop} {
			sys := validationSystem(t, policy)
			ts := feedSome(sys)
			bad := []Query{
				{Range: Rect{MinX: math.NaN(), MinY: 0, MaxX: 1, MaxY: 1}, HasRange: true, Timestamp: ts},
				{Range: Rect{MinX: 0, MinY: 0, MaxX: math.Inf(1), MaxY: 1}, HasRange: true, Timestamp: ts},
				{Timestamp: ts}, // no range, no keywords
				{Range: Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5}, HasRange: true, Timestamp: ts}, // empty
			}
			for i := range bad {
				if est, actual := sys.EstimateAndExecute(&bad[i]); est != 0 || actual != 0 {
					t.Errorf("%v: bad query %d answered (%v, %d)", policy, i, est, actual)
				}
			}
			if g := sys.Gauges(); g.ValidationRejected != uint64(len(bad)) {
				t.Errorf("%v: ValidationRejected = %d, want %d", policy, g.ValidationRejected, len(bad))
			}
		}
	})

	t.Run("degenerate rects reject with their exact answer", func(t *testing.T) {
		// A zero-area (point or line) rectangle cannot match any object
		// under the open-interval intersection semantics, and
		// core.Module.Estimate panics on queries Query.Valid deems invalid.
		// Every policy therefore rejects them — the reject's 0 is also the
		// exact answer — and the engine must not panic.
		for _, policy := range []ValidationPolicy{ValidationClamp, ValidationStrict, ValidationDrop} {
			sys := validationSystem(t, policy)
			ts := feedSome(sys)
			for _, r := range []Rect{
				{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5}, // point
				{MinX: 0.2, MinY: 0.5, MaxX: 0.8, MaxY: 0.5}, // horizontal line
			} {
				q := Query{Range: r, HasRange: true, Timestamp: ts}
				if est, actual := sys.EstimateAndExecute(&q); est != 0 || actual != 0 {
					t.Errorf("%v: degenerate rect %v answered (%v, %d)", policy, r, est, actual)
				}
				if want := sys.window.Answer(&q); want != 0 {
					t.Fatalf("degenerate rect %v matches %d objects; reject is no longer exact", r, want)
				}
			}
			if g := sys.Gauges(); g.ValidationRejected != 2 {
				t.Errorf("%v: ValidationRejected = %d, want 2", policy, g.ValidationRejected)
			}
		}
	})

	t.Run("rejected estimate skips the feedback loop", func(t *testing.T) {
		sys := validationSystem(t, ValidationDrop)
		ts := feedSome(sys)
		before := sys.Stats().PretrainSeen
		nan := Query{Range: Rect{MinX: math.NaN(), MinY: 0, MaxX: 1, MaxY: 1}, HasRange: true, Timestamp: ts}
		if est := sys.Estimate(&nan); est != 0 {
			t.Errorf("rejected estimate = %v", est)
		}
		sys.ObserveActual(42) // must be dropped, not trained on
		if after := sys.Stats().PretrainSeen; after != before {
			t.Error("feedback for a rejected query reached the module")
		}
		// The rejection flag must not leak onto the next, valid query.
		good := SpatialQuery(CenteredRect(Pt(0.5, 0.5), 0.4, 0.4), ts)
		sys.Estimate(&good)
		sys.ObserveActual(7)
		if after := sys.Stats().PretrainSeen; after != before+1 {
			t.Error("valid query after a rejected one did not train")
		}
	})
}

func TestValidationShardedRouting(t *testing.T) {
	sys, err := NewSharded(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10*time.Second,
		WithShards(4), WithSeed(3), WithPretrainQueries(30), WithAccWindow(20),
		WithSynchronousPrefill())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// NaN locations must not break shard routing; they are rejected by the
	// shard they route to and the reject shows up in the merged gauges.
	sys.Feed(Object{ID: 1, Loc: Pt(math.NaN(), math.NaN()), Keywords: []string{"a"}, Timestamp: 1})
	sys.Feed(Object{ID: 2, Loc: Pt(0.5, 0.5), Keywords: []string{"a"}, Timestamp: 2})
	if n := sys.WindowSize(); n != 1 {
		t.Errorf("window holds %d objects, want 1", n)
	}
	var rejected uint64
	for _, sh := range sys.PerShardStats().Shards {
		rejected += sh.Gauges.ValidationRejected
	}
	if rejected != 1 {
		t.Errorf("merged ValidationRejected = %d, want 1", rejected)
	}

	// An inverted rect is repaired before routing, so it reaches the shards
	// it actually covers instead of silently matching none.
	inverted := Query{Range: Rect{MinX: 0.9, MinY: 0.9, MaxX: 0.1, MaxY: 0.1}, HasRange: true, Timestamp: 3}
	if est, actual := sys.EstimateAndExecute(&inverted); actual != 1 {
		t.Errorf("inverted rect over the whole world found (%v, %d), want actual 1", est, actual)
	}

	// A NaN rect is rejected before routing.
	nan := Query{Range: Rect{MinX: math.NaN(), MinY: 0, MaxX: 1, MaxY: 1}, HasRange: true, Timestamp: 4}
	if est, actual := sys.EstimateAndExecute(&nan); est != 0 || actual != 0 {
		t.Errorf("NaN rect answered (%v, %d)", est, actual)
	}
}

func TestValidationRejectedObjectDoesNotPoisonClock(t *testing.T) {
	// Regression: the concurrent and sharded wrappers used to advance their
	// timestamp high-water mark before validation ran, so a rejected object
	// (NaN coordinates) carrying a garbage timestamp permanently poisoned
	// the stream clock and every subsequent valid object was clamped
	// forward to it. The high-water mark must advance only on acceptance.
	world := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	poison := Object{ID: 1, Loc: Pt(math.NaN(), 0.5), Keywords: []string{"a"}, Timestamp: 1 << 50}
	valid := Object{ID: 2, Loc: Pt(0.5, 0.5), Keywords: []string{"a"}, Timestamp: 2000}
	check := func(t *testing.T, name string, g GaugeSnapshot, size int) {
		t.Helper()
		if size != 1 {
			t.Errorf("%s: window holds %d objects, want 1", name, size)
		}
		if g.ValidationRejected != 1 {
			t.Errorf("%s: ValidationRejected = %d, want 1", name, g.ValidationRejected)
		}
		if g.Reordered != 0 || g.ValidationClamped != 0 {
			t.Errorf("%s: valid object clamped to poisoned clock (reordered %d, clamped %d)",
				name, g.Reordered, g.ValidationClamped)
		}
	}

	t.Run("inline", func(t *testing.T) {
		sys := validationSystem(t, ValidationClamp)
		sys.Feed(poison)
		sys.Feed(valid)
		check(t, "inline", sys.Gauges(), sys.WindowSize())
	})

	t.Run("concurrent", func(t *testing.T) {
		sys, err := NewConcurrent(world, 10*time.Second, WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		sys.Feed(poison)
		sys.Feed(valid)
		check(t, "concurrent", sys.Gauges(), sys.WindowSize())
	})

	t.Run("sharded", func(t *testing.T) {
		sys, err := NewSharded(world, 10*time.Second, WithShards(1), WithSeed(1),
			WithSynchronousPrefill())
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		sys.Feed(poison)
		sys.Feed(valid)
		var g GaugeSnapshot
		for _, sh := range sys.PerShardStats().Shards {
			g.ValidationRejected += sh.Gauges.ValidationRejected
			g.ValidationClamped += sh.Gauges.ValidationClamped
			g.Reordered += sh.Gauges.Reordered
		}
		check(t, "sharded", g, sys.WindowSize())
	})
}

func TestValidationStrictLogsRejects(t *testing.T) {
	var buf strings.Builder
	sys, err := New(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 10*time.Second,
		WithSeed(1), WithValidation(ValidationStrict), WithLogger(&buf, LogWarn))
	if err != nil {
		t.Fatal(err)
	}
	sys.Feed(Object{ID: 1, Loc: Pt(math.NaN(), 0.5), Keywords: []string{"a"}, Timestamp: 1})
	if !strings.Contains(buf.String(), "non-finite coordinates") {
		t.Errorf("strict reject not logged: %q", buf.String())
	}
}

func TestOptionValidationErrors(t *testing.T) {
	world := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	cases := []struct {
		name string
		opts []Option
		win  time.Duration
		want string
	}{
		{"sub-millisecond window", nil, 500 * time.Microsecond, "at least 1ms"},
		{"non-square oracle grid", []Option{WithOracleGridCells(1000)}, time.Second, "perfect square"},
		{"negative oracle grid", []Option{WithOracleGridCells(-4)}, time.Second, "non-negative"},
		{"negative trace depth", []Option{WithTraceDepth(-1)}, time.Second, "TraceDepth"},
		{"negative acc window", []Option{WithAccWindow(-5)}, time.Second, "AccWindow"},
		{"negative prefill queue", []Option{WithPrefillQueueDepth(-1)}, time.Second, "PrefillQueueDepth"},
		{"NaN tau", []Option{WithTau(math.NaN())}, time.Second, "Tau"},
		{"Inf alpha", []Option{WithAlpha(math.Inf(1))}, time.Second, "Alpha"},
		{"negative memory scale", []Option{WithMemoryScale(-2)}, time.Second, "MemoryScale"},
		{"unknown validation policy", []Option{WithValidation(ValidationPolicy(9))}, time.Second, "validation policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(world, tc.win, tc.opts...); err == nil {
				t.Fatalf("accepted")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The same guardrails cover the concurrent and sharded constructors.
	if _, err := NewConcurrent(world, 500*time.Microsecond); err == nil {
		t.Error("concurrent accepted sub-millisecond window")
	}
	if _, err := NewSharded(world, 500*time.Microsecond, WithShards(2)); err == nil {
		t.Error("sharded accepted sub-millisecond window")
	}
}

func TestMustConstructors(t *testing.T) {
	world := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	MustNew(world, time.Second)
	MustNewConcurrent(world, time.Second).Close()
	MustNewSharded(world, time.Second, WithShards(2)).Close()
	for _, build := range []func(){
		func() { MustNew(world, 0) },
		func() { MustNewConcurrent(world, 0) },
		func() { MustNewSharded(world, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Must constructor did not panic on invalid config")
				}
			}()
			build()
		}()
	}
}
